# BlockPilot reproduction — common workflows

PYTHON ?= python

.PHONY: install test test-fast test-faults bench bench-json trace-demo examples clean

install:
	pip install -e . --no-build-isolation 2>/dev/null || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x

test-faults:
	$(PYTHON) -m pytest tests/test_faults_taxonomy.py tests/test_property_faults.py \
		tests/test_network_faults.py benchmarks/bench_fault_overhead.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# machine-readable baselines: runs the JSON-emitting benchmarks and leaves
# BENCH_<name>.json files in benchmarks/results (or $$REPRO_RESULTS_DIR)
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_fig6_proposer.py \
		benchmarks/bench_fig7a_scalability.py \
		benchmarks/bench_fig9_multiblock.py \
		benchmarks/bench_obs_overhead.py -q

trace-demo:
	$(PYTHON) -m repro --txs-per-block 60 trace --scenario round --rounds 2 \
		--out trace.json
	$(PYTHON) examples/tracing_demo.py

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
