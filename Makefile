# BlockPilot reproduction — common workflows

PYTHON ?= python

.PHONY: install test test-all test-fast test-faults test-store test-blockstm test-distributed test-scenarios serve-demo telemetry-smoke check check-fuzz check-fuzz-blockstm lint typecheck coverage bench bench-json bench-hotpath bench-strategies bench-distributed bench-scenarios bench-compare trace-demo examples clean

install:
	pip install -e . --no-build-isolation 2>/dev/null || $(PYTHON) setup.py develop

# default developer loop: the fast tier (slow soaks run in test-all / CI)
test:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-all:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x

# everything tagged @pytest.mark.faults, wherever it lives
test-faults:
	$(PYTHON) -m pytest tests benchmarks -m faults -q

# durable-storage engine: block log, snapshots, recovery, kill-and-resume
test-store:
	$(PYTHON) -m pytest tests benchmarks -m store -q

# Block-STM strategy tier: engine unit tests, cross-strategy equivalence,
# and the three-way ablation bench (everything tagged @pytest.mark.blockstm)
test-blockstm:
	$(PYTHON) -m pytest tests benchmarks -m blockstm -q

# distributed sharded validation: partition properties, bit-identity,
# follower fault matrix, and the scaling bench (@pytest.mark.distributed)
test-distributed:
	$(PYTHON) -m pytest tests benchmarks -m distributed -q

# scenario diversity engine: stream unit tests, hypothesis invariants,
# the scenario × strategy × backend conformance matrix, and the
# per-scenario bench (everything tagged @pytest.mark.scenarios)
test-scenarios:
	$(PYTHON) -m pytest tests benchmarks -m scenarios -q

# run a persistent node for 20 blocks against ./serve-demo-data, then resume
# it (second run recovers from disk and produces nothing new)
serve-demo:
	$(PYTHON) -m repro --txs-per-block 40 serve --data-dir serve-demo-data \
		--blocks 20 --snapshot-interval 8 --report-every 5
	$(PYTHON) -m repro --txs-per-block 40 serve --data-dir serve-demo-data \
		--blocks 20 --snapshot-interval 8

# live-telemetry smoke: serve with events + status endpoint, scrape it
# over loopback (metrics/status/healthz), SIGTERM, verify a clean seal
telemetry-smoke:
	$(PYTHON) scripts/telemetry_smoke.py

# conformance suite (repro.check): serializability + differential oracles
# over freshly proposed blocks — exits non-zero on any violation
check:
	$(PYTHON) -m repro --txs-per-block 40 --blocks-per-point 3 check

# schedule-fuzzer sweep: permuted thread-backend interleavings through the
# full conformance chain; failing seeds land in fuzz_failures.json
check-fuzz:
	$(PYTHON) -m repro fuzz --schedules 200 --budget 120 --out fuzz_failures.json

# same sweep through the Block-STM scheduler's yield points (wave width +
# execution order permutations); failing seeds carry strategy="block-stm"
check-fuzz-blockstm:
	$(PYTHON) -m repro --strategy block-stm fuzz --schedules 200 --budget 120 \
		--out fuzz_failures_blockstm.json

lint:
	ruff check src tests benchmarks examples
	$(PYTHON) -m compileall -q src tests benchmarks examples

typecheck:
	mypy

coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term --cov-report=xml \
		--cov-fail-under=75 -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# machine-readable baselines: runs the JSON-emitting benchmarks and leaves
# BENCH_<name>.json files in benchmarks/results (or $$REPRO_RESULTS_DIR)
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_fig6_proposer.py \
		benchmarks/bench_fig7a_scalability.py \
		benchmarks/bench_fig9_multiblock.py \
		benchmarks/bench_obs_overhead.py \
		benchmarks/bench_wallclock_backends.py \
		benchmarks/bench_hotpath.py \
		benchmarks/bench_store.py -q

# hot-path cache/index microbenches only (ISSUE 4): deterministic op-count
# speedups for the txpool index, batched commit, and artifact reuse
bench-hotpath:
	$(PYTHON) -m pytest benchmarks/bench_hotpath.py -q

# three-way proposer strategy ablation (occ-wsi | two-phase | block-stm);
# regenerates the committed BENCH_strategies.json golden bit-for-bit (the
# sim clock is deterministic) — CI's strategy-ablation job gates on it
bench-strategies:
	$(PYTHON) benchmarks/bench_ablation_strategies.py --quick

bench-distributed:
	$(PYTHON) benchmarks/bench_distributed.py --quick

# per-scenario speedup/abort-rate table (sim clock => bit-reproducible);
# regenerates the committed BENCH_scenarios.json golden and exits non-zero
# if the partitioned-counter variant stops beating the shared-counter one
bench-scenarios:
	$(PYTHON) benchmarks/bench_scenarios.py --quick

# regression gate: emit fresh sim-deterministic baselines into a scratch dir
# (REPRO_BENCH_BLOCKS=4 matches how the committed goldens were generated)
# and diff them against the committed goldens in benchmarks/results/
bench-compare:
	REPRO_RESULTS_DIR=benchmarks/results/.fresh REPRO_BENCH_BLOCKS=4 \
		$(PYTHON) -m pytest benchmarks/bench_fig6_proposer.py \
		benchmarks/bench_fig7a_scalability.py \
		benchmarks/bench_fig9_multiblock.py \
		benchmarks/bench_obs_overhead.py \
		benchmarks/bench_hotpath.py -q
	$(PYTHON) benchmarks/bench_scenarios.py --quick \
		--results-dir benchmarks/results/.fresh
	$(PYTHON) -m repro.obs.baseline \
		--old-dir benchmarks/results --new-dir benchmarks/results/.fresh \
		--names fig6_proposer fig7a_scalability fig9_multiblock hotpath obs_live \
		scenarios

trace-demo:
	$(PYTHON) -m repro --txs-per-block 60 trace --mode round --rounds 2 \
		--out trace.json
	$(PYTHON) examples/tracing_demo.py

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info benchmarks/results/.fresh \
		benchmarks/results/.fresh-strategies \
		benchmarks/results/.fresh-distributed \
		benchmarks/results/.fresh-scenarios \
		.coverage coverage.xml .mypy_cache .ruff_cache serve-demo-data
	find benchmarks/results -type f ! -name 'BENCH_*.json' -delete 2>/dev/null || true
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
