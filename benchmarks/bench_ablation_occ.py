"""Ablation — OCC-WSI / profile design points (§4.2, §4.4).

Two design claims get quantified:

1. **Block profiles pay for themselves.**  Without the proposer-published
   rw-sets, the validator must pre-execute serially to learn the
   dependency graph (the legacy-block fallback) — the preparation phase
   then dominates and parallel validation loses its advantage.

2. **Proposer thread count changes the schedule, not the set.**  OCC-WSI
   at different lane counts packs the same transactions into different
   serializable orders, and the abort rate grows with concurrency — the
   cost the WSI read-set validation pays for lock freedom.
"""


from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.txpool.pool import TxPool


def _ctx(entry):
    return ExecutionContext(
        block_number=entry.block.header.number,
        timestamp=entry.block.header.timestamp,
        coinbase=entry.block.header.coinbase,
        gas_limit=entry.block.header.gas_limit,
    )


def test_ablation_profile_value(bench_chain, benchmark, capsys):
    """Profile-assisted vs pre-execution-fallback validation."""
    import dataclasses

    with_profile = ParallelValidator(config=ValidatorConfig(lanes=16))
    without_profile = ParallelValidator(
        config=ValidatorConfig(lanes=16, preexecute_fallback=True)
    )

    rows = []
    for entry in bench_chain[:6]:
        res_with = with_profile.validate_block(entry.block, entry.parent_state)
        stripped = dataclasses.replace(entry.block, profile=None)
        res_without = without_profile.validate_block(stripped, entry.parent_state)
        assert res_with.accepted and res_without.accepted
        rows.append(
            {
                "height": entry.block.number,
                "with_profile": round(res_with.speedup, 2),
                "no_profile_fallback": round(res_without.speedup, 2),
                "prep_us_with": round(res_with.prep_cost, 1),
                "prep_us_without": round(res_without.prep_cost, 1),
            }
        )

    emit(
        capsys,
        "ablation_profile",
        format_table(
            rows,
            title="Ablation — block profile (§4.2): profile-assisted vs serial pre-execution fallback",
        ),
    )

    for row in rows:
        assert row["with_profile"] > row["no_profile_fallback"]
        assert row["no_profile_fallback"] <= 1.05  # fallback ~ serial or worse

    entry = bench_chain[0]
    benchmark.pedantic(
        lambda: with_profile.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )


def test_ablation_occ_abort_rate(bench_chain, benchmark, capsys):
    """Abort rate and wasted work vs proposer thread count."""
    rows = []
    for lanes in (1, 2, 4, 8, 16):
        proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        total_aborts = 0
        total_commits = 0
        wasted = 0.0
        useful = 0.0
        for entry in bench_chain[:6]:
            pool = TxPool()
            pool.add_many(sorted(entry.txs, key=lambda t: t.nonce))
            result = proposer.propose(entry.parent_state, pool, _ctx(entry))
            total_aborts += result.stats.aborts
            total_commits += len(result.committed)
            useful += sum(c.cost for c in result.committed)
            wasted += result.stats.total_work - sum(c.cost for c in result.committed)
        rows.append(
            {
                "lanes": lanes,
                "commits": total_commits,
                "aborts": total_aborts,
                "abort_rate": f"{total_aborts / (total_commits + total_aborts):.1%}",
                "wasted_work": f"{wasted / (useful + wasted):.1%}",
            }
        )

    emit(
        capsys,
        "ablation_occ_aborts",
        format_table(
            rows,
            title="Ablation — OCC-WSI abort rate vs proposer thread count (wasted optimistic work)",
        ),
    )

    # single lane never aborts; contention grows with concurrency
    assert rows[0]["aborts"] == 0
    abort_counts = [r["aborts"] for r in rows]
    assert abort_counts[-1] > abort_counts[1]

    entry = bench_chain[0]
    proposer16 = OCCWSIProposer(config=ProposerConfig(lanes=16))

    def kernel():
        pool = TxPool()
        pool.add_many(sorted(entry.txs, key=lambda t: t.nonce))
        return proposer16.propose(entry.parent_state, pool, _ctx(entry))

    benchmark.pedantic(kernel, rounds=3, iterations=1)
