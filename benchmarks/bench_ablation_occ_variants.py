"""Ablation — OCC-WSI vs deterministic round-based OCC (OCC-DA style).

The paper positions OCC-WSI against the deterministic-abort OCC family
(§2.3, Garamvölgyi et al. [17]).  This benchmark quantifies the contrast
on the proposer side: round barriers waste the tail of every round (lanes
idle while the slowest transaction finishes), while OCC-WSI's lanes pull
new work the moment they free up; in exchange, the round design makes
abort decisions replayable.  Both pack identical transaction sets.
"""


from benchmarks.conftest import THREAD_SWEEP, emit
from repro.analysis.report import format_table
from repro.core.baselines import SerialExecutor
from repro.core.batchocc import BatchOCCConfig, BatchOCCProposer
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import ExecutionContext
from repro.txpool.pool import TxPool


def _ctx(entry):
    return ExecutionContext(
        block_number=entry.block.header.number,
        timestamp=entry.block.header.timestamp,
        coinbase=entry.block.header.coinbase,
        gas_limit=entry.block.header.gas_limit,
    )


def _pool(entry):
    pool = TxPool()
    pool.add_many(sorted(entry.txs, key=lambda t: t.nonce))
    return pool


def test_ablation_occ_variants(bench_chain, benchmark, capsys):
    serial = SerialExecutor()
    chain = bench_chain[:6]
    serial_times = []
    for entry in chain:
        sres = serial.propose_serial(entry.parent_state, _pool(entry), _ctx(entry))
        serial_times.append(sres.total_time)

    rows = []
    for lanes in THREAD_SWEEP:
        wsi_engine = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        batch_engine = BatchOCCProposer(config=BatchOCCConfig(lanes=lanes))
        wsi_speedups, batch_speedups, batch_rounds = [], [], []
        for serial_time, entry in zip(serial_times, chain):
            wsi = wsi_engine.propose(entry.parent_state, _pool(entry), _ctx(entry))
            batch = batch_engine.propose(entry.parent_state, _pool(entry), _ctx(entry))
            assert len(wsi.committed) == len(batch.committed) == len(entry.txs)
            wsi_speedups.append(serial_time / wsi.stats.makespan)
            batch_speedups.append(serial_time / batch.stats.makespan)
            batch_rounds.append(batch.rounds)
        rows.append(
            {
                "lanes": lanes,
                "occ_wsi": round(sum(wsi_speedups) / len(wsi_speedups), 2),
                "batch_occ_da": round(sum(batch_speedups) / len(batch_speedups), 2),
                "mean_rounds": round(sum(batch_rounds) / len(batch_rounds), 1),
            }
        )

    emit(
        capsys,
        "ablation_occ_variants",
        format_table(
            rows,
            title="Ablation — proposer OCC variants: OCC-WSI (async lanes) vs round-based deterministic OCC",
        ),
    )

    # OCC-WSI dominates at every lane count (the barrier penalty)
    for row in rows:
        assert row["occ_wsi"] > row["batch_occ_da"]

    entry = chain[0]
    engine = BatchOCCProposer(config=BatchOCCConfig(lanes=16))
    benchmark.pedantic(
        lambda: engine.propose(entry.parent_state, _pool(entry), _ctx(entry)),
        rounds=3,
        iterations=1,
    )
