"""Ablation — storage prefetching (§5.4 experimental setup).

The paper's single-block evaluation enables geth's prefetcher "to reduce
the I/O impact in executing transactions and prefetch all required
storage slots to memory".  This ablation disables it: every SLOAD pays
the cold trie/disk path instead.  Both the parallel validator and its
serial baseline pay the cold cost, so *speedup* barely moves — but
absolute block latency balloons, which is exactly why the paper
normalises the comparison this way.
"""


from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.validator import ParallelValidator, ValidatorConfig


def test_ablation_prefetch(bench_chain, benchmark, capsys):
    warm = ParallelValidator(config=ValidatorConfig(lanes=16, prefetch=True))
    cold = ParallelValidator(config=ValidatorConfig(lanes=16, prefetch=False))

    rows = []
    slowdowns = []
    for entry in bench_chain[:8]:
        res_warm = warm.validate_block(entry.block, entry.parent_state)
        res_cold = cold.validate_block(entry.block, entry.parent_state)
        assert res_warm.accepted and res_cold.accepted
        slowdown = res_cold.makespan / res_warm.makespan
        slowdowns.append(slowdown)
        rows.append(
            {
                "height": entry.block.number,
                "warm_makespan": round(res_warm.makespan, 1),
                "cold_makespan": round(res_cold.makespan, 1),
                "latency_x": round(slowdown, 2),
                "warm_speedup": round(res_warm.speedup, 2),
                "cold_speedup": round(res_cold.speedup, 2),
            }
        )

    emit(
        capsys,
        "ablation_prefetch",
        format_table(
            rows,
            title="Ablation — storage prefetch (§5.4): warm (prefetched) vs cold SLOAD paths @16 threads",
        ),
    )

    # cold execution is substantially slower in absolute terms...
    assert all(s > 1.3 for s in slowdowns), slowdowns
    # ...while relative speedup moves far less (both sides pay the I/O)
    for row in rows:
        assert abs(row["cold_speedup"] - row["warm_speedup"]) < 1.5

    entry = bench_chain[0]
    benchmark.pedantic(
        lambda: cold.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )
