"""Ablation — scheduler policy (§4.3 / §5.4 design choice).

The paper schedules subgraphs by gas-weighted LPT because gas approximates
running time.  This ablation swaps the policy (count-LPT, block order,
round-robin, random) and measures single-block validator speedup at 16
threads — quantifying how much of BlockPilot's validator win comes from
the gas heuristic versus mere parallel structure.
"""


from benchmarks.conftest import emit
from repro.analysis.metrics import SweepPoint
from repro.analysis.report import format_table
from repro.core.scheduler import SCHEDULER_POLICIES
from repro.core.validator import ParallelValidator, ValidatorConfig


def test_ablation_scheduler_policies(bench_chain, benchmark, capsys):
    rows = []
    means = {}
    for policy in SCHEDULER_POLICIES:
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=16, policy=policy, seed=5)
        )
        samples = []
        for entry in bench_chain:
            res = validator.validate_block(entry.block, entry.parent_state)
            assert res.accepted, res.reason
            samples.append(res.speedup)
        point = SweepPoint.from_samples(0, samples)
        means[policy] = point.summary.mean
        rows.append(
            {
                "policy": policy,
                "mean_speedup": round(point.summary.mean, 3),
                "min": round(point.summary.minimum, 3),
                "max": round(point.summary.maximum, 3),
            }
        )
    rows.sort(key=lambda r: -r["mean_speedup"])

    emit(
        capsys,
        "ablation_scheduler",
        format_table(
            rows,
            title="Ablation — validator scheduler policy @16 threads (paper uses gas-LPT)",
        ),
    )

    # gas-LPT must not lose to load-blind policies
    assert means["gas_lpt"] >= means["round_robin"] * 0.999
    assert means["gas_lpt"] >= means["block_order"] * 0.999

    entry = bench_chain[0]
    v = ParallelValidator(config=ValidatorConfig(lanes=16, policy="gas_lpt"))
    benchmark.pedantic(
        lambda: v.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )
