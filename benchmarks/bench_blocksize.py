"""Block-size sweep — the §2.2 motivation quantified.

"Researchers have attempted to address the issue of throughput by
increasing block sizes.  However ... nodes with lower performance may
struggle to keep up."  The constraint is validation latency: a block must
validate well inside the block interval or slow nodes fall behind and
fork rates climb.

This benchmark sweeps transactions-per-block and reports per-block
latency and implied execution-layer TPS for serial vs BlockPilot
validation.  Two effects show up:

* at and below the calibrated size (~132 tx), parallel validation cuts
  latency ~3.3-3.8x — the same latency budget admits a ~3x larger block;
* growing blocks *further over fixed state percolates the conflict
  graph*: with more transactions touching the same accounts, components
  merge into a giant subgraph and the parallel speedup collapses toward
  serial (1.2x at 4x the calibrated size).

The second effect sharpens the paper's §2.2 caution: block size cannot be
scaled naively even with parallel execution — contention, not just
propagation, caps it.
"""

import dataclasses


from benchmarks.conftest import emit
from repro.analysis.metrics import throughput_tps
from repro.analysis.report import format_table
from repro.chain.blockchain import Blockchain
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import mainnet_scenario

BLOCK_SIZES = (33, 66, 132, 264, 528)


def test_blocksize_sweep(bench_universe, benchmark, capsys):
    validator = ParallelValidator(config=ValidatorConfig(lanes=16))
    proposer = ProposerNode("size")
    chain = Blockchain(bench_universe.genesis)

    rows = []
    speedups = {}
    for size in BLOCK_SIZES:
        uni = dataclasses.replace(bench_universe, nonces={})
        cfg = dataclasses.replace(
            mainnet_scenario(seed=31), txs_per_block=size, tx_count_jitter=0.0
        )
        generator = BlockWorkloadGenerator(uni, cfg)
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(
            chain.genesis.header, bench_universe.genesis, txs
        )
        res = validator.validate_block(sealed.block, bench_universe.genesis)
        assert res.accepted, res.reason
        speedups[size] = res.speedup
        rows.append(
            {
                "txs_per_block": size,
                "max_subgraph": f"{res.graph.largest_component_ratio():.0%}",
                "serial_us": round(res.serial_time, 1),
                "blockpilot_us": round(res.makespan, 1),
                "speedup": round(res.speedup, 2),
                "serial_tps": f"{throughput_tps(size, res.serial_time):,.0f}",
                "blockpilot_tps": f"{throughput_tps(size, res.makespan):,.0f}",
            }
        )

    emit(
        capsys,
        "blocksize",
        format_table(
            rows,
            title=(
                "Block-size sweep (§2.2): validation latency and implied "
                "execution-layer TPS, serial vs BlockPilot @16 threads"
            ),
        ),
    )

    # strong wins at/below the calibrated size...
    for size in (33, 66, 132):
        assert speedups[size] > 2.5, (size, speedups[size])
    # ...and conflict percolation erodes them as blocks outgrow the state:
    # every transaction still accelerates, but the giant component binds
    assert speedups[528] < speedups[132]
    assert speedups[528] > 1.0

    uni = dataclasses.replace(bench_universe, nonces={})
    cfg = dataclasses.replace(mainnet_scenario(seed=31), txs_per_block=264)
    generator = BlockWorkloadGenerator(uni, cfg)
    txs = generator.generate_block_txs()

    def kernel():
        sealed = proposer.build_block(
            chain.genesis.header, bench_universe.genesis, txs
        )
        return validator.validate_block(sealed.block, bench_universe.genesis)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
