"""Workload study — where conflicts come from (§2.3/§3.1).

The paper grounds its design in Garamvölgyi et al.'s empirical finding
that "the majority of data conflicts encountered in parallel Ethereum
workloads are derived from storage and counters".  This benchmark
reproduces that table on the generated chain: conflict edges classified
by key kind, the hottest keys, and the share of transactions entangled
in at least one conflict.
"""


from benchmarks.conftest import emit
from repro.analysis.conflicts import analyze_block_conflicts
from repro.analysis.report import format_table


def test_conflict_sources(bench_chain, benchmark, capsys):
    totals = {}
    edges = 0
    conflicting_fractions = []
    hot_samples = []
    for entry in bench_chain:
        breakdown = analyze_block_conflicts(entry.block)
        edges += breakdown.total_edges
        for kind, count in breakdown.edges_by_kind.items():
            totals[kind] = totals.get(kind, 0) + count
        conflicting_fractions.append(breakdown.conflicting_tx_fraction)
        if breakdown.hot_keys:
            hot_samples.append(breakdown.hot_keys[0])

    rows = [
        {
            "conflict_source": kind,
            "edges": count,
            "share": f"{count / edges:.1%}",
        }
        for kind, count in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    mean_conflicting = sum(conflicting_fractions) / len(conflicting_fractions)
    report = format_table(
        rows,
        title=(
            "Conflict sources across the chain (§2.3 claim: counters + storage "
            f"dominate); {mean_conflicting:.0%} of txs touch a conflict"
        ),
    )
    emit(capsys, "conflict_study", report)

    # the study's claim holds on the calibrated workload
    counters = totals.get("balance", 0) + totals.get("nonce", 0)
    storage = totals.get("storage", 0)
    assert (counters + storage) / edges > 0.95
    assert storage > 0 and counters > 0
    assert totals.get("code", 0) == 0

    entry = bench_chain[0]
    benchmark.pedantic(
        lambda: analyze_block_conflicts(entry.block), rounds=3, iterations=1
    )
