"""§5.2 Correctness validation.

The paper replays 10M mainnet blocks and checks that every MPT root
matches the block header.  Here the chain is generated (see DESIGN.md's
substitution table), and the check is three-way: serial execution, the
OCC-WSI proposer's materialised state, and BlockPilot's parallel validator
must all produce the header root for every block in the chain.
"""


from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.baselines import SerialExecutor, TwoPhaseOCCExecutor
from repro.core.validator import ParallelValidator, ValidatorConfig


def test_correctness_all_roots_match(bench_chain, benchmark, capsys):
    validator = ParallelValidator(config=ValidatorConfig(lanes=16))
    serial = SerialExecutor()
    occ = TwoPhaseOCCExecutor(lanes=16)

    rows = []
    for entry in bench_chain:
        header_root = entry.block.header.state_root
        res = validator.validate_block(entry.block, entry.parent_state)
        assert res.accepted, res.reason
        sres = serial.execute_block(entry.block, entry.parent_state)
        ores = occ.execute_block(entry.block, entry.parent_state)
        assert res.post_state.state_root() == header_root
        assert sres.post_state.state_root() == header_root
        assert ores.post_state.state_root() == header_root
        rows.append(
            {
                "height": entry.block.number,
                "txs": len(entry.block),
                "root": header_root.hex()[:16] + "…",
                "serial==header": True,
                "parallel==header": True,
                "occ==header": True,
            }
        )

    emit(
        capsys,
        "correctness",
        format_table(
            rows,
            title=(
                "§5.2 correctness: state roots across execution modes "
                f"({len(rows)} blocks, all match)"
            ),
        ),
    )

    # timed kernel: one full parallel validation of a representative block
    entry = bench_chain[len(bench_chain) // 2]
    benchmark.pedantic(
        lambda: validator.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )
