"""Era drift — §5.5's longitudinal claim.

"According to Saraph et al., the parallelizability of blocks decreases
over time due to several hotspot contracts.  This problem is even more
severe in current application patterns like DeFi, NFT and token
distributions."

Regenerated with the workload's era profiles: the transaction mix slides
from payment-dominated genesis-era traffic toward the modern hotspot mix
as the simulated height grows, and the validator's speedup decays with
it — the same downward trend the paper's argument rests on.
"""

import dataclasses


from benchmarks.conftest import emit
from repro.analysis.metrics import correlation
from repro.analysis.report import format_table
from repro.chain.blockchain import Blockchain
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import era_profile

HEIGHTS = (0, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000)
BLOCKS_PER_ERA = 2


def test_era_drift(bench_universe, benchmark, capsys):
    validator = ParallelValidator(config=ValidatorConfig(lanes=16))
    proposer = ProposerNode("era")
    chain = Blockchain(bench_universe.genesis)

    rows = []
    pairs = []
    for height in HEIGHTS:
        cfg = era_profile(height, seed=29)
        uni = dataclasses.replace(bench_universe, nonces={})
        generator = BlockWorkloadGenerator(uni, cfg)
        ratios, speedups = [], []
        for _ in range(BLOCKS_PER_ERA):
            txs = generator.generate_block_txs()
            sealed = proposer.build_block(
                chain.genesis.header, bench_universe.genesis, txs
            )
            res = validator.validate_block(sealed.block, bench_universe.genesis)
            assert res.accepted, res.reason
            ratios.append(res.graph.largest_component_ratio())
            speedups.append(res.speedup)
            uni.nonces.clear()
        mean_speedup = sum(speedups) / len(speedups)
        pairs.append((height, mean_speedup))
        rows.append(
            {
                "height": f"{height:,}",
                "payments": f"{cfg.w_payment:.0%}",
                "hotspot": round(cfg.hotspot_intensity, 2),
                "max_subgraph": f"{sum(ratios) / len(ratios):.1%}",
                "speedup@16": round(mean_speedup, 2),
            }
        )

    r = correlation(pairs)
    emit(
        capsys,
        "era_drift",
        format_table(
            rows,
            title=(
                "Era drift (§5.5) — parallelizability decays with chain age "
                f"(height-vs-speedup Pearson r = {r:.2f})"
            ),
        ),
    )

    # the longitudinal claim: clear downward trend
    assert r < -0.8
    assert rows[0]["speedup@16"] > rows[-1]["speedup@16"] * 1.5

    cfg = era_profile(10_000_000, seed=29)
    uni = dataclasses.replace(bench_universe, nonces={})
    generator = BlockWorkloadGenerator(uni, cfg)
    txs = generator.generate_block_txs()

    def kernel():
        sealed = proposer.build_block(
            chain.genesis.header, bench_universe.genesis, txs
        )
        return validator.validate_block(sealed.block, bench_universe.genesis)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
