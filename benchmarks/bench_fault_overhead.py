"""Fault-injection overhead and graceful-degradation curves.

Two claims behind the robustness layer:

* **Faults off, cost off** — with no injector (production) or an
  all-zero-rate injector, the fault hooks are a ``None`` check per
  transaction: wall-clock overhead stays under 5% and the simulated
  timing is bit-identical.
* **Faults on, degrade gracefully** — at 1/5/10% worker-fault rates the
  validator retries with deterministic backoff (and falls back to serial
  re-execution when a fault persists); every block still commits with the
  honest state root, only simulated makespan grows.
"""

import statistics
import time

import pytest

pytestmark = pytest.mark.faults

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.faults.injector import FaultConfig, FaultInjector

FAULT_RATES = (0.01, 0.05, 0.10)
REPEATS = 5


def _one_wall(validator, entries):
    """Wall-clock seconds for one validation pass over the chain prefix."""
    start = time.perf_counter()
    for entry in entries:
        result = validator.validate_block(entry.block, entry.parent_state)
        assert result.accepted, result.reason
    return time.perf_counter() - start


def _median_wall(validator, entries):
    """Median wall-clock seconds to validate the chain prefix."""
    return statistics.median(_one_wall(validator, entries) for _ in range(REPEATS))


def test_fault_hooks_overhead_when_disabled(bench_chain, capsys):
    """The fault machinery must be free when unused (<5% wall clock)."""
    entries = bench_chain[:4]
    baseline = ParallelValidator(config=ValidatorConfig(lanes=16))
    hooked = ParallelValidator(
        config=ValidatorConfig(lanes=16),
        injector=FaultInjector(FaultConfig(seed=1)),  # all rates zero
    )

    # identical simulated timing: a zero-rate injector injects nothing
    for entry in entries:
        a = baseline.validate_block(entry.block, entry.parent_state)
        b = hooked.validate_block(entry.block, entry.parent_state)
        assert a.phases.commit_end == b.phases.commit_end
        assert a.post_state.state_root() == b.post_state.state_root()

    _one_wall(baseline, entries)  # warm up caches/JIT-free interpreter
    _one_wall(hooked, entries)
    # interleave samples (cancels slow machine drift) and compare the
    # minima: preemption and cache pollution only ever add time, so the
    # best-of-N pair is the closest to the true single-pass cost
    base_samples, hook_samples = [], []
    for _ in range(REPEATS):
        base_samples.append(_one_wall(baseline, entries))
        hook_samples.append(_one_wall(hooked, entries))
    base = min(base_samples)
    with_hooks = min(hook_samples)
    overhead = with_hooks / base - 1.0

    emit(
        capsys,
        "fault_overhead_disabled",
        format_table(
            [
                {
                    "config": "no injector",
                    "median_s": round(base, 4),
                    "overhead": "—",
                },
                {
                    "config": "zero-rate injector",
                    "median_s": round(with_hooks, 4),
                    "overhead": f"{overhead:+.1%}",
                },
            ],
            title="Fault machinery overhead, faults disabled (4 blocks, 16 lanes)",
        ),
    )
    assert overhead < 0.05, f"disabled fault hooks cost {overhead:.1%}"


def test_degradation_curve_under_worker_faults(bench_chain, capsys):
    """Throughput degrades smoothly with fault rate; correctness never."""
    entries = bench_chain[:4]
    honest = ParallelValidator(config=ValidatorConfig(lanes=16))
    honest_makespan = sum(
        honest.validate_block(e.block, e.parent_state).phases.commit_end
        for e in entries
    )

    rows = [
        {
            "fault_rate": "0%",
            "worker_faults": 0,
            "retries": 0,
            "serial_fallbacks": 0,
            "makespan_us": round(honest_makespan, 1),
            "slowdown": "1.00×",
        }
    ]
    prev_makespan = honest_makespan
    for rate in FAULT_RATES:
        injector = FaultInjector(
            FaultConfig(seed=7, worker_fault_rate=rate, stall_rate=rate)
        )
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=16, max_parallel_retries=2),
            injector=injector,
        )
        makespan = faults = retries = fallbacks = 0.0
        for entry in entries:
            result = validator.validate_block(entry.block, entry.parent_state)
            # degradation, never corruption: the honest root always commits
            assert result.accepted, result.reason
            assert (
                result.post_state.state_root() == entry.block.header.state_root
            )
            makespan += result.phases.commit_end
            faults += result.stats.worker_faults
            retries += result.stats.exec_retries
            fallbacks += result.stats.serial_fallbacks
        rows.append(
            {
                "fault_rate": f"{rate:.0%}",
                "worker_faults": int(faults),
                "retries": int(retries),
                "serial_fallbacks": int(fallbacks),
                "makespan_us": round(makespan, 1),
                "slowdown": f"{makespan / honest_makespan:.2f}×",
            }
        )
        assert makespan >= prev_makespan * 0.999  # monotone-ish degradation
        prev_makespan = makespan

    emit(
        capsys,
        "fault_degradation_curve",
        format_table(
            rows,
            title="Graceful degradation vs worker-fault rate (4 blocks, 16 lanes)",
        ),
    )
