"""Figure 6 — Evaluation of Proposer.

Paper: OCC-WSI proposers over real blocks, 2→16 threads, average speedups
1.82× / 2.60× / 3.56× / 4.89×; 99.7% of blocks accelerated; the figure is
a per-thread-count histogram of per-block speedup.

Regenerated here: the same sweep over the generated chain.  The baseline
is geth-style serial block building over the identical pending set.
"""


from benchmarks.conftest import THREAD_SWEEP, emit, emit_json
from repro.analysis.metrics import SweepPoint, scaling_sweep_table
from repro.analysis.report import format_histogram, format_table
from repro.core.baselines import SerialExecutor
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import ExecutionContext
from repro.txpool.pool import TxPool

PAPER_MEANS = {2: 1.82, 4: 2.60, 8: 3.56, 16: 4.89}


def _ctx(entry):
    return ExecutionContext(
        block_number=entry.block.header.number,
        timestamp=entry.block.header.timestamp,
        coinbase=entry.block.header.coinbase,
        gas_limit=entry.block.header.gas_limit,
    )


def _fresh_pool(entry):
    pool = TxPool()
    pool.add_many(sorted(entry.txs, key=lambda t: t.nonce))
    return pool


def test_fig6_proposer_scalability(bench_chain, benchmark, capsys):
    serial = SerialExecutor()
    serial_times = {}
    for i, entry in enumerate(bench_chain):
        sres = serial.propose_serial(entry.parent_state, _fresh_pool(entry), _ctx(entry))
        assert len(sres.packed) == len(entry.txs)
        serial_times[i] = sres.total_time

    points = []
    sixteen_thread_samples = []
    for lanes in THREAD_SWEEP:
        proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        samples = []
        for i, entry in enumerate(bench_chain):
            result = proposer.propose(entry.parent_state, _fresh_pool(entry), _ctx(entry))
            assert len(result.committed) == len(entry.txs)
            samples.append(serial_times[i] / result.stats.makespan)
        points.append(SweepPoint.from_samples(lanes, samples))
        if lanes == 16:
            sixteen_thread_samples = samples

    rows = scaling_sweep_table(points)
    for row in rows:
        row["paper_mean"] = PAPER_MEANS[row["threads"]]
    report = format_table(
        rows,
        title="Fig. 6 — proposer speedup vs thread count (OCC-WSI over serial geth-style building)",
    )
    report += "\n" + format_histogram(
        sixteen_thread_samples,
        [1, 2, 3, 4, 5, 6, 7, 8],
        title="Fig. 6 histogram — per-block speedup distribution @16 threads",
    )
    emit(capsys, "fig6_proposer", report)
    emit_json(
        "fig6_proposer",
        {
            "by_threads": {
                str(int(p.x)): {"mean_speedup": p.summary.mean} for p in points
            },
            "accelerated_fraction_16": points[-1].summary.accelerated_fraction,
        },
        config={"blocks": len(bench_chain), "thread_sweep": list(THREAD_SWEEP)},
    )

    # shape assertions: monotone scaling (within 5% sampling noise — at
    # high lane counts abort pressure can sag individual samples), ~paper
    # magnitude at 16 threads
    means = [p.summary.mean for p in points]
    assert all(b >= a * 0.95 for a, b in zip(means, means[1:])), means
    assert 3.5 <= means[-1] <= 7.0
    assert points[-1].summary.accelerated_fraction >= 0.95

    entry = bench_chain[0]
    proposer16 = OCCWSIProposer(config=ProposerConfig(lanes=16))
    benchmark.pedantic(
        lambda: proposer16.propose(entry.parent_state, _fresh_pool(entry), _ctx(entry)),
        rounds=3,
        iterations=1,
    )
