"""Figure 7(a) — Single-block validator scalability, BlockPilot vs OCC.

Paper: 1.7× / 2.5× / 3.03× / 3.18× at 2/4/8/16 threads; scaling flattens
past ~6 threads (hotspot critical path); the two-phase OCC comparator
[27] stays below BlockPilot throughout.
"""


from benchmarks.conftest import emit, emit_json
from repro.analysis.metrics import SweepPoint
from repro.analysis.report import format_table
from repro.core.baselines import TwoPhaseOCCExecutor
from repro.core.validator import ParallelValidator, ValidatorConfig

SWEEP = (2, 4, 6, 8, 12, 16)
PAPER_MEANS = {2: 1.7, 4: 2.5, 8: 3.03, 16: 3.18}


def test_fig7a_validator_scalability(bench_chain, benchmark, capsys):
    rows = []
    bp_means = []
    for lanes in SWEEP:
        validator = ParallelValidator(config=ValidatorConfig(lanes=lanes))
        occ = TwoPhaseOCCExecutor(lanes=lanes)
        bp_samples = []
        occ_samples = []
        for entry in bench_chain:
            res = validator.validate_block(entry.block, entry.parent_state)
            assert res.accepted, res.reason
            bp_samples.append(res.speedup)
            occ_samples.append(
                occ.execute_block(entry.block, entry.parent_state).speedup
            )
        bp = SweepPoint.from_samples(lanes, bp_samples)
        oc = SweepPoint.from_samples(lanes, occ_samples)
        bp_means.append(bp.summary.mean)
        rows.append(
            {
                "threads": lanes,
                "blockpilot": round(bp.summary.mean, 2),
                "occ_2phase": round(oc.summary.mean, 2),
                "paper_blockpilot": PAPER_MEANS.get(lanes, "—"),
                "bp_p90": round(bp.summary.p90, 2),
            }
        )

    emit(
        capsys,
        "fig7a_scalability",
        format_table(
            rows,
            title="Fig. 7(a) — single-block validator speedup vs threads (BlockPilot vs two-phase OCC)",
        ),
    )
    emit_json(
        "fig7a_scalability",
        {
            "by_threads": {
                str(row["threads"]): {
                    "blockpilot_speedup": row["blockpilot"],
                    "occ_2phase_speedup": row["occ_2phase"],
                }
                for row in rows
            },
        },
        config={"blocks": len(bench_chain), "thread_sweep": list(SWEEP)},
    )

    # shape: monotone-ish rise with a knee (≤5% gain past 8 threads),
    # BlockPilot dominates OCC at every point
    assert all(b >= a * 0.98 for a, b in zip(bp_means, bp_means[1:]))
    knee_gain = bp_means[SWEEP.index(16)] / bp_means[SWEEP.index(8)]
    assert knee_gain < 1.15, "no knee: scaling should flatten past ~8 threads"
    for row in rows:
        assert row["blockpilot"] > row["occ_2phase"]

    entry = bench_chain[0]
    validator16 = ParallelValidator(config=ValidatorConfig(lanes=16))
    benchmark.pedantic(
        lambda: validator16.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )
