"""Figure 7(b) — Speedup distribution of single-block validation.

Paper: at 16 worker threads, 99.8% of executed blocks accelerate, with a
long tail toward 1× caused by hotspot-dominated blocks.

Regenerated over a wider block sample than the other benchmarks (the
distribution is the point here), including a few hotspot-skewed blocks so
the tail is populated.
"""

import dataclasses


from benchmarks.conftest import emit
from repro.analysis.report import format_histogram, format_table
from repro.chain.blockchain import Blockchain
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode
from repro.simcore.stats import summarize_speedups
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import hotspot_scenario


def test_fig7b_speedup_distribution(bench_universe, bench_chain, benchmark, capsys):
    validator = ParallelValidator(config=ValidatorConfig(lanes=16))
    samples = []
    ratios = []
    for entry in bench_chain:
        res = validator.validate_block(entry.block, entry.parent_state)
        assert res.accepted
        samples.append(res.speedup)
        ratios.append(res.graph.largest_component_ratio())

    # extra blocks across the hotspot range to populate the distribution
    proposer = ProposerNode("dist")
    chain = Blockchain(bench_universe.genesis)
    for intensity in (0.1, 0.3, 0.7, 0.9):
        uni = dataclasses.replace(bench_universe, nonces={})
        generator = BlockWorkloadGenerator(
            uni, hotspot_scenario(intensity, seed=int(intensity * 100))
        )
        for _ in range(3):
            txs = generator.generate_block_txs()
            sealed = proposer.build_block(
                chain.genesis.header, bench_universe.genesis, txs
            )
            res = validator.validate_block(sealed.block, bench_universe.genesis)
            assert res.accepted, res.reason
            samples.append(res.speedup)
            ratios.append(res.graph.largest_component_ratio())
            uni.nonces.clear()

    summary = summarize_speedups(samples)
    report = format_histogram(
        samples,
        [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.5],
        title=f"Fig. 7(b) — per-block validator speedup @16 threads ({len(samples)} blocks)",
    )
    report += "\n" + format_table(
        [
            {
                "blocks": summary.count,
                "mean": round(summary.mean, 2),
                "median": round(summary.median, 2),
                "min": round(summary.minimum, 2),
                "max": round(summary.maximum, 2),
                "accelerated": f"{summary.accelerated_fraction:.1%}",
                "paper_accelerated": "99.8%",
                "mean_max_subgraph": f"{sum(ratios) / len(ratios):.1%}",
                "paper_max_subgraph": "27.5%",
            }
        ],
        title="Fig. 7(b) summary",
    )
    emit(capsys, "fig7b_distribution", report)

    assert summary.accelerated_fraction >= 0.9
    assert summary.minimum < summary.mean * 0.75, "expected a hotspot tail"

    entry = bench_chain[0]
    benchmark.pedantic(
        lambda: validator.validate_block(entry.block, entry.parent_state),
        rounds=3,
        iterations=1,
    )
