"""Figure 9 — Multi-block evaluation of the validator pipeline.

Paper: concurrently validating B same-height blocks on 16 worker threads,
speedup (over serially processing the B blocks) rises from 1 to 4 blocks,
peaking at 7.72×, then dips slightly toward 8 blocks (context switching
and result-shipping overhead on a fixed pool).

The same-height burst is produced exactly as the paper does it: multiple
proposers race over the same pending set (ForkSimulator), giving B valid
sibling blocks.
"""


from benchmarks.conftest import emit, emit_json
from repro.analysis.report import format_table
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.network.dissemination import ForkSimulator

BLOCK_COUNTS = (1, 2, 3, 4, 5, 6, 8)
PAPER = {1: 3.18, 2: "—", 4: 7.72, 8: "≈7 (slight dip)"}


def test_fig9_multiblock_pipeline(bench_universe, bench_chain, benchmark, capsys):
    entry = bench_chain[0]
    pipe = ValidatorPipeline(config=PipelineConfig(worker_lanes=16))
    parent_states = {entry.parent_header.hash: entry.parent_state}

    rows = []
    speedups = {}
    for count in BLOCK_COUNTS:
        forks = ForkSimulator(count, seed=21).propose_forks(
            entry.parent_header, entry.parent_state, entry.txs
        )
        res = pipe.process_blocks(forks.blocks, parent_states)
        assert res.all_accepted, [r.reason for r in res.results]
        speedups[count] = res.speedup
        rows.append(
            {
                "blocks": count,
                "speedup": round(res.speedup, 2),
                "paper": PAPER.get(count, "—"),
                "makespan_us": round(res.makespan, 1),
                "ctx_switches": res.context_switches,
                "pool_util": f"{res.stats.utilization:.0%}",
            }
        )

    emit(
        capsys,
        "fig9_multiblock",
        format_table(
            rows,
            title="Fig. 9 — pipeline speedup vs concurrent same-height blocks (16 worker lanes)",
        ),
    )
    emit_json(
        "fig9_multiblock",
        {
            "by_blocks": {
                str(row["blocks"]): {
                    "speedup": row["speedup"],
                    "makespan_us": row["makespan_us"],
                    "ctx_switches": row["ctx_switches"],
                }
                for row in rows
            },
            "peak_speedup": max(speedups.values()),
        },
        config={"block_counts": list(BLOCK_COUNTS), "worker_lanes": 16},
    )

    # shape: rises to a peak in the 4-6 block region, then declines at 8
    peak_count = max(speedups, key=speedups.get)
    assert 3 <= peak_count <= 6, f"peak at {peak_count} blocks"
    assert speedups[peak_count] > 2 * speedups[1]
    assert speedups[8] < speedups[peak_count]
    assert 5.0 <= speedups[peak_count] <= 10.0

    forks4 = ForkSimulator(4, seed=21).propose_forks(
        entry.parent_header, entry.parent_state, entry.txs
    )
    benchmark.pedantic(
        lambda: pipe.process_blocks(forks4.blocks, parent_states),
        rounds=3,
        iterations=1,
    )
