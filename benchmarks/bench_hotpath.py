"""Hot-path caching & indexing microbenchmarks (ISSUE 4).

Three layers, three headline numbers — each a **deterministic op-count
ratio** of the pre-overhaul algorithm to the indexed/batched/cached one,
so the committed golden can gate regressions without wall-clock noise:

* ``txpool.scan_speedup`` — linear pool scans (`contains`/`has_ready`
  as shipped before the hash index) vs the O(1) index and live counter;
* ``commit.write_speedup`` — per-overlay-slot trie writes vs the batched
  net-delta commit that drops no-op rewrites and untouched accounts;
* ``artifacts.reuse_speedup`` — preparation-phase derivations (footprints
  → graph) per consumer vs once per block via :class:`ArtifactCache`.

Wall-clock ratios ride along as informational ``wall_x`` keys (direction 0
for :mod:`repro.obs.baseline`, so host noise never trips the gate).  Every
legacy replica is checked for *equivalence* before its cost is counted —
a fast wrong path is not a data point.
"""

import time
import random

from benchmarks.conftest import emit, emit_json
from repro.analysis.report import format_table
from repro.common.types import Address
from repro.core.artifacts import ArtifactCache
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.state.account import AccountData, encode_account
from repro.state.statedb import (
    StateDB,
    StateSnapshot,
    _slot_key,
    _storage_value_bytes,
    genesis_snapshot,
)
from repro.state.trie import EMPTY_ROOT, SecureMPT
from repro.txpool.pool import PRICE_BUMP_PERCENT, TxPool
from repro.txpool.transaction import Transaction

LANE_SWEEP = (1, 2, 4, 8, 16)

POOL_SENDERS = 150
POOL_NONCES = 4
POOL_LOOKUPS_PER_WAKE = 4

COMMIT_ACCOUNTS = 8
COMMIT_SLOTS = 80
COMMIT_ROUNDS = 3


# --------------------------------------------------------------------------- #
# txpool: linear scans vs hash index + live counter
# --------------------------------------------------------------------------- #


def _mk_tx(sender, nonce, price):
    return Transaction(
        sender=sender,
        to=Address.from_int(7),
        value=0,
        data=b"",
        gas_limit=21000,
        gas_price=price,
        nonce=nonce,
    )


def _legacy_contains(pool, tx_hash):
    """The pre-index `contains`: walk in-flight, parked, then the heap.

    Returns (result, entries inspected) — the op count the old code paid.
    """
    ops = 0
    for t in pool._in_flight.values():
        ops += 1
        if t.hash == tx_hash:
            return True, ops
    for parked in pool._parked.values():
        for t in parked.values():
            ops += 1
            if t.hash == tx_hash:
                return True, ops
    for _, _, t in pool._ready:
        ops += 1
        if t.hash == tx_hash and t.hash not in pool._cancelled:
            return True, ops
    return False, ops


def _legacy_has_ready(pool):
    """The pre-counter `has_ready`: scan the heap past cancelled entries."""
    ops = 0
    for _, _, t in pool._ready:
        ops += 1
        if t.hash not in pool._cancelled:
            return True, ops
    return False, ops


def _build_pool(rng):
    pool = TxPool()
    txs = []
    for i in range(POOL_SENDERS):
        sender = Address.from_int(10_000 + i)
        for nonce in range(POOL_NONCES):
            t = _mk_tx(sender, nonce, rng.randint(10, 500))
            pool.add(t)
            txs.append(t)
    # mild RBF churn: leaves lazily-cancelled entries in the heap, the
    # case the legacy has_ready scan pays for
    for i in range(0, POOL_SENDERS, 4):
        sender = Address.from_int(10_000 + i)
        old_price = pool._ready_entry[sender].gas_price
        bump = old_price + old_price * PRICE_BUMP_PERCENT // 100
        replacement = _mk_tx(sender, 0, max(bump, old_price + 1))
        pool.add(replacement)
        txs.append(replacement)
    return pool, txs


def bench_txpool(rng):
    pool, txs = _build_pool(rng)
    absent = [_mk_tx(Address.from_int(99_000 + i), 0, 1).hash for i in range(50)]
    lookups = []
    for _ in range(200):  # one "wake": a ready probe plus a few membership checks
        lookups.append(("ready", None))
        for _ in range(POOL_LOOKUPS_PER_WAKE):
            if rng.random() < 0.7:
                lookups.append(("contains", rng.choice(txs).hash))
            else:
                lookups.append(("contains", rng.choice(absent)))

    def run_legacy():
        ops = 0
        results = []
        for kind, h in lookups:
            if kind == "ready":
                res, cost = _legacy_has_ready(pool)
            else:
                res, cost = _legacy_contains(pool, h)
            ops += cost
            results.append(res)
        return results, ops

    def run_indexed():
        results = []
        for kind, h in lookups:
            if kind == "ready":
                results.append(pool.has_ready())
            else:
                results.append(pool.contains(h))
        return results, len(lookups)  # every call is one O(1) probe

    legacy_results, legacy_ops = run_legacy()
    indexed_results, indexed_ops = run_indexed()
    assert legacy_results == indexed_results  # equivalence before speed

    start = time.perf_counter()
    run_legacy()
    legacy_wall = time.perf_counter() - start
    start = time.perf_counter()
    run_indexed()
    indexed_wall = time.perf_counter() - start

    return {
        "pool_size": len(pool),
        "lookups": len(lookups),
        "ops_legacy": legacy_ops,
        "ops_indexed": indexed_ops,
        "scan_speedup": round(legacy_ops / indexed_ops, 2),
        "wall_x": round(legacy_wall / indexed_wall, 2),
    }


# --------------------------------------------------------------------------- #
# state commit: per-slot trie writes vs batched net-delta commit
# --------------------------------------------------------------------------- #


def _legacy_commit(base: StateSnapshot, writes, balances):
    """The pre-batching commit: one trie op per overlay slot, no no-op skip,
    every touched account unconditionally re-encoded.

    Returns (snapshot, trie op count).  ``writes`` is {addr: {slot: value}}
    (final overlay values), ``balances`` is {addr: new balance}.
    """
    accounts = dict(base.accounts)
    account_trie = base._account_trie
    storage_tries = dict(base._storage_tries)
    ops = 0
    for address in sorted(set(writes) | set(balances), key=bytes):
        base_acct = base.account(address)
        base_storage = base_acct.storage if base_acct else {}
        merged = dict(base_storage)
        storage_trie = storage_tries.get(address, SecureMPT())
        for slot, value in sorted(writes.get(address, {}).items()):
            ops += 1
            if value:
                merged[slot] = value
                storage_trie = storage_trie.set(
                    _slot_key(slot), _storage_value_bytes(value)
                )
            else:
                merged.pop(slot, None)
                storage_trie = storage_trie.delete(_slot_key(slot))
        if storage_trie.is_empty():
            storage_tries.pop(address, None)
            storage_root = EMPTY_ROOT
        else:
            storage_tries[address] = storage_trie
            storage_root = storage_trie.root_hash()
        new_acct = AccountData(
            nonce=base_acct.nonce if base_acct else 0,
            balance=balances.get(address, base_acct.balance if base_acct else 0),
            code=base_acct.code if base_acct else b"",
            storage=merged,
        )
        accounts[address] = new_acct
        ops += 1
        account_trie = account_trie.set(
            bytes(address), encode_account(new_acct, storage_root)
        )
    return StateSnapshot(accounts, account_trie, storage_tries), ops


def _batched_ops(base: StateSnapshot, writes, balances):
    """Trie ops the batched commit pays: net-delta slots + changed accounts."""
    ops = 0
    for address in set(writes) | set(balances):
        base_acct = base.account(address)
        base_storage = base_acct.storage if base_acct else {}
        changed = sum(
            1
            for slot, value in writes.get(address, {}).items()
            if value != base_storage.get(slot, 0)
        )
        balance_changed = (
            address in balances
            and balances[address] != (base_acct.balance if base_acct else 0)
        )
        if changed or balance_changed:
            ops += changed + 1  # slot batch + one account re-encode
    return ops


def bench_commit(rng):
    addrs = [Address.from_int(50_000 + i) for i in range(COMMIT_ACCOUNTS)]
    alloc = {
        a: AccountData(
            nonce=1,
            balance=10**6,
            code=b"\x60\x00",
            storage={s: rng.randint(1, 99) for s in range(COMMIT_SLOTS)},
        )
        for a in addrs
    }
    snapshot = genesis_snapshot(alloc)

    legacy_ops_total = 0
    batched_ops_total = 0
    legacy_wall = 0.0
    batched_wall = 0.0
    for _round in range(COMMIT_ROUNDS):
        writes = {}
        balances = {}
        for a in addrs:
            base = snapshot.account(a)
            slot_writes = {}
            for s in range(COMMIT_SLOTS):
                current = base.storage.get(s, 0)
                if rng.random() < 0.75:
                    slot_writes[s] = current  # no-op rewrite (the common case)
                else:
                    slot_writes[s] = rng.randint(0, 99)
            writes[a] = slot_writes
            if rng.random() < 0.25:
                balances[a] = base.balance + rng.randint(1, 100)

        db = StateDB(snapshot)
        for a, slot_writes in writes.items():
            for s, v in slot_writes.items():
                db.set_storage(a, s, v)
        for a, bal in balances.items():
            db.set_balance(a, bal)

        start = time.perf_counter()
        batched = db.commit()
        batched_wall += time.perf_counter() - start

        start = time.perf_counter()
        legacy, legacy_ops = _legacy_commit(snapshot, writes, balances)
        legacy_wall += time.perf_counter() - start

        assert batched.state_root() == legacy.state_root()  # equivalence
        legacy_ops_total += legacy_ops
        batched_ops_total += _batched_ops(snapshot, writes, balances)
        snapshot = batched

    return {
        "accounts": COMMIT_ACCOUNTS,
        "slots": COMMIT_SLOTS,
        "rounds": COMMIT_ROUNDS,
        "trie_ops_legacy": legacy_ops_total,
        "trie_ops_batched": batched_ops_total,
        "write_speedup": round(legacy_ops_total / batched_ops_total, 2),
        "wall_x": round(legacy_wall / batched_wall, 2),
    }


# --------------------------------------------------------------------------- #
# artifacts: preparation derivations per consumer vs once per block
# --------------------------------------------------------------------------- #


def bench_artifacts(bench_chain):
    entry = bench_chain[0]
    cache = ArtifactCache()

    start = time.perf_counter()
    cached_results = [
        ParallelValidator(
            config=ValidatorConfig(lanes=lanes), artifacts=cache
        ).validate_block(entry.block, entry.parent_state)
        for lanes in LANE_SWEEP
    ]
    cached_wall = time.perf_counter() - start

    start = time.perf_counter()
    plain_results = [
        ParallelValidator(config=ValidatorConfig(lanes=lanes)).validate_block(
            entry.block, entry.parent_state
        )
        for lanes in LANE_SWEEP
    ]
    plain_wall = time.perf_counter() - start

    for cached_res, plain_res in zip(cached_results, plain_results):
        assert cached_res.accepted and plain_res.accepted
        assert cached_res.makespan == plain_res.makespan
        assert (
            cached_res.post_state.state_root() == plain_res.post_state.state_root()
        )

    derivations = cache.hits + cache.misses  # what the uncached path computes
    return {
        "consumers": len(LANE_SWEEP),
        "graph_builds_cached": cache.misses,
        "reuse_speedup": round(derivations / cache.misses, 2),
        "wall_x": round(plain_wall / cached_wall, 2),
    }


def test_hotpath_microbench(bench_chain, capsys):
    rng = random.Random(4242)
    txpool = bench_txpool(rng)
    commit = bench_commit(rng)
    artifacts = bench_artifacts(bench_chain)

    # acceptance bar (ISSUE 4): ≥2x op reduction on every layer
    assert txpool["scan_speedup"] >= 2.0
    assert commit["write_speedup"] >= 2.0
    assert artifacts["reuse_speedup"] >= 2.0

    rows = [
        {"layer": "txpool scan", **{k: v for k, v in txpool.items()}},
        {"layer": "state commit", **{k: v for k, v in commit.items()}},
        {"layer": "artifacts", **{k: v for k, v in artifacts.items()}},
    ]
    emit(
        capsys,
        "hotpath",
        format_table(
            [
                {
                    "layer": r["layer"],
                    "speedup": r.get("scan_speedup")
                    or r.get("write_speedup")
                    or r.get("reuse_speedup"),
                    "wall_x": r["wall_x"],
                }
                for r in rows
            ],
            title="Hot-path layers — deterministic op-count speedups "
            "(wall_x informational)",
        ),
    )
    emit_json(
        "hotpath",
        {
            "txpool": txpool,
            "commit": commit,
            "artifacts": artifacts,
        },
        config={
            "pool_senders": POOL_SENDERS,
            "pool_nonces": POOL_NONCES,
            "commit_accounts": COMMIT_ACCOUNTS,
            "commit_slots": COMMIT_SLOTS,
            "commit_rounds": COMMIT_ROUNDS,
            "lane_sweep": list(LANE_SWEEP),
            "seed": 4242,
        },
    )
