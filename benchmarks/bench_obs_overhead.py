"""Observability overhead and export-contract benchmarks.

Three claims behind the ``repro.obs`` layer:

* **Off by default, free by default** — the production path runs with
  :data:`~repro.obs.tracer.NULL_TRACER` and no metrics registry, so the
  instrumentation reduces to boolean guards.  The guard microbenchmark
  bounds their cost below 3% of a block's validation wall time, and the
  traced run's *simulated* timing is bit-identical to the untraced run
  (tracing re-walks timing separately; it never perturbs the model).
* **Deterministic export** — same seed, same trace: the Chrome-trace JSON
  of two identical traced runs is byte-identical and carries the
  ``ph``/``ts``/``pid``/``tid``/``name`` keys Perfetto needs.
* **Baselines round-trip** — numbers written with ``write_baseline`` load
  back and self-compare with zero regressions.
"""

import statistics
import time

from benchmarks.conftest import CHAIN_LENGTH, emit, emit_json
from repro.analysis.report import format_table
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.obs import (
    MetricsRegistry,
    NULL_EMITTER,
    NULL_TRACER,
    Tracer,
    chrome_trace_json,
    compare,
    load_baseline,
    write_baseline,
)

REPEATS = 5
GUARD_ITERATIONS = 200_000
#: generous upper bound on NullTracer/metrics guard evaluations per tx
#: (occ-wsi loop + validator phases + scheduler are each a handful)
GUARDS_PER_TX = 32


def _median_wall(validator, entries):
    """Median wall-clock seconds to validate the chain prefix."""
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for entry in entries:
            result = validator.validate_block(entry.block, entry.parent_state)
            assert result.accepted, result.reason
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_null_tracer_overhead(bench_chain, capsys):
    """Default NullTracer instrumentation must cost <3% wall time."""
    entries = bench_chain[:4]
    untraced = ParallelValidator(config=ValidatorConfig(lanes=16))

    # Measure the primitive the production path actually pays: one
    # ``tracer.enabled`` / ``metrics is not None`` guard evaluation, plus
    # the ``emitter.enabled`` guard the live-telemetry seams add.
    tracer = NULL_TRACER
    metrics = None
    emitter = NULL_EMITTER
    start = time.perf_counter()
    for _ in range(GUARD_ITERATIONS):
        if tracer.enabled:
            raise AssertionError("NullTracer must be disabled")
        if metrics is not None:
            raise AssertionError
        if emitter.enabled:
            raise AssertionError("NullEmitter must be disabled")
    guard_wall = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(GUARD_ITERATIONS):
        pass
    empty_wall = time.perf_counter() - start
    guard_cost = max(guard_wall - empty_wall, 0.0) / GUARD_ITERATIONS

    _median_wall(untraced, entries)  # warm up the interpreter path
    base = _median_wall(untraced, entries)
    txs = sum(len(e.block) for e in entries)
    guard_share = (guard_cost * GUARDS_PER_TX * txs) / base

    traced = ParallelValidator(
        config=ValidatorConfig(lanes=16),
        tracer=Tracer(),
        metrics=MetricsRegistry(),
    )
    with_trace = _median_wall(traced, entries)
    trace_cost = with_trace / base - 1.0

    emit(
        capsys,
        "obs_overhead",
        format_table(
            [
                {
                    "config": "NullTracer (default)",
                    "median_s": round(base, 4),
                    "overhead": f"{guard_share:+.2%} (guard bound)",
                },
                {
                    "config": "Tracer + metrics",
                    "median_s": round(with_trace, 4),
                    "overhead": f"{trace_cost:+.1%}",
                },
            ],
            title="Observability overhead (4 blocks, 16 lanes)",
        ),
    )
    assert guard_share < 0.03, (
        f"NullTracer guards cost {guard_share:.2%} of validation wall time"
    )


def test_tracing_never_perturbs_simulated_timing(bench_chain):
    """Traced and untraced runs agree on every simulated phase boundary."""
    entries = bench_chain[:4]
    untraced = ParallelValidator(config=ValidatorConfig(lanes=16))
    traced = ParallelValidator(
        config=ValidatorConfig(lanes=16),
        tracer=Tracer(),
        metrics=MetricsRegistry(),
    )
    for entry in entries:
        a = untraced.validate_block(entry.block, entry.parent_state)
        b = traced.validate_block(entry.block, entry.parent_state)
        assert a.phases.prep_end == b.phases.prep_end
        assert a.phases.exec_end == b.phases.exec_end
        assert a.phases.validate_end == b.phases.validate_end
        assert a.phases.commit_end == b.phases.commit_end
        assert a.post_state.state_root() == b.post_state.state_root()


def test_traced_run_exports_replayable_chrome_json(bench_chain):
    """Same inputs, same trace — the export is byte-identical on replay."""
    entries = bench_chain[:4]

    def run():
        tracer = Tracer()
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=16),
            tracer=tracer,
            metrics=MetricsRegistry(),
        )
        for entry in entries:
            validator.validate_block(entry.block, entry.parent_state)
        return chrome_trace_json(tracer)

    first, second = run(), run()
    assert first == second, "same-seed traced runs must export identical JSON"

    import json

    events = json.loads(first)["traceEvents"]
    assert events, "traced run produced no events"
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event, f"trace event missing {key}: {event}"
    assert any(e["ph"] == "X" for e in events)


def test_events_on_lane_and_baseline(tmp_path, capsys):
    """Events-on serve lane: wall-cost table + sim-deterministic baseline.

    The committed ``BENCH_obs_live.json`` golden pins the *simulated*
    shape of a fixed-seed serve run with telemetry on — event counts,
    sequence numbers, narrated aborts, file bytes — so ``make
    bench-compare`` catches any drift in the event schema or the abort
    schedule.  Wall-clock medians ride along under informational key
    names (never gated; machines differ).
    """
    from repro.obs.events import read_events
    from repro.store.service import NodeService, ServeConfig

    def serve(events: bool, tag: str):
        data_dir = tmp_path / tag
        config = ServeConfig(
            data_dir=str(data_dir),
            txs_per_block=12,
            max_height=CHAIN_LENGTH,
            snapshot_interval=4,
            fsync=False,
            events=events,
        )
        start = time.perf_counter()
        report = NodeService(config).run(handle_signals=False)
        return time.perf_counter() - start, data_dir, report

    off_walls, on_walls = [], []
    event_files = []
    for repeat in range(REPEATS):
        wall, _, off_report = serve(False, f"off{repeat}")
        off_walls.append(wall)
        assert off_report.events_written == 0
        wall, data_dir, on_report = serve(True, f"on{repeat}")
        on_walls.append(wall)
        event_files.append(data_dir / "events.jsonl")
    off_median = statistics.median(off_walls)
    on_median = statistics.median(on_walls)

    # same seed, same bytes: the event stream is part of the repro surface
    reference = event_files[0].read_bytes()
    for path in event_files[1:]:
        assert path.read_bytes() == reference, "event streams diverged"

    events = read_events(str(event_files[0]))
    kinds = [event["kind"] for event in events]
    sealed = [event for event in events if event["kind"] == "block_sealed"]
    assert len(sealed) == CHAIN_LENGTH
    assert on_report.events_written == len(events)
    assert [event["seq"] for event in events] == list(range(len(events)))

    emit(
        capsys,
        "obs_live",
        format_table(
            [
                {
                    "config": "serve, events off",
                    "median_s": round(off_median, 4),
                    "events": 0,
                },
                {
                    "config": "serve, events on",
                    "median_s": round(on_median, 4),
                    "events": len(events),
                },
            ],
            title=f"Live telemetry lane ({CHAIN_LENGTH} blocks, sim backend)",
        ),
    )
    emit_json(
        "obs_live",
        {
            # deterministic under a fixed seed — gated by bench-compare
            "events_total": len(events),
            "sealed_events": len(sealed),
            "append_events": kinds.count("store_append"),
            "narrated_aborts": sum(e["aborts"] for e in sealed),
            "final_seq": events[-1]["seq"],
            "event_bytes": len(reference),
            # wall clock — informational only, machines differ
            "events_off_median_s": round(off_median, 4),
            "events_on_median_s": round(on_median, 4),
        },
        config={
            "blocks": CHAIN_LENGTH,
            "txs_per_block": 12,
            "seed": 42,
            "backend": "sim",
        },
    )


def test_baseline_roundtrip_zero_regressions(bench_chain, tmp_path):
    """BENCH_*.json written from a real run self-compares clean."""
    entries = bench_chain[:4]
    metrics = MetricsRegistry()
    validator = ParallelValidator(
        config=ValidatorConfig(lanes=16), metrics=metrics
    )
    speedups = [
        validator.validate_block(e.block, e.parent_state).speedup
        for e in entries
    ]
    path = write_baseline(
        "obs_roundtrip",
        {
            "mean_speedup": statistics.mean(speedups),
            "blocks": len(entries),
        },
        metrics=metrics.snapshot(),
        config={"lanes": 16},
        directory=str(tmp_path),
    )
    document = load_baseline(path)
    assert document["name"] == "obs_roundtrip"
    result = compare(path, path)
    assert result.ok and not result.regressions
    assert result.improvements == []

    # and the shared conftest helper lands one next to the text reports
    emit_json(
        "obs_overhead",
        {"mean_speedup": statistics.mean(speedups)},
        config={"lanes": 16, "blocks": len(entries)},
    )
