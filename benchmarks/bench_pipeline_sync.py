"""Chain sync — pipelining *different heights* (Figure 5's other half).

Fig. 9 measures same-height siblings; Figure 5 also shows consecutive
heights overlapping: block N+1's execution may begin once block N's
execution has produced its post-state, while the validation phases stay
strictly ordered.  The natural workload for that shape is a validator
catching up on a chain segment (sync): all blocks are available at once,
and the pipeline overlaps execution across heights.

Measured result: cross-height pipelining holds the per-block speedup
steady (each child's execution can only overlap its parent's validation
tail, not its execution), so syncing N blocks takes ~N single-block
windows.  The contrast with Fig. 9's same-height overlap (7x) is the
point: BlockPilot's pipeline wins come from *forks*, not depth — which is
why §3.4 motivates the design with the Byzantium network's sibling
blocks.
"""


from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.pipeline import PipelineConfig, ValidatorPipeline


def test_pipeline_chain_sync(bench_chain, benchmark, capsys):
    pipe = ValidatorPipeline(config=PipelineConfig(worker_lanes=16))

    rows = []
    speedups = {}
    for depth in (1, 2, 4, 8, 12):
        segment = bench_chain[:depth]
        blocks = [e.block for e in segment]
        parent_states = {
            segment[0].parent_header.hash: segment[0].parent_state
        }
        res = pipe.process_blocks(blocks, parent_states)
        assert res.all_accepted, [r.reason for r in res.results]
        speedups[depth] = res.speedup
        rows.append(
            {
                "chain_depth": depth,
                "speedup": round(res.speedup, 2),
                "makespan_us": round(res.makespan, 1),
                "pool_util": f"{res.stats.utilization:.0%}",
            }
        )

    emit(
        capsys,
        "pipeline_sync",
        format_table(
            rows,
            title=(
                "Chain sync — pipelining consecutive heights (Figure 5): "
                "execution overlaps, validation serialises"
            ),
        ),
    )

    # the per-height execution dependency binds: throughput stays at the
    # single-block level regardless of depth (no multiplication, and no
    # collapse either — the validation-tail overlap offsets switch costs)
    for depth, value in speedups.items():
        assert 0.7 * speedups[1] <= value <= 1.3 * speedups[1], (depth, value)
    # and far below the same-height overlap of Fig. 9 at similar counts
    assert speedups[4] < 5.0

    segment = bench_chain[:4]
    blocks = [e.block for e in segment]
    parent_states = {segment[0].parent_header.hash: segment[0].parent_state}
    benchmark.pedantic(
        lambda: pipe.process_blocks(blocks, parent_states),
        rounds=3,
        iterations=1,
    )
