"""Scenario diversity sweep — per-scenario speedup / abort-rate table.

Every scenario registered in :mod:`repro.workload.scenarios` runs through
the full propose → oracle → validate chain on the simulated clock: the
OCC-WSI proposer (strict serializability checks on), the commit-order
oracle's conflict-edge census, and the parallel validator whose speedup
is the paper's headline metric.  Scenarios with per-height dynamics
(bursts, the diurnal cycle) are swept across enough consecutive heights
to cover both phases of their envelope.

The committed ``BENCH_scenarios.json`` golden is regenerated bit-for-bit
by ``make bench-scenarios`` and gated in CI (``scenarios`` job) via
``repro.obs.baseline``.  The acceptance bar inside the bench itself: the
partitioned-counter ERC-20 variant must beat the shared-counter variant
on validator speedup *and* carry strictly fewer conflict edges — the
semantic conflict-reduction result of Garamvölgyi et al. on identical
traffic.

Runs two ways:

* ``pytest benchmarks/bench_scenarios.py`` — quick sweep, table + JSON
  baseline, asserts the conflict-taming bar;
* ``python benchmarks/bench_scenarios.py [--quick]`` — standalone CLI for
  CI and ``make bench-scenarios`` (no pytest session needed).
"""

from __future__ import annotations

from statistics import mean
from typing import List, Optional, Tuple

import pytest

from repro.analysis.report import format_table
from repro.chain.blockchain import Blockchain
from repro.check.oracle import verify_commit_order
from repro.core.baselines import SerialExecutor
from repro.core.occ_wsi import ProposerConfig
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode
from repro.workload.scenarios import get_scenario, scenario_names

#: the committed golden (and the CI gate) are generated with QUICK — the
#: sim clock makes the numbers exact, so any drift is a real change.
#: blocks_per_point=4 covers both phases of the period-8 burst envelopes
#: (heights 0-2 storm, height 3 calm).
QUICK = {"txs_per_block": 48, "blocks_per_point": 4}
FULL = {"txs_per_block": 96, "blocks_per_point": 8}

LANES = 16
SEED = 42


def run_sweep(
    *,
    txs_per_block: int,
    blocks_per_point: int,
    lanes: int = LANES,
    seed: int = SEED,
) -> Tuple[List[dict], dict]:
    """The sweep proper: rows for the table, nested headline for the JSON."""
    rows: List[dict] = []
    headline: dict = {}
    for name in scenario_names():
        stream = get_scenario(name, seed=seed, txs_per_block=txs_per_block)
        chain = Blockchain(stream.universe.genesis)
        proposer = ProposerNode(
            "bench",
            config=ProposerConfig(lanes=lanes, strict_checks=True),
        )
        validator = ParallelValidator(config=ValidatorConfig(lanes=lanes))
        serial = SerialExecutor()
        parent_header = chain.genesis.header
        parent_state = stream.universe.genesis
        committed = aborts = edges = 0
        makespan = serial_time = 0.0
        val_speedups: List[float] = []
        for _ in range(blocks_per_point):
            txs = stream.generate_block_txs()
            sealed = proposer.build_block(parent_header, parent_state, txs)
            proposal = sealed.proposal
            committed += len(proposal.committed)
            aborts += proposal.stats.aborts
            makespan += proposal.stats.makespan
            order = verify_commit_order(proposal)
            if not order.ok:
                raise AssertionError(
                    f"scenario {name!r} produced a non-serializable schedule:\n"
                    + order.summary()
                )
            edges += sum(order.edge_counts().values())
            serial_time += serial.execute_block(sealed.block, parent_state).total_time
            verdict = validator.validate_block(sealed.block, parent_state)
            if not verdict.accepted:
                raise AssertionError(f"scenario {name!r} block rejected")
            val_speedups.append(verdict.speedup)
            parent_header = sealed.block.header
            parent_state = verdict.post_state
        throughput = committed * 1e6 / makespan if makespan else 0.0
        abort_rate = aborts / max(1, committed + aborts)
        # proposer speedup is key-granular (OCC-WSI footprints), so it is
        # the metric that sees semantic conflict reduction; the validator
        # partitions at account granularity and reacts to component shape
        proposer_speedup = serial_time / makespan if makespan else 0.0
        headline[name] = {
            "proposer_speedup": round(proposer_speedup, 3),
            "validator_speedup": round(mean(val_speedups), 3),
            "abort_rate": round(abort_rate, 4),
            "conflict_edges": edges,
            "throughput_tps": round(throughput, 1),
        }
        rows.append(
            {
                "scenario": name,
                "committed": committed,
                "aborts": aborts,
                "conflict_edges": edges,
                "proposer_speedup": round(proposer_speedup, 2),
                "validator_speedup": round(mean(val_speedups), 2),
                "throughput_tps": round(throughput, 1),
            }
        )

    # the conflict-taming headline: same traffic, different counter layout
    shared = headline["counter-shared"]
    partitioned = headline["counter-partitioned"]
    headline["partitioned_vs_shared_speedup"] = round(
        partitioned["proposer_speedup"] / shared["proposer_speedup"], 3
    )
    headline["partitioned_vs_shared_edge_ratio"] = round(
        partitioned["conflict_edges"] / max(1, shared["conflict_edges"]), 3
    )
    return rows, headline


def conflict_taming_holds(headline: dict) -> bool:
    """Partitioned counters must lift parallelism AND shed edges."""
    return (
        headline["partitioned_vs_shared_speedup"] > 1.0
        and headline["counter-partitioned"]["conflict_edges"]
        < headline["counter-shared"]["conflict_edges"]
    )


def _render(rows: List[dict]) -> str:
    return format_table(
        rows,
        title="Scenario diversity sweep — per-scenario conflict shape "
        "(occ-wsi, sim clock)",
    )


def _emit_baseline(headline: dict, params: dict, directory: Optional[str] = None) -> str:
    from repro.obs.baseline import write_baseline

    return write_baseline(
        "scenarios",
        headline,
        config={"lanes": LANES, "seed": SEED, **params},
        directory=directory,
    )


@pytest.mark.scenarios
def test_scenario_sweep(benchmark, capsys):
    """Every registered scenario through propose/oracle/validate; the
    partitioned-counter variant must beat the shared-counter one."""
    from benchmarks.conftest import emit, emit_json

    rows, headline = run_sweep(**QUICK)
    emit(capsys, "scenario_sweep", _render(rows))
    emit_json("scenarios", headline, config={"lanes": LANES, "seed": SEED, **QUICK})

    assert conflict_taming_holds(headline), headline

    # every scenario commits work and parallelises at least a little
    for name in scenario_names():
        assert headline[name]["throughput_tps"] > 0, name
        assert headline[name]["validator_speedup"] >= 1.0, name

    benchmark.pedantic(
        lambda: run_sweep(txs_per_block=16, blocks_per_point=1),
        rounds=3,
        iterations=1,
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_scenarios.py",
        description="per-scenario conflict-shape sweep (table + JSON baseline)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="golden-sized sweep (what CI gates and make bench-scenarios emits)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="where to write BENCH_scenarios.json "
        "(default: $REPRO_RESULTS_DIR or benchmarks/results)",
    )
    args = parser.parse_args(argv)

    params = QUICK if args.quick else FULL
    rows, headline = run_sweep(**params)
    print(_render(rows), end="")
    path = _emit_baseline(headline, params, directory=args.results_dir)
    print(
        "conflict taming (partitioned / shared): "
        f"{headline['partitioned_vs_shared_speedup']}x speedup, "
        f"{headline['partitioned_vs_shared_edge_ratio']}x edges"
    )
    print(f"wrote {path}")
    return 0 if conflict_taming_holds(headline) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
