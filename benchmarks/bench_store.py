"""Durable store benchmarks (ISSUE 6): snapshot latency + recovery time.

Headline numbers, emitted as ``BENCH_store.json``:

* ``append_us_per_block`` — mean DiskStore commit-path latency per block
  (log append + manifest advance, no snapshot);
* ``snapshot_us`` — mean full-state snapshot write latency;
* ``recovery_us_replay`` — recovering a dir whose whole chain lives in
  the log tail (every block re-executed and root-verified);
* ``recovery_us_snapshot`` — recovering a dir where a snapshot covers
  the chain (replay length ~0);
* ``replay_blocks`` — how many blocks the replay path re-executed.

All wall-clock (direction 0 metadata keeps these out of the regression
gate — disk latency is host noise); what the committed tests gate is the
*correctness* of recovery, not its speed.  MemoryStore perf-neutrality is
gated separately: the deterministic op-count goldens in
``BENCH_hotpath.json`` & friends run on chains without any store wired.
"""

import shutil
import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.report import format_table
from repro.chain.blockchain import Blockchain
from repro.obs.metrics import MetricsRegistry
from repro.store import DiskStore, encode_header, recover

pytestmark = pytest.mark.store


def _populate(data_dir, genesis_state, pairs, *, snapshot_interval, metrics=None):
    store = DiskStore(
        str(data_dir),
        fsync=False,
        snapshot_interval=snapshot_interval,
        metrics=metrics,
    )
    chain = Blockchain(genesis_state, store=store)
    store.initialize(encode_header(chain.genesis.header), genesis_state)
    for block, post_state in pairs:
        chain.add_block(block, post_state)
    store.seal()
    store.close()


def test_store_durability_latency(bench_universe, bench_chain, tmp_path, capsys):
    pairs = [(entry.block, None) for entry in bench_chain]
    # re-derive post-states serially once (bench_chain keeps parent states)
    from repro.core.baselines import SerialExecutor

    serial = SerialExecutor()
    resolved = []
    for entry in bench_chain:
        sres = serial.execute_block(entry.block, entry.parent_state)
        resolved.append((entry.block, sres.post_state))

    # --- append path (no snapshots beyond genesis) --------------------- #
    metrics = MetricsRegistry()
    log_dir = tmp_path / "log-only"
    started = time.perf_counter()
    _populate(
        log_dir, bench_universe.genesis, resolved, snapshot_interval=0,
        metrics=metrics,
    )
    append_total_us = (time.perf_counter() - started) * 1e6
    append_us = append_total_us / len(resolved)

    # --- snapshot path (snapshot every 4 blocks) ----------------------- #
    snap_metrics = MetricsRegistry()
    snap_dir = tmp_path / "snapshots"
    _populate(
        snap_dir, bench_universe.genesis, resolved, snapshot_interval=4,
        metrics=snap_metrics,
    )
    snap = snap_metrics.snapshot()
    snapshots_written = snap["counters"].get("store.snapshots", 0)
    snapshot_us = (
        snap["histograms"]["store.snapshot_us"]["mean"] if snapshots_written else 0.0
    )

    # --- recovery: full replay vs snapshot boot ------------------------ #
    replay_metrics = MetricsRegistry()
    started = time.perf_counter()
    result_replay = recover(
        str(log_dir), bench_universe.genesis, fsync=False, metrics=replay_metrics
    )
    recovery_replay_us = (time.perf_counter() - started) * 1e6
    result_replay.log.close()

    started = time.perf_counter()
    result_snap = recover(str(snap_dir), bench_universe.genesis, fsync=False)
    recovery_snapshot_us = (time.perf_counter() - started) * 1e6
    result_snap.log.close()

    assert result_replay.chain.head.hash == result_snap.chain.head.hash
    assert result_replay.replayed == len(resolved)

    rows = [
        {
            "path": "append (log only)",
            "per_block_us": round(append_us, 1),
            "notes": f"{len(resolved)} blocks",
        },
        {
            "path": "snapshot write",
            "per_block_us": round(snapshot_us, 1),
            "notes": f"{snapshots_written} snapshots",
        },
        {
            "path": "recovery (full replay)",
            "per_block_us": round(recovery_replay_us / len(resolved), 1),
            "notes": f"replayed {result_replay.replayed}",
        },
        {
            "path": "recovery (snapshot boot)",
            "per_block_us": round(
                recovery_snapshot_us / max(1, result_snap.replayed + 1), 1
            ),
            "notes": f"replayed {result_snap.replayed}",
        },
    ]
    emit(
        capsys,
        "store_durability",
        format_table(rows, title="durable store: commit + recovery latency"),
    )
    emit_json(
        "store",
        {
            "append_us_per_block": round(append_us, 1),
            "snapshot_us": round(snapshot_us, 1),
            "recovery_us_replay": round(recovery_replay_us, 1),
            "recovery_us_snapshot": round(recovery_snapshot_us, 1),
            "replay_blocks": result_replay.replayed,
        },
        metrics={
            # wall-clock numbers: informational, never gated (direction 0)
            "append_us_per_block": {"direction": 0},
            "snapshot_us": {"direction": 0},
            "recovery_us_replay": {"direction": 0},
            "recovery_us_snapshot": {"direction": 0},
            "replay_blocks": {"direction": 0},
        },
        config={"blocks": len(resolved), "snapshot_interval": 4, "fsync": False},
    )
    shutil.rmtree(log_dir, ignore_errors=True)
    shutil.rmtree(snap_dir, ignore_errors=True)
