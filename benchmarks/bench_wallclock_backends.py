"""Wall-clock backend sweep — real cores instead of the simulated clock.

Every other benchmark in this directory measures *simulated* microseconds;
this one validates the same pre-built chain on the three real-parallelism
backends (serial | thread | process) across a worker sweep and reports
measured wall time.  The shape to look for mirrors Fig. 7(a): the process
backend buys real speedup on multi-core hosts (the pure-Python EVM holds
the GIL, so the thread backend is a correctness testbed more than a
performance play), while every backend produces bit-identical results.

Marked ``slow``: process pools + pickled state slices cost real seconds.
"""

import os
import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.report import format_table
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend

pytestmark = pytest.mark.slow

WORKER_SWEEP = (1, 2, 4)
BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def _validate_chain_wall_ms(bench_chain, backend) -> tuple:
    """Wall milliseconds to validate the whole chain, plus the state roots."""
    validator = ParallelValidator(config=ValidatorConfig(lanes=16), backend=backend)
    roots = []
    start = time.perf_counter()
    for entry in bench_chain:
        res = validator.validate_block(entry.block, entry.parent_state)
        assert res.accepted, res.reason
        roots.append(res.post_state.state_root())
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return elapsed_ms, roots


def test_wallclock_backend_sweep(bench_chain, capsys):
    rows = []
    wall = {}
    reference_roots = None
    for name, cls in BACKENDS.items():
        for workers in WORKER_SWEEP:
            if name == "serial" and workers != 1:
                continue  # serial has exactly one worker by construction
            with cls(workers=workers) as backend:
                elapsed_ms, roots = _validate_chain_wall_ms(bench_chain, backend)
            if reference_roots is None:
                reference_roots = roots
            # equivalence is part of the benchmark contract: a fast wrong
            # backend is not a data point
            assert roots == reference_roots, (name, workers)
            wall[(name, workers)] = elapsed_ms
            rows.append(
                {
                    "backend": name,
                    "workers": workers,
                    "wall_ms": round(elapsed_ms, 1),
                    "speedup_vs_serial_x": round(wall[("serial", 1)] / elapsed_ms, 2),
                }
            )

    emit(
        capsys,
        "wallclock_backends",
        format_table(
            rows,
            title="Wall-clock validator sweep — serial | thread | process backends",
        ),
    )
    emit_json(
        "wallclock_backends",
        {
            "by_backend": {
                f"{name}@{workers}": {
                    "wall_ms": round(ms, 1),
                    "speedup_vs_serial_x": round(wall[("serial", 1)] / ms, 2),
                }
                for (name, workers), ms in wall.items()
            },
        },
        config={
            "blocks": len(bench_chain),
            "worker_sweep": list(WORKER_SWEEP),
            "cpu_count": os.cpu_count(),
        },
    )

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        # the acceptance bar: real parallelism must beat the serial backend
        # on the low-conflict workload once it has cores to spend
        assert wall[("serial", 1)] / wall[("process", 4)] > 1.0, (
            f"process@4 ({wall[('process', 4)]:.0f}ms) failed to beat "
            f"serial ({wall[('serial', 1)]:.0f}ms) on {cpus} CPUs"
        )
    else:
        with capsys.disabled():
            print(f"\n[wallclock_backends] {cpus} CPU(s): speedup gate skipped")
