"""Shared benchmark fixtures: the calibrated world and a pre-built chain.

Everything heavy (universe genesis, a chain of sealed blocks) is built
once per session; individual benchmarks reuse it and print the table or
series of the paper figure they regenerate.  Rendered outputs are also
written to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.core.baselines import SerialExecutor
from repro.core.occ_wsi import ProposerConfig
from repro.network.node import ProposerNode
from repro.state.statedb import StateSnapshot
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import mainnet_scenario
from repro.workload.universe import build_universe

#: blocks in the benchmark chain (the paper uses 100k mainnet blocks; the
#: shapes stabilise after a dozen generated blocks — see EXPERIMENTS.md).
#: Override with REPRO_BENCH_BLOCKS for deeper runs, e.g.
#:   REPRO_BENCH_BLOCKS=100 pytest benchmarks/ --benchmark-only
import os

CHAIN_LENGTH = int(os.environ.get("REPRO_BENCH_BLOCKS", "12"))

THREAD_SWEEP = (2, 4, 8, 16)


@dataclass
class BenchBlock:
    """One pre-proposed block with everything benchmarks need."""

    block: Block
    parent_state: StateSnapshot
    parent_header: object
    txs: list
    serial_time: float


@pytest.fixture(scope="session")
def bench_universe():
    return build_universe()


@pytest.fixture(scope="session")
def bench_chain(bench_universe) -> List[BenchBlock]:
    """A CHAIN_LENGTH-block chain sealed by a 16-lane OCC-WSI proposer.

    Each entry carries its parent state so benchmarks can re-execute any
    block in isolation under any executor or thread count.
    """
    generator = BlockWorkloadGenerator(bench_universe, mainnet_scenario())
    proposer = ProposerNode("bench", config=ProposerConfig(lanes=16))
    serial = SerialExecutor()
    chain = Blockchain(bench_universe.genesis)

    entries: List[BenchBlock] = []
    parent_header = chain.genesis.header
    parent_state = bench_universe.genesis
    for _ in range(CHAIN_LENGTH):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(parent_header, parent_state, txs)
        sres = serial.execute_block(sealed.block, parent_state)
        assert sres.post_state.state_root() == sealed.block.header.state_root
        entries.append(
            BenchBlock(
                block=sealed.block,
                parent_state=parent_state,
                parent_header=parent_header,
                txs=txs,
                serial_time=sres.total_time,
            )
        )
        parent_header = sealed.block.header
        parent_state = sres.post_state
    return entries


def emit(capsys, name: str, content: str) -> None:
    """Print a rendered report to the terminal and persist it."""
    from repro.analysis.report import write_report

    write_report(name, content)
    with capsys.disabled():
        print()
        print(content, end="")


def emit_json(name: str, headline: dict, *, metrics=None, config=None) -> str:
    """Persist machine-readable benchmark numbers as ``BENCH_<name>.json``.

    Lands next to the text reports (``benchmarks/results`` or
    ``$REPRO_RESULTS_DIR``); ``repro.obs.baseline.compare`` diffs two such
    files and flags regressions, which is what ``make bench-json`` + the CI
    artifact upload are for.  Returns the path written.
    """
    from repro.obs.baseline import write_baseline

    return write_baseline(name, headline, metrics=metrics, config=config)
