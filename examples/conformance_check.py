#!/usr/bin/env python3
"""Conformance suite tour: prove a block serializable, catch a lie.

Four stops through ``repro.check``:

1. the serializability oracle proves a freshly proposed block's committed
   order conflict-equivalent to its serial order — then rejects the same
   block with two conflicting transactions swapped, printing the cycle
   witness;
2. the differential oracle re-executes the block serially and diffs
   roots, receipts and gas against the sealed header;
3. the footprint race detector records a lying block profile as typed
   findings while the validator still reaches the correct verdict;
4. the schedule fuzzer sweeps permuted thread-backend interleavings
   through all of the above.

Run:  python examples/conformance_check.py
"""

import dataclasses

from repro import BlockWorkloadGenerator, ProposerNode, build_universe
from repro.chain.block import BlockProfile
from repro.chain.blockchain import Blockchain
from repro.check.differential import diff_block
from repro.check.fuzzer import (
    ConformanceScenario,
    forge_lying_profile_block,
    fuzz_conformance,
)
from repro.check.oracle import verify_schedule
from repro.check.report import CheckLog
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.exec import ThreadBackend
from repro.workload.generator import WorkloadConfig


def main() -> None:
    print("=== 1. serializability oracle ===")
    universe = build_universe()
    generator = BlockWorkloadGenerator(
        universe, WorkloadConfig(txs_per_block=40, seed=5)
    )
    parent = Blockchain(universe.genesis).head.header
    sealed = ProposerNode("alice").build_block(
        parent, universe.genesis, generator.generate_block_txs()
    )
    report = verify_schedule(sealed.block)
    print(f"honest block: {report.summary()}")
    assert report.ok

    # swap the first wr/ww-dependent pair: the order is no longer
    # conflict-equivalent to the serial one, and the oracle says why
    src, dst = next(
        (e.src, e.dst) for e in report.edges if e.kind in ("wr", "ww")
    )
    order = list(range(len(sealed.block.transactions)))
    order[src - 1], order[dst - 1] = order[dst - 1], order[src - 1]
    reordered = dataclasses.replace(
        sealed.block,
        transactions=tuple(sealed.block.transactions[i] for i in order),
        profile=BlockProfile(
            entries=tuple(sealed.block.profile.entries[i] for i in order)
        ),
    )
    bad = verify_schedule(reordered)
    print(f"swapped tx {src} and tx {dst}: {bad.summary()}")
    assert not bad.ok and bad.cycle is not None
    for edge in bad.cycle:
        print(f"  cycle witness: tx{edge.src} -{edge.kind}-> tx{edge.dst}")

    print("\n=== 2. differential oracle ===")
    diff = diff_block(sealed.block, universe.genesis)
    print(f"serial replay: {diff.summary()}")
    assert diff.ok

    tampered = dataclasses.replace(
        sealed.block,
        header=dataclasses.replace(
            sealed.block.header, gas_used=sealed.block.header.gas_used + 1
        ),
    )
    diff = diff_block(tampered, universe.genesis)
    print(f"tampered header: {diff.summary()}")
    for finding in diff.findings:
        print(f"  {finding.kind}: {finding.detail}")

    print("\n=== 3. footprint race detector ===")
    lying = forge_lying_profile_block(universe)
    log = CheckLog()
    # the guard lives in the real-core drivers, so pick a real backend
    with ThreadBackend(2) as backend:
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=4, verify_profile=False),
            backend=backend,
            check_log=log,
        )
        result = validator.validate_block(lying, universe.genesis)
    print(f"lying profile: accepted={result.accepted} (verdict still correct)")
    print(f"detector: {log.summary()}")
    for violation in log.footprint_violations[:3]:
        print(f"  {violation.describe()}")
    assert not log.clean

    print("\n=== 4. schedule fuzzer ===")
    scenario = ConformanceScenario.hotspot(n_txs=14, seed=7)
    sweep = fuzz_conformance(scenario, 25, seed=1)
    print(sweep.summary())
    assert sweep.ok

    print("\nall conformance checks behaved as designed")


if __name__ == "__main__":
    main()
