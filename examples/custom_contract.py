#!/usr/bin/env python3
"""Authoring a custom contract and running it under every execution mode.

Shows the lower-level APIs: write a voting contract in the assembler DSL,
deploy it with a CREATE transaction, drive it with hand-built calldata,
and then demonstrate that the same bytecode produces identical results
under serial execution and under OCC snapshot views — the property the
whole framework leans on.

Run:  python examples/custom_contract.py
"""

from repro import StateDB, genesis_snapshot
from repro.common.types import Address
from repro.evm.asm import Assembler
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.access import RecordingState
from repro.state.account import AccountData
from repro.state.versioned import MultiVersionStore, OCCStateView
from repro.txpool.transaction import Transaction

ETHER = 10**18
CTX = ExecutionContext(block_number=1, timestamp=1700000000)


def voting_contract() -> bytes:
    """vote(option): tallies[option] += 1 in storage slots 0..255.

    calldata: 4-byte selector 0x00000001, then a 32-byte option word.
    """
    a = Assembler()
    a.push(0).op("CALLDATALOAD").push(224).op("SHR")  # [selector]
    a.op("DUP1").push(1).op("EQ").jumpi_to("vote")
    a.push(0).push(0).op("REVERT")

    a.label("vote")
    a.op("POP")
    a.push(4).op("CALLDATALOAD")  # [option]
    a.op("DUP1").push(255).op("LT").jumpi_to("bad")  # 255 < option ?
    a.op("DUP1").op("SLOAD")  # [tally, option]
    a.push(1).op("ADD")  # [tally+1, option]
    a.op("SWAP1").op("SSTORE")  # tallies[option] += 1
    a.op("STOP")

    a.label("bad")
    a.push(0).push(0).op("REVERT")
    return a.assemble()


def vote_calldata(option: int) -> bytes:
    return (1).to_bytes(4, "big") + option.to_bytes(32, "big")


def main() -> None:
    deployer = Address.from_int(0xD0)
    voters = [Address.from_int(0xE0 + i) for i in range(6)]
    alloc = {a: AccountData(balance=10 * ETHER) for a in [deployer, *voters]}
    genesis = genesis_snapshot(alloc)
    evm = EVM()

    # --- deploy via a CREATE transaction ---------------------------------- #
    runtime = voting_contract()
    # init code: the classic constructor pattern — copy the runtime blob
    # (appended after a 13-byte fixed header) into memory and RETURN it
    header_len = 13
    init = Assembler()
    init.push(len(runtime), width=2)  # [size]                       3 bytes
    init.op("DUP1")  # [size, size]                                  1 byte
    init.push(header_len, width=2)  # [src, size, size]              3 bytes
    init.push(0)  # [dst, src, size, size]                           2 bytes
    init.op("CODECOPY")  # memory[0:size] = runtime                  1 byte
    init.push(0)  # [offset, size]                                   2 bytes
    init.op("RETURN")  #                                             1 byte
    init.raw(runtime)
    initcode = init.assemble()
    assert initcode[:header_len].__len__() == header_len

    db = StateDB(genesis)
    deploy_tx = Transaction(deployer, None, 0, initcode, 3_000_000, 1, 0)
    result = evm.apply_transaction(db, deploy_tx, CTX)
    assert result.success, result.error
    contract = result.created
    deployed = db.get_code(contract)
    assert deployed == runtime
    print(f"deployed voting contract at {contract.hex()} ({len(deployed)} bytes)")

    # --- vote serially ---------------------------------------------------- #
    for i, voter in enumerate(voters):
        tx = Transaction(voter, contract, 0, vote_calldata(i % 3), 200_000, 1, 0)
        res = evm.apply_transaction(db, tx, CTX)
        assert res.success, res.error
    print("tallies after serial voting:", [db.get_storage(contract, s) for s in range(3)])

    # out-of-range option reverts
    bad = Transaction(voters[0], contract, 0, vote_calldata(999), 200_000, 1, 1)
    res = evm.apply_transaction(db, bad, CTX)
    print(f"vote(999): success={res.success} (guard reverted it)")

    # --- same bytecode under an OCC snapshot view -------------------------- #
    committed = db.commit()
    store = MultiVersionStore(committed)
    view = RecordingState(OCCStateView(store, snapshot_version=0))
    tx = Transaction(voters[1], contract, 0, vote_calldata(0), 200_000, 1, 1)
    res = evm.apply_transaction(view, tx, CTX)
    assert res.success
    reads = [k for k in view.rw.reads if k.kind == "storage"]
    writes = [k for k in view.rw.writes if k.kind == "storage"]
    print(
        f"\nOCC execution recorded {len(reads)} storage read(s) and "
        f"{len(writes)} storage write(s):"
    )
    for key in writes:
        print(f"  slot {key.slot} -> {view.rw.writes[key]}")
    print("(these are exactly the rw-sets a proposer would publish in the")
    print(" block profile and a validator would verify with Algorithm 2)")


if __name__ == "__main__":
    main()
