#!/usr/bin/env python3
"""Fault injection walkthrough: a lying proposer meets a hardened validator.

Story in four acts:

1. A byzantine proposer seals an honest block, then publishes a copy with
   a tampered write-set profile.
2. The validator re-executes, catches the lie, and rejects with a typed
   `ValidationFailure` naming exactly which check failed.
3. The liar keeps at it and gets quarantined; its transactions return to
   the pending pool (exactly once) so honest proposers can pack them.
4. A crashing worker lane shows graceful degradation: transient faults
   heal via parallel retry, permanent ones fall back to serial
   re-execution — same state root, more simulated time.

Run:  python examples/fault_injection.py
"""

from repro.core.pipeline import PipelineConfig
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.scenarios import build_env
from repro.network.node import ValidatorNode
from repro.txpool.pool import TxPool


def main() -> None:
    env = build_env(seed=0)
    honest = env.honest.block
    print(f"honest block: {len(honest)} txs, root {honest.header.state_root.hex()[:12]}…")

    # --- act 1+2: one corrupted profile entry, one typed rejection ------ #
    injector = env.injector
    bad = injector.corrupt_block(honest, "profile_write_value")
    validator = ParallelValidator(config=ValidatorConfig(lanes=8))
    result = validator.validate_block(bad, env.parent_state)
    print("\ncorrupted profile (one write value off by a little):")
    print(f"  accepted        = {result.accepted}")
    print(f"  failure         = {result.failure}")
    print(f"  reason enum     = {result.failure.reason!r}")

    # --- act 3: repeat liar quarantined, txs recovered ------------------ #
    pool = TxPool()
    node = ValidatorNode(
        "validator-0",
        env.universe.genesis,
        config=PipelineConfig(worker_lanes=8),
        quarantine_threshold=2,
        txpool=pool,
    )
    print("\nsame liar, three deliveries (quarantine threshold 2):")
    for attempt in range(3):
        outcome = node.receive_blocks([bad])
        failure = outcome.failures[0]
        print(
            f"  delivery {attempt + 1}: reason={failure.reason}"
            f"  restored_txs={outcome.restored_txs}"
            f"  quarantined={sorted(node.quarantined_proposers)}"
        )
    print(f"  pending pool now holds {len(pool)} recovered txs")

    # --- act 4: worker crashes degrade, never corrupt ------------------- #
    print("\nworker-lane crashes (same block, increasing persistence):")
    honest_result = validator.validate_block(honest, env.parent_state)
    for attempts, label in ((1, "transient (heals after 1 attempt)"),
                            (10**6, "permanent (never heals)")):
        faulty = ParallelValidator(
            config=ValidatorConfig(lanes=8, max_parallel_retries=2),
            injector=FaultInjector(
                FaultConfig(seed=0, worker_fault_rate=1.0, worker_fault_attempts=attempts)
            ),
        )
        res = faulty.validate_block(honest, env.parent_state)
        assert res.accepted
        assert res.post_state.state_root() == honest_result.post_state.state_root()
        print(
            f"  {label}:\n"
            f"    worker_faults={res.worker_faults}  attempts={res.exec_attempts}"
            f"  serial_fallback={res.used_serial_fallback}"
            f"  commit_end={res.phases.commit_end:.0f}us"
            f"  (honest {honest_result.phases.commit_end:.0f}us)"
        )
    print("\nsame state root every time — faults cost time, never correctness")


if __name__ == "__main__":
    main()
