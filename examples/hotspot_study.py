#!/usr/bin/env python3
"""Hotspot study: how contended contracts destroy block parallelism.

Reproduces the reasoning of §5.5 interactively: sweep the workload's
hotspot intensity, show the largest-dependency-subgraph ratio and the
16-thread validator speedup moving in opposite directions, then show the
era drift — blocks becoming *less* parallelizable as the chain's
application mix modernises (DeFi/NFT era), as Saraph et al. observed.

Run:  python examples/hotspot_study.py
"""

import dataclasses

from repro import build_universe
from repro.chain.blockchain import Blockchain
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import era_profile, hotspot_scenario


def measure(universe, config, blocks=3):
    """Mean (largest-subgraph ratio, speedup@16) over a few blocks."""
    uni = dataclasses.replace(universe, nonces={})
    generator = BlockWorkloadGenerator(uni, config)
    proposer = ProposerNode("study")
    validator = ParallelValidator(config=ValidatorConfig(lanes=16))
    chain = Blockchain(universe.genesis)

    ratios, speedups = [], []
    for _ in range(blocks):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(
            chain.genesis.header, universe.genesis, txs
        )
        res = validator.validate_block(sealed.block, universe.genesis)
        assert res.accepted, res.reason
        ratios.append(res.graph.largest_component_ratio())
        speedups.append(res.speedup)
        uni.nonces.clear()
    return sum(ratios) / len(ratios), sum(speedups) / len(speedups)


def main() -> None:
    universe = build_universe()

    print("hotspot intensity sweep (Fig. 8's mechanism):")
    print(f"{'intensity':>10} {'max subgraph':>13} {'speedup@16':>11}")
    for intensity in (0.0, 0.25, 0.5, 0.75, 1.0):
        ratio, speedup = measure(universe, hotspot_scenario(intensity, seed=7))
        bar = "#" * round(speedup * 5)
        print(f"{intensity:>10.2f} {ratio:>12.1%} {speedup:>10.2f}x  {bar}")

    print(
        "\nas the hottest contracts absorb more traffic, the largest"
        "\ndependency subgraph grows and the parallel speedup collapses —"
        "\nconflicting transactions can only execute serially (§5.5)."
    )

    print("\nera drift (parallelizability decays as the chain modernises):")
    print(f"{'height':>10} {'payments':>9} {'hotspot':>8} {'max subgraph':>13} {'speedup@16':>11}")
    for height in (0, 2_500_000, 5_000_000, 7_500_000, 10_000_000):
        cfg = era_profile(height, seed=7)
        ratio, speedup = measure(universe, cfg)
        print(
            f"{height:>10,} {cfg.w_payment:>8.0%} {cfg.hotspot_intensity:>8.2f} "
            f"{ratio:>12.1%} {speedup:>10.2f}x"
        )


if __name__ == "__main__":
    main()
