#!/usr/bin/env python3
"""Light client: verifying state against a block header with Merkle proofs.

A full validator re-executes every block (that is BlockPilot's job); a
light client holds only block *headers* and asks full nodes for proofs.
This example walks the whole flow: a chain grows through the validator,
a full node serves an account proof from its state, and the light client
checks it against nothing but the 32-byte state root in the header —
including catching a forged proof.

Run:  python examples/light_client.py
"""

from repro import BlockWorkloadGenerator, ProposerNode, ValidatorNode, build_universe
from repro.common.hashing import keccak
from repro.common.rlp import rlp_decode
from repro.state.proofs import ProofError, prove, verify_proof


def serve_account_proof(snapshot, address):
    """What a full node returns for eth_getProof(address)."""
    return prove(snapshot._account_trie._trie, keccak(bytes(address)))


def main() -> None:
    universe = build_universe()
    generator = BlockWorkloadGenerator(universe)
    proposer = ProposerNode("alice")
    validator = ValidatorNode("fullnode", universe.genesis)

    # grow a 3-block chain
    parent = validator.chain.genesis.header
    parent_state = universe.genesis
    for _ in range(3):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(parent, parent_state, txs)
        assert validator.receive_blocks([sealed.block]).accepted
        parent = sealed.block.header
        parent_state = validator.chain.state_at(sealed.block.hash)

    # the light client holds only headers
    head = validator.chain.head
    print(f"light client synced headers up to height {head.number}")
    print(f"state root: {head.header.state_root.hex()}")

    # pick a busy account and ask the full node for a proof
    snapshot = validator.chain.head_state
    target = universe.eoas[0]
    proof = serve_account_proof(snapshot, target)
    print(f"\nfull node served a {len(proof)}-node proof for {target.hex()[:12]}…")

    # the client verifies against the header root alone
    body = verify_proof(head.header.state_root, keccak(bytes(target)), proof)
    assert body is not None
    nonce, balance, storage_root, code_hash = rlp_decode(body)
    print("proof verified; account body decoded from the proof itself:")
    print(f"  nonce   : {int.from_bytes(nonce, 'big')}")
    print(f"  balance : {int.from_bytes(balance, 'big') / 10**18:.6f} ETH")
    print(f"  storage : {storage_root.hex()[:16]}…")

    # cross-check against the full node's state (the client can't do this,
    # but we can)
    acct = snapshot.account(target)
    assert int.from_bytes(nonce, "big") == acct.nonce
    assert int.from_bytes(balance, "big") == acct.balance

    # a tampered proof is caught
    forged = list(proof)
    forged[-1] = forged[-1][:-1] + bytes([forged[-1][-1] ^ 0xFF])
    try:
        verify_proof(head.header.state_root, keccak(bytes(target)), forged)
        raise AssertionError("forged proof accepted!")
    except ProofError as exc:
        print(f"\nforged proof rejected as expected: {exc}")

    # a single storage slot can be proven too (account + storage proof)
    from repro.state.proofs import prove_storage, verify_storage_proof
    from repro.workload.contracts import AMM_RESERVE0_SLOT

    pool, _tin, _tout = universe.amms[0]
    acct_proof, slot_proof = prove_storage(snapshot, pool, AMM_RESERVE0_SLOT)
    reserve = verify_storage_proof(
        head.header.state_root, pool, AMM_RESERVE0_SLOT, acct_proof, slot_proof
    )
    print(
        f"\nstorage proof verified: AMM reserve0 = {reserve:,} "
        f"({len(acct_proof)}+{len(slot_proof)} proof nodes)"
    )
    assert reserve == snapshot.account(pool).storage[AMM_RESERVE0_SLOT]

    # absence is provable too
    from repro.common.types import Address

    ghost = Address.from_int(0xDEAD_BEEF_0000)
    ghost_proof = serve_account_proof(snapshot, ghost)
    assert verify_proof(head.header.state_root, keccak(bytes(ghost)), ghost_proof) is None
    print(f"exclusion proof verified: {ghost.hex()[:12]}… has no account")


if __name__ == "__main__":
    main()
