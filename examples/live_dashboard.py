#!/usr/bin/env python3
"""Live telemetry: events, /metrics, SLO windows, and the dashboard.

The persistent node in `persistent_node.py` is silent while it runs;
this example turns the lights on.  It serves a short chain in-process
with the full telemetry stack enabled — JSONL event log, rolling SLO
windows, loopback status endpoint — and then plays operator:

1. scrape `/healthz`, `/metrics` (Prometheus text) and `/status` (JSON)
   from the live endpoint while blocks seal;
2. render the same document as one `repro status` dashboard frame;
3. read the structured event log back and show the narration —
   schema-versioned, sim-clock-stamped, byte-reproducible per seed.

Run:  python examples/live_dashboard.py
"""

import tempfile
import urllib.request
from pathlib import Path

from repro.__main__ import _render_status
from repro.obs.events import read_events
from repro.store.service import EVENTS_LOG_NAME, NodeService, ServeConfig


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode()


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="repro-dash-")) / "node"
    config = ServeConfig(
        data_dir=str(data_dir),
        txs_per_block=24,
        max_height=6,
        snapshot_interval=4,
        fsync=False,
        events=True,          # JSONL narration next to the block log
        status_port=0,        # loopback endpoint on an ephemeral port
    )
    service = NodeService(config)

    # -- 1. scrape the endpoint mid-run --------------------------------- #
    # The serve loop refreshes the status snapshot after every sealed
    # block; hook that moment to scrape exactly as Prometheus would.
    frames = []
    build = NodeService._build_telemetry

    def hooked(self):
        telemetry = build(self)
        refresh = telemetry.refresh

        def spy(**kw):
            refresh(**kw)
            base = f"http://127.0.0.1:{telemetry.server.port}"
            frames.append(
                (kw.get("height"), scrape(f"{base}/healthz").strip(),
                 scrape(f"{base}/metrics"))
            )

        telemetry.refresh = spy
        return telemetry

    NodeService._build_telemetry = hooked
    try:
        report = service.run(handle_signals=False)
    finally:
        NodeService._build_telemetry = build
    print(f"served: {report.summary()}\n")

    height, health, metrics = frames[-1]
    wanted = ("repro_up", "repro_healthy", "repro_serve_blocks_total_total",
              "repro_slo_seal_latency_us")
    shown = [line for line in metrics.splitlines()
             if line.startswith(wanted) and "#" not in line]
    print(f"scraped at height {height}: /healthz -> {health!r}")
    print("/metrics (excerpt):")
    for line in shown[:8]:
        print(f"  {line}")

    # -- 2. one dashboard frame (what `repro status` renders) ----------- #
    print("\ndashboard frame:")
    doc = service.telemetry.status_json()
    for line in _render_status(doc).splitlines():
        print(f"  {line}")

    # -- 3. the structured event log ------------------------------------ #
    events = read_events(str(data_dir / EVENTS_LOG_NAME))
    print(f"\nevent log: {len(events)} records, "
          f"seq 0..{events[-1]['seq']}, schema v{events[0]['v']}")
    for event in events:
        if event["kind"] == "block_sealed":
            print(f"  seq={event['seq']:>2} ts={event['ts']:>5.0f}s "
                  f"block_sealed height={event['height']} "
                  f"txs={event['txs']} aborts={event['aborts']} "
                  f"latency={event['latency_us']:.0f}us")
    sealed = sum(1 for e in events if e["kind"] == "block_sealed")
    assert sealed == 6 and health == "ok"
    print("\nsame seed, same stream: the event bytes above are "
          "reproducible run to run.")


if __name__ == "__main__":
    main()
