#!/usr/bin/env python3
"""A small blockchain network, end to end.

Three proposers and two validators run ten consensus rounds; some rounds
fork (two proposers race), so validators pipeline multiple same-height
blocks — the full DiCE loop of the paper's Figure 1, with the
execution-layer TPS uplift as the bottom line.

Run:  python examples/network_simulation.py
"""

from repro import build_universe
from repro.network.simnet import NetworkConfig, NetworkSimulation


def main() -> None:
    universe = build_universe()
    sim = NetworkSimulation(
        universe,
        config=NetworkConfig(
            n_proposers=3,
            n_validators=2,
            rounds=10,
            fork_probability=0.4,
            seed=17,
        ),
    )
    print("running 10 consensus rounds (3 proposers, 2 validators)...\n")
    result = sim.run()

    print(f"{'height':>7} {'proposer(s)':<24} {'txs':>5} {'pipe speedup':>13}")
    for r in result.rounds:
        proposers = "+".join(p.split('-')[1] for p in r.proposer_ids)
        forked = " (fork)" if len(r.proposer_ids) > 1 else ""
        print(
            f"{r.height:>7} {'p' + proposers + forked:<24} "
            f"{sum(r.block_txs):>5} {r.pipeline_speedup:>12.2f}x"
        )

    print(f"\nfinal height        : {result.final_height}")
    print(f"uncles on chain     : {result.uncle_count}")
    print(f"validators agree    : {result.chains_agree}")
    print(f"final state root    : {result.final_root_hex[:24]}…")
    print(
        f"\nexecution-layer TPS : {result.serial_tps:,.0f} serial -> "
        f"{result.parallel_tps:,.0f} with BlockPilot "
        f"({result.parallel_tps / result.serial_tps:.2f}x)"
    )


if __name__ == "__main__":
    main()
