#!/usr/bin/env python3
"""Persistent node: block log + snapshots + crash recovery (`repro.store`).

Everything else in this repo lives in memory; this example gives the
chain a disk life.  It walks the full durability story:

1. grow a chain through the normal proposer→validator path with a
   `DiskStore` attached — every accepted block is committed to an
   append-only checksummed log, the manifest rename being the atomic
   commit point;
2. reopen the data dir and watch recovery re-execute and root-verify
   the log into a byte-identical chain;
3. simulate a hard crash mid-append (a torn half-record past the
   manifest) and watch recovery *heal* it;
4. flip a byte inside the sealed region and watch recovery *refuse* —
   corruption is a typed error, never a silent absorb.

Run:  python examples/persistent_node.py
"""

import json
import struct
import tempfile
from pathlib import Path

from repro import BlockWorkloadGenerator, ProposerNode, ValidatorNode, build_universe
from repro.faults.storage import flip_log_byte
from repro.store import BlockLogCorruptError, StaleManifestError, open_store, recover


def grow(chain, universe, generator, blocks):
    proposer = ProposerNode("alice")
    validator = ValidatorNode("bob", universe.genesis, chain=chain)
    for _ in range(blocks):
        head = chain.head
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(head.header, chain.state_at(head.hash), txs)
        assert validator.receive_blocks([sealed.block]).accepted


def main() -> None:
    universe = build_universe()
    data_dir = Path(tempfile.mkdtemp(prefix="repro-node-")) / "node"

    # -- 1. a durable run ------------------------------------------------ #
    chain, store, recovery = open_store(
        str(data_dir), universe.genesis, snapshot_interval=4, fsync=False
    )
    print(f"fresh data dir: {recovery.summary()}")
    grow(chain, universe, BlockWorkloadGenerator(universe), 6)
    store.seal()
    store.close()
    head_hash = bytes(chain.head.hash).hex()
    print(f"grew 6 blocks, sealed; head {head_hash[:16]}…")
    manifest = json.loads((data_dir / "manifest.json").read_text())
    files = sorted(p.name for p in data_dir.iterdir())
    print(f"on disk: {files}  (clean={manifest['clean']})\n")

    # -- 2. recovery is a byte-identical rebuild ------------------------- #
    result = recover(str(data_dir), universe.genesis, fsync=False)
    print(f"reopened: {result.summary()}")
    assert bytes(result.chain.head.hash).hex() == head_hash
    print("recovered head matches the sealed head — byte-identical rebuild\n")
    result.log.close()

    # -- 3. a torn append past the manifest is healed -------------------- #
    # simulate dying mid-write: half a record lands after the last commit
    log_file = data_dir / json.loads((data_dir / "manifest.json").read_text())["logFile"]
    with open(log_file, "ab") as fh:
        fh.write(struct.pack("<II", 4096, 0) + b"interrupted mid-flush")
    result = recover(str(data_dir), universe.genesis, fsync=False)
    print(f"after a simulated torn append: {result.summary()}")
    assert result.healed, "the torn tail should have been healed"
    assert bytes(result.chain.head.hash).hex() == head_hash
    print(f"healed: {result.healed[0]}\n")
    result.log.close()

    # -- 4. sealed-region damage is refused, loudly ---------------------- #
    offset = flip_log_byte(str(data_dir), seed=7)
    try:
        recover(str(data_dir), universe.genesis, fsync=False)
    except (BlockLogCorruptError, StaleManifestError) as exc:
        print(f"flipped one byte at log offset {offset}; recovery refused:")
        print(f"  {type(exc).__name__}: {exc}")
    else:
        raise AssertionError("corruption must never pass silently")


if __name__ == "__main__":
    main()
