#!/usr/bin/env python3
"""OCC-WSI deep dive: watch the proposer's optimistic concurrency at work.

Demonstrates (1) thread-count scaling against a serial proposer, (2) the
abort/retry behaviour under hotspot contention, and (3) the core
serializability guarantee — replaying the committed block serially in
commit order reproduces the identical state root.

Run:  python examples/proposer_occ_wsi.py
"""

from repro import SerialExecutor, StateDB, build_universe
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import EVM, ExecutionContext
from repro.txpool.pool import TxPool
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import hotspot_scenario


def fresh_pool(txs) -> TxPool:
    pool = TxPool()
    pool.add_many(sorted(txs, key=lambda t: t.nonce))
    return pool


def main() -> None:
    universe = build_universe()
    # crank the hotspot so aborts are clearly visible
    generator = BlockWorkloadGenerator(universe, hotspot_scenario(0.7, seed=3))
    txs = generator.generate_block_txs()
    ctx = ExecutionContext(block_number=1, timestamp=12)

    serial = SerialExecutor()
    serial_result = serial.propose_serial(universe.genesis, fresh_pool(txs), ctx)
    print(
        f"serial proposer: {len(serial_result.packed)} txs, "
        f"{serial_result.total_time:.0f}us simulated"
    )

    print("\nOCC-WSI thread sweep (same pending set):")
    print(f"{'lanes':>6} {'makespan':>10} {'speedup':>8} {'aborts':>7} {'abort%':>7}")
    for lanes in (1, 2, 4, 8, 16):
        proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        result = proposer.propose(universe.genesis, fresh_pool(txs), ctx)
        speedup = serial_result.total_time / result.stats.makespan
        print(
            f"{lanes:>6} {result.stats.makespan:>9.0f}u {speedup:>7.2f}x "
            f"{result.stats.aborts:>7} {result.stats.extra['abort_rate']:>6.1%}"
        )

    # --- serializability check ----------------------------------------- #
    proposer = OCCWSIProposer(config=ProposerConfig(lanes=16))
    result = proposer.propose(universe.genesis, fresh_pool(txs), ctx)
    parallel_root = result.final_state().state_root()

    db = StateDB(universe.genesis)
    evm = EVM()
    for committed in result.committed:
        evm.apply_transaction(db, committed.tx, ctx)
    serial_replay_root = db.commit().state_root()

    print("\nserializability witness:")
    print(f"  parallel OCC-WSI state root : {parallel_root.hex()[:24]}…")
    print(f"  serial replay (commit order): {serial_replay_root.hex()[:24]}…")
    assert parallel_root == serial_replay_root
    print("  identical — the commit order is a valid serial schedule.")

    # --- what aborted and why ------------------------------------------- #
    snapshot_lag = [
        c.version - 1 - c.snapshot_version for c in result.committed
    ]
    stale = sum(1 for lag in snapshot_lag if lag > 0)
    print(
        f"\n{stale}/{len(result.committed)} transactions committed against a "
        "snapshot older than their block position"
    )
    print("(WSI tolerates that unless a *read* key changed in between —")
    print(" those cases aborted back to the pool and retried.)")


if __name__ == "__main__":
    main()
