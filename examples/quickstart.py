#!/usr/bin/env python3
"""Quickstart: one full proposer → validator round trip.

Builds a synthetic mainnet-like world, has a proposer pack a block with
OCC-WSI parallel execution, broadcasts it to a validator that re-executes
it with BlockPilot's scheduled parallelism, and extends the chain.

Run:  python examples/quickstart.py
"""

from repro import (
    BlockWorkloadGenerator,
    ProposerNode,
    ValidatorNode,
    build_universe,
)


def main() -> None:
    print("building universe (EOAs, tokens, AMMs, NFTs, airdrops)...")
    universe = build_universe()
    generator = BlockWorkloadGenerator(universe)

    proposer = ProposerNode("alice")
    validator = ValidatorNode("bob", universe.genesis)

    parent = validator.chain.genesis.header
    parent_state = universe.genesis

    for height in range(1, 4):
        txs = generator.generate_block_txs()
        print(f"\n--- height {height}: {len(txs)} pending transactions ---")

        sealed = proposer.build_block(parent, parent_state, txs)
        stats = sealed.proposal.stats
        print(
            f"proposer packed {len(sealed.block)} txs in "
            f"{stats.makespan:.0f}us simulated "
            f"({stats.aborts} optimistic aborts, "
            f"{stats.extra['abort_rate']:.1%} abort rate)"
        )
        print(f"block profile: {len(sealed.block.profile)} rw-set entries")

        outcome = validator.receive_blocks([sealed.block])
        assert outcome.accepted, outcome.pipeline.results[0].reason
        res = outcome.pipeline.results[0]
        print(
            f"validator accepted: {res.speedup:.2f}x over serial, "
            f"largest subgraph {res.graph.largest_component_ratio():.1%} of block"
        )
        print(f"state root: {sealed.block.header.state_root.hex()[:16]}…")

        parent = sealed.block.header
        parent_state = validator.chain.state_at(sealed.block.hash)

    print(f"\nchain height: {validator.chain.height()}")
    print("roots matched at every height — proposer and validator agree.")


if __name__ == "__main__":
    main()
