#!/usr/bin/env python3
"""Visualizing pipeline schedules as lane timelines.

Renders the shared 16-lane worker pool as an ASCII Gantt chart while the
validator pipeline processes 1, then 4, same-height blocks — making the
paper's Fig. 9 mechanism *visible*: a single block strands most lanes
idle behind its hotspot chain, while four sibling blocks interleave their
subgraphs and fill the pool.

Run:  python examples/schedule_timeline.py
"""

from repro import build_universe
from repro.analysis.timeline import render_timeline
from repro.chain.blockchain import Blockchain
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.network.dissemination import ForkSimulator
from repro.workload.generator import BlockWorkloadGenerator


def main() -> None:
    universe = build_universe()
    generator = BlockWorkloadGenerator(universe)
    chain = Blockchain(universe.genesis)
    txs = generator.generate_block_txs()
    parent_states = {chain.genesis.header.hash: universe.genesis}

    pipe = ValidatorPipeline(
        config=PipelineConfig(worker_lanes=16, record_trace=True)
    )

    for count in (1, 4):
        forks = ForkSimulator(count, seed=13).propose_forks(
            chain.genesis.header, universe.genesis, txs
        )
        result = pipe.process_blocks(forks.blocks, parent_states)
        assert result.all_accepted
        print(
            f"\n=== {count} concurrent block(s): speedup {result.speedup:.2f}x, "
            f"pool utilisation {result.stats.utilization:.0%} ==="
        )
        # label each task cell with the block index it belongs to
        print(
            render_timeline(
                result.lane_group,
                width=68,
                label_of=lambda tag: str(tag[0]) if tag else "#",
            ),
            end="",
        )

    print(
        "\neach digit marks which block a lane was executing; '.' is idle."
        "\nwith one block the hotspot subgraph pins a single lane while the"
        "\nrest idle — sibling blocks fill that idle capacity (Fig. 9)."
    )


if __name__ == "__main__":
    main()
