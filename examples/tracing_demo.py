#!/usr/bin/env python3
"""End-to-end tracing: from a proposer/validator round to a Perfetto file.

Runs one proposer and one validator with a live ``Tracer`` and
``MetricsRegistry``, then shows the three views the obs layer offers:

* a flame summary of the propose -> validate span tree (text);
* the metrics snapshot (counters / gauges / histograms);
* a Chrome trace-event JSON file — drag ``tracing_demo_trace.json`` onto
  https://ui.perfetto.dev to see lanes as threads and nodes as processes.

Run:  python examples/tracing_demo.py
"""

from repro import build_universe
from repro.chain.blockchain import Blockchain
from repro.network.node import ProposerNode, ValidatorNode
from repro.obs import MetricsRegistry, Tracer, flame_summary, write_chrome_trace
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig


def main() -> None:
    universe = build_universe()
    generator = BlockWorkloadGenerator(
        universe, WorkloadConfig(txs_per_block=60, seed=9)
    )
    chain = Blockchain(universe.genesis)

    tracer = Tracer()
    metrics = MetricsRegistry()
    proposer = ProposerNode("proposer-0", tracer=tracer, metrics=metrics)
    validator = ValidatorNode(
        "validator-0", universe.genesis, tracer=tracer, metrics=metrics
    )

    parent_header, parent_state = chain.genesis.header, universe.genesis
    for _ in range(2):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(parent_header, parent_state, txs)
        outcome = validator.receive_blocks([sealed.block])
        assert outcome.accepted
        head = validator.chain.head
        parent_header = head.header
        parent_state = validator.chain.state_at(head.hash)

    print("=== span tree (simulated time) ===")
    print(flame_summary(tracer, min_share=0.01), end="")

    snapshot = metrics.snapshot()
    print("\n=== selected metrics ===")
    for name in (
        "proposer.executions",
        "proposer.aborts",
        "proposer.commits",
        "validator.blocks_accepted",
        "pipeline.blocks_accepted",
        "node.blocks_received",
    ):
        if name in snapshot["counters"]:
            print(f"{name:28} {snapshot['counters'][name]}")
    exec_us = snapshot["histograms"].get("validator.exec_us")
    if exec_us:
        print(f"{'validator.exec_us mean':28} {exec_us['mean']:.1f}us")

    path = write_chrome_trace(tracer, "tracing_demo_trace.json", indent=2)
    print(f"\nwrote {path} ({len(tracer)} spans)")
    print("open it at https://ui.perfetto.dev — one process per node,")
    print("one thread per worker lane, timestamps in simulated us.")


if __name__ == "__main__":
    main()
