#!/usr/bin/env python3
"""Validator pipeline walkthrough: forks, phases and multi-block overlap.

Simulates the paper's §3.4 situation: several proposers race at the same
height, so the validator receives a burst of sibling blocks and pipelines
them over one shared 16-thread worker pool.  Prints the four phase
completion times per block and the speedup curve of Fig. 9.

Run:  python examples/validator_pipeline.py
"""

from repro import build_universe
from repro.chain.blockchain import Blockchain
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.network.dissemination import ForkSimulator
from repro.workload.generator import BlockWorkloadGenerator


def main() -> None:
    universe = build_universe()
    generator = BlockWorkloadGenerator(universe)
    chain = Blockchain(universe.genesis)
    txs = generator.generate_block_txs()
    parent_states = {chain.genesis.header.hash: universe.genesis}

    pipe = ValidatorPipeline(config=PipelineConfig(worker_lanes=16))

    # --- one burst of 4 sibling blocks, phase by phase -------------------- #
    forks = ForkSimulator(4, seed=11).propose_forks(
        chain.genesis.header, universe.genesis, txs
    )
    result = pipe.process_blocks(forks.blocks, parent_states)
    assert result.all_accepted

    print("4 same-height sibling blocks through the pipeline (times in us):")
    print(f"{'block':>6} {'prep':>8} {'exec':>8} {'validate':>9} {'commit':>8}")
    for timing in result.timings:
        print(
            f"{timing.index:>6} {timing.prep_end:>8.0f} {timing.exec_end:>8.0f} "
            f"{timing.validate_end:>9.0f} {timing.commit_end:>8.0f}"
        )
    print(
        f"makespan {result.makespan:.0f}us vs serial {result.serial_time:.0f}us "
        f"-> {result.speedup:.2f}x  ({result.context_switches} context switches)"
    )

    # --- the Fig. 9 curve ---------------------------------------------- #
    print("\npipeline speedup vs concurrent block count (Fig. 9 shape):")
    for count in (1, 2, 3, 4, 6, 8):
        forks = ForkSimulator(count, seed=11).propose_forks(
            chain.genesis.header, universe.genesis, txs
        )
        r = pipe.process_blocks(forks.blocks, parent_states)
        bar = "#" * round(r.speedup * 4)
        print(f"  B={count}:  {r.speedup:5.2f}x  {bar}")

    # --- different heights serialise at validation ------------------------ #
    print("\nparent/child blocks: validation phases serialise (Figure 5):")
    from repro.network.node import ProposerNode

    node = ProposerNode("alice")
    sealed1 = node.build_block(chain.genesis.header, universe.genesis, txs)
    txs2 = generator.generate_block_txs()
    sealed2 = node.build_block(sealed1.block.header, sealed1.post_state, txs2)
    r = pipe.process_blocks([sealed1.block, sealed2.block], parent_states)
    t1, t2 = r.timings
    print(f"  block N   : exec_end={t1.exec_end:7.0f}  validate_end={t1.validate_end:7.0f}")
    print(f"  block N+1 : exec_end={t2.exec_end:7.0f}  validate_end={t2.validate_end:7.0f}")
    print(
        "  child execution overlapped the parent's validation, but its own\n"
        "  validation waited for the parent's to finish."
    )


if __name__ == "__main__":
    main()
