#!/usr/bin/env python
"""End-to-end smoke for live serve telemetry (``make telemetry-smoke``).

Launches a real ``repro serve`` subprocess with the event log and status
endpoint on, scrapes ``/healthz``, ``/metrics`` and ``/status`` over
loopback while blocks are being sealed, renders one ``repro status``
dashboard frame against the same endpoint, then SIGTERMs the node and
verifies it sealed cleanly and left a parseable event log behind.

Exits non-zero on the first failed expectation.  This is the CI smoke
lane; the full behavioural matrix lives in tests/test_serve_telemetry.py.
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
URL_RE = re.compile(r"status endpoint listening on (http://[\d.]+:\d+)")


def fail(message: str) -> None:
    print(f"telemetry-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as resp:
        if resp.status != 200:
            fail(f"GET {url} -> {resp.status}")
        return resp.read().decode()


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="telemetry-smoke-")) / "node"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--txs-per-block",
            "24",
            "serve",
            "--data-dir",
            str(data_dir),
            "--snapshot-interval",
            "8",
            "--no-fsync",
            "--events",
            "--status-port",
            "0",
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    url = None
    deadline = time.monotonic() + 60
    assert proc.stderr is not None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        match = URL_RE.search(line or "")
        if match:
            url = match.group(1)
            break
        if proc.poll() is not None:
            break
    if url is None:
        proc.kill()
        out, err = proc.communicate(timeout=30)
        fail(f"no status URL announced\n{out}\n{err}")

    print(f"telemetry-smoke: node up at {url}")
    if get(f"{url}/healthz") != "ok\n":
        fail("healthz did not answer ok")
    metrics = get(f"{url}/metrics")
    for needle in ("repro_up 1", "repro_serve_blocks_total_total"):
        if needle not in metrics:
            fail(f"/metrics missing {needle!r}")
    status = json.loads(get(f"{url}/status"))
    if status["schema"] != 1 or not status["health"]["ready"]:
        fail(f"unexpected /status document: {status}")
    print(
        "telemetry-smoke: scraped height="
        f"{status['height']} events_seq={status['events']['seq']}"
    )

    dash = subprocess.run(
        [sys.executable, "-m", "repro", "status", "--url", url],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    if dash.returncode != 0 or "health healthy" not in dash.stdout:
        fail(f"status dashboard failed:\n{dash.stdout}\n{dash.stderr}")

    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=120)
    if proc.returncode != 0:
        fail(f"serve exited {proc.returncode}:\n{stdout}\n{stderr}")
    if "sealed=True" not in stdout:
        fail(f"serve did not seal cleanly:\n{stdout}")

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.events import read_events

    events = read_events(str(data_dir / "events.jsonl"), strict=True)
    kinds = {event["kind"] for event in events}
    for expected in ("serve_start", "block_sealed", "serve_stop"):
        if expected not in kinds:
            fail(f"event log missing kind {expected!r}")
    print(f"telemetry-smoke: PASS ({len(events)} events, clean seal)")


if __name__ == "__main__":
    main()
