"""Legacy setup shim so `pip install -e .` works offline without the
`wheel` package (the sandbox lacks bdist_wheel support)."""

from setuptools import setup

setup()
