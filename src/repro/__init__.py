"""BlockPilot: a proposer-validator parallel execution framework for
blockchain (reproduction of Zhang et al., ICPP 2023).

Quick tour::

    from repro import (
        build_universe, BlockWorkloadGenerator, ProposerNode, ValidatorNode,
    )

    universe = build_universe()
    generator = BlockWorkloadGenerator(universe)
    txs = generator.generate_block_txs()

    proposer = ProposerNode("alice")
    validator = ValidatorNode("bob", universe.genesis)
    sealed = proposer.build_block(
        validator.chain.genesis.header, universe.genesis, txs
    )
    outcome = validator.receive_blocks([sealed.block])
    assert outcome.accepted

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.common import Address, Hash32
from repro.chain import Block, BlockHeader, BlockProfile, Blockchain, ChainParams, ETHEREUM_POW_PARAMS
from repro.core import (
    OCCWSIProposer,
    ProposerConfig,
    ParallelValidator,
    ValidatorConfig,
    ValidatorPipeline,
    PipelineConfig,
    SerialExecutor,
    TwoPhaseOCCExecutor,
    build_dependency_graph,
    schedule_components,
    seal_block,
)
from repro.evm import EVM, EVMConfig, ExecutionContext
from repro.network import ForkSimulator, ProposerNode, ValidatorNode
from repro.simcore import CostModel
from repro.state import StateDB, StateSnapshot, genesis_snapshot, prove, verify_proof
from repro.txpool import Transaction, TxPool
from repro.workload import (
    BlockWorkloadGenerator,
    WorkloadConfig,
    Universe,
    UniverseConfig,
    build_universe,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "Hash32",
    "Block",
    "BlockHeader",
    "BlockProfile",
    "Blockchain",
    "ChainParams",
    "ETHEREUM_POW_PARAMS",
    "OCCWSIProposer",
    "ProposerConfig",
    "ParallelValidator",
    "ValidatorConfig",
    "ValidatorPipeline",
    "PipelineConfig",
    "SerialExecutor",
    "TwoPhaseOCCExecutor",
    "build_dependency_graph",
    "schedule_components",
    "seal_block",
    "EVM",
    "EVMConfig",
    "ExecutionContext",
    "ForkSimulator",
    "ProposerNode",
    "ValidatorNode",
    "CostModel",
    "StateDB",
    "StateSnapshot",
    "genesis_snapshot",
    "prove",
    "verify_proof",
    "Transaction",
    "TxPool",
    "BlockWorkloadGenerator",
    "WorkloadConfig",
    "Universe",
    "UniverseConfig",
    "build_universe",
    "__version__",
]
