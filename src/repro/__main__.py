"""Command-line interface: quick experiments without writing a script.

Usage::

    python -m repro demo                       # one propose/validate round
    python -m repro proposer --lanes 2 4 8 16  # Fig. 6-style sweep
    python -m repro validator --lanes 2 4 8 16 # Fig. 7(a)-style sweep
    python -m repro pipeline --blocks 1 2 4 8  # Fig. 9-style sweep
    python -m repro hotspot                    # Fig. 8-style sweep
    python -m repro trace --out trace.json     # traced run -> Perfetto JSON
    python -m repro check                      # conformance oracles over a chain
    python -m repro check failing.json         # replay fuzzer repro schedules
    python -m repro fuzz --schedules 200       # schedule fuzzer (repro.check)
    python -m repro serve --data-dir ./node    # durable long-running node

All subcommands run on a freshly generated universe; ``--seed``,
``--txs-per-block`` and ``--blocks-per-point`` control workload size.

``--backend sim|serial|thread|process`` selects the execution substrate:
``sim`` (default) keeps the simulated-clock event loop every figure script
uses; the other three run the same algorithms on real cores (see
:mod:`repro.exec`), turning makespans into wall-clock microseconds.

``--strategy occ-wsi|two-phase|block-stm`` picks the proposer engine
(see :mod:`repro.core.strategies`); every subcommand that builds blocks
honours it, so ``python -m repro --strategy block-stm fuzz`` fuzzes the
Block-STM scheduler's yield points.

``--scenario <name>`` swaps the workload for a named scenario stream
(see :mod:`repro.workload.scenarios`): conflict-taming counter variants,
burst arrivals, MEV bundles, the streaming long tail, or the
day-in-the-life replay — ``python -m repro --scenario mev-bundles demo``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from statistics import mean

from repro.analysis.report import format_table
from repro.chain.blockchain import Blockchain
from repro.core.baselines import SerialExecutor
from repro.core.occ_wsi import ProposerConfig
from repro.core.strategies import STRATEGY_CHOICES, build_proposer
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.exec import BACKEND_CHOICES, get_backend
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode, ValidatorNode
from repro.txpool.pool import TxPool
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import (
    get_scenario,
    hotspot_scenario,
    mainnet_scenario,
    scenario_names,
)
from repro.workload.universe import build_universe


def _setup(args):
    """Universe + block source + chain for the workload the flags select.

    With ``--scenario`` the block source is the named scenario stream
    (which duck-types ``generate_block_txs``); otherwise it is the plain
    mainnet-calibrated generator.
    """
    if getattr(args, "scenario", None):
        stream = get_scenario(
            args.scenario, seed=args.seed, txs_per_block=args.txs_per_block
        )
        return stream.universe, stream, Blockchain(stream.universe.genesis)
    universe = build_universe()
    config = dataclasses.replace(
        mainnet_scenario(seed=args.seed), txs_per_block=args.txs_per_block
    )
    generator = BlockWorkloadGenerator(universe, config)
    chain = Blockchain(universe.genesis)
    return universe, generator, chain


def _proposer_config(args, **overrides) -> ProposerConfig:
    """The CLI's one ProposerConfig factory — every subcommand that builds
    blocks goes through it so ``--strategy`` is honoured everywhere."""
    return ProposerConfig(strategy=args.strategy, **overrides)


def cmd_demo(args) -> int:
    universe, generator, chain = _setup(args)
    backend = args.exec_backend
    proposer = ProposerNode(
        "cli-proposer", config=_proposer_config(args), backend=backend
    )
    validator = ValidatorNode("cli-validator", universe.genesis, backend=backend)
    txs = generator.generate_block_txs()
    sealed = proposer.build_block(chain.genesis.header, universe.genesis, txs)
    outcome = validator.receive_blocks([sealed.block])
    res = outcome.pipeline.results[0]
    print(
        format_table(
            [
                {
                    "txs": len(sealed.block),
                    "proposer_aborts": sealed.proposal.stats.aborts,
                    "proposer_makespan_us": round(sealed.proposal.stats.makespan, 1),
                    "validator_speedup": round(res.speedup, 2),
                    "max_subgraph": f"{res.graph.largest_component_ratio():.1%}",
                    "accepted": bool(outcome.accepted),
                }
            ],
            title="demo: one proposer/validator round trip",
        )
    )
    return 0 if outcome.accepted else 1


def cmd_proposer(args) -> int:
    universe, generator, chain = _setup(args)
    serial = SerialExecutor()
    blocks = []
    parent_header, parent_state = chain.genesis.header, universe.genesis
    seal_node = ProposerNode("cli", config=_proposer_config(args))
    for _ in range(args.blocks_per_point):
        txs = generator.generate_block_txs()
        sealed = seal_node.build_block(parent_header, parent_state, txs)
        blocks.append((txs, parent_header, parent_state, sealed.block.header))
        sres = serial.execute_block(sealed.block, parent_state)
        parent_header, parent_state = sealed.block.header, sres.post_state

    rows = []
    for lanes in args.lanes:
        engine = build_proposer(
            _proposer_config(args, lanes=lanes), backend=args.exec_backend
        )
        speedups = []
        for txs, ph, ps, header in blocks:
            ctx = ExecutionContext(
                block_number=header.number,
                timestamp=header.timestamp,
                coinbase=header.coinbase,
                gas_limit=header.gas_limit,
            )
            pool = TxPool()
            pool.add_many(sorted(txs, key=lambda t: t.nonce))
            result = engine.propose(ps, pool, ctx)
            pool2 = TxPool()
            pool2.add_many(sorted(txs, key=lambda t: t.nonce))
            sres = serial.propose_serial(ps, pool2, ctx)
            speedups.append(sres.total_time / result.stats.makespan)
        rows.append({"lanes": lanes, "mean_speedup": round(mean(speedups), 2)})
    print(format_table(rows, title="proposer scalability (Fig. 6 shape)"))
    return 0


def cmd_validator(args) -> int:
    universe, generator, chain = _setup(args)
    serial = SerialExecutor()
    proposer = ProposerNode("cli", config=_proposer_config(args))
    blocks = []
    parent_header, parent_state = chain.genesis.header, universe.genesis
    for _ in range(args.blocks_per_point):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(parent_header, parent_state, txs)
        blocks.append((sealed.block, parent_state))
        sres = serial.execute_block(sealed.block, parent_state)
        parent_header, parent_state = sealed.block.header, sres.post_state

    rows = []
    for lanes in args.lanes:
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=lanes), backend=args.exec_backend
        )
        speedups = [
            validator.validate_block(block, state).speedup
            for block, state in blocks
        ]
        rows.append({"lanes": lanes, "mean_speedup": round(mean(speedups), 2)})
    print(format_table(rows, title="validator scalability (Fig. 7a shape)"))

    if args.followers > 0:
        from repro.distributed import DistributedValidator

        dist_rows = []
        for n in range(1, args.followers + 1):
            dv = DistributedValidator(n)
            makespans, shards = [], []
            for block, state in blocks:
                res = dv.validate(block, state)
                rec = dv.last_record
                if not res.accepted or not res.used_distributed or rec is None:
                    print(f"distributed validation declined: {res.reason}")
                    return 1
                makespans.append(rec.makespan_us)
                shards.append(rec.n_shards)
            dist_rows.append(
                {
                    "followers": n,
                    "mean_makespan_us": round(mean(makespans), 1),
                    "mean_shards": round(mean(shards), 1),
                }
            )
        print(
            format_table(
                dist_rows, title="distributed validation (follower sweep)"
            )
        )
    return 0


def cmd_simulate(args) -> int:
    """Multi-round consensus simulation, optionally with follower pools."""
    from repro.network.simnet import NetworkConfig, NetworkSimulation
    from repro.obs import MetricsRegistry

    if args.scenario:
        stream = get_scenario(
            args.scenario, seed=args.seed, txs_per_block=args.txs_per_block
        )
        universe, generator = stream.universe, stream
    else:
        universe, generator = build_universe(), None
    metrics = MetricsRegistry()
    sim = NetworkSimulation(
        universe,
        config=NetworkConfig(
            rounds=args.rounds,
            n_proposers=args.proposers,
            n_validators=args.validators,
            seed=args.seed,
            followers=args.followers,
        ),
        generator=generator,
        metrics=metrics,
    )
    result = sim.run()
    print(
        format_table(
            [
                {
                    "rounds": len(result.rounds),
                    "height": result.final_height,
                    "canonical_txs": result.total_txs,
                    "accepted": sum(r.accepted for r in result.rounds),
                    "chains_agree": result.chains_agree,
                    "followers": args.followers,
                }
            ],
            title="network simulation",
        )
    )
    if args.followers > 0:
        counters = metrics.snapshot()["counters"]
        dist = {k: v for k, v in counters.items() if k.startswith("dist.")}
        print(format_table([dist or {"dist.blocks": 0}], title="distributed counters"))
    return 0 if result.chains_agree else 1


def cmd_pipeline(args) -> int:
    universe, generator, chain = _setup(args)
    txs = generator.generate_block_txs()
    pipe = ValidatorPipeline(
        config=PipelineConfig(worker_lanes=16), backend=args.exec_backend
    )
    parent_states = {chain.genesis.header.hash: universe.genesis}
    rows = []
    for count in args.blocks:
        forks = ForkSimulator(count, seed=args.seed).propose_forks(
            chain.genesis.header, universe.genesis, txs
        )
        res = pipe.process_blocks(forks.blocks, parent_states)
        rows.append(
            {
                "blocks": count,
                "speedup": round(res.speedup, 2),
                "ctx_switches": res.context_switches,
            }
        )
    print(format_table(rows, title="multi-block pipeline (Fig. 9 shape)"))
    return 0


def cmd_hotspot(args) -> int:
    universe, _, chain = _setup(args)
    proposer = ProposerNode("cli", config=_proposer_config(args))
    validator = ParallelValidator(
        config=ValidatorConfig(lanes=16), backend=args.exec_backend
    )
    rows = []
    for intensity in (0.0, 0.25, 0.5, 0.75, 1.0):
        uni = dataclasses.replace(universe, nonces={})
        generator = BlockWorkloadGenerator(
            uni, hotspot_scenario(intensity, seed=args.seed)
        )
        ratios, speedups = [], []
        for _ in range(args.blocks_per_point):
            txs = generator.generate_block_txs()
            sealed = proposer.build_block(
                chain.genesis.header, universe.genesis, txs
            )
            res = validator.validate_block(sealed.block, universe.genesis)
            ratios.append(res.graph.largest_component_ratio())
            speedups.append(res.speedup)
            uni.nonces.clear()
        rows.append(
            {
                "intensity": intensity,
                "max_subgraph": f"{mean(ratios):.1%}",
                "speedup@16": round(mean(speedups), 2),
            }
        )
    print(format_table(rows, title="hotspot effect (Fig. 8 shape)"))
    return 0


def cmd_trace(args) -> int:
    """Run a fully traced scenario and export Chrome-trace + flame files."""
    from repro.obs import MetricsRegistry, Tracer, flame_summary, write_chrome_trace

    universe, generator, chain = _setup(args)
    tracer = Tracer()
    metrics = MetricsRegistry()

    if args.mode == "network":
        from repro.network.simnet import NetworkConfig, NetworkSimulation

        sim = NetworkSimulation(
            universe,
            config=NetworkConfig(rounds=args.rounds, seed=args.seed),
            tracer=tracer,
            metrics=metrics,
        )
        sim.run()
    else:  # "round": proposer -> validator round trips on one chain
        proposer = ProposerNode(
            "proposer",
            config=_proposer_config(args),
            tracer=tracer,
            metrics=metrics,
            backend=args.exec_backend,
        )
        validator = ValidatorNode(
            "validator",
            universe.genesis,
            tracer=tracer,
            metrics=metrics,
            backend=args.exec_backend,
        )
        parent_header, parent_state = chain.genesis.header, universe.genesis
        for _ in range(args.rounds):
            txs = generator.generate_block_txs()
            sealed = proposer.build_block(parent_header, parent_state, txs)
            outcome = validator.receive_blocks([sealed.block])
            if not outcome.accepted:
                break
            head = validator.chain.head
            parent_header = head.header
            parent_state = validator.chain.state_at(head.hash)

    trace_path = write_chrome_trace(tracer, args.out, indent=2)
    flame = flame_summary(tracer, min_share=args.min_share)
    flame_path = os.path.splitext(args.out)[0] + "_flame.txt"
    with open(flame_path, "w", encoding="utf-8") as fh:
        fh.write(flame)

    print(flame, end="")
    snapshot = metrics.snapshot()
    print(
        f"metrics: {len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms"
    )
    print(f"wrote {trace_path} ({len(tracer)} spans) — open in https://ui.perfetto.dev")
    print(f"wrote {flame_path}")
    return 0


def _fuzz_scenario(args):
    """The shared fuzz target — ``fuzz`` and ``check <repro>`` must agree
    on it so a repro file's recorded decisions land on the same workload."""
    from repro.check.fuzzer import ConformanceScenario

    if getattr(args, "scenario", None):
        return ConformanceScenario.named(
            args.scenario, n_txs=args.txs, seed=args.seed, strategy=args.strategy
        )
    return ConformanceScenario.hotspot(
        n_txs=args.txs, seed=args.seed, strategy=args.strategy
    )


def cmd_check(args) -> int:
    """Run the conformance oracles; exit non-zero on any violation."""
    from repro.check import diff_proposal, verify_commit_order, verify_schedule
    from repro.check.fuzzer import load_schedule_json, run_schedule

    if args.repro:
        # replay mode: each schedule in the repro file is re-run against the
        # standard fuzz scenario (same as `python -m repro fuzz` builds)
        scenario = _fuzz_scenario(args)
        failures = []
        for index, schedule in enumerate(load_schedule_json(args.repro)):
            failure = run_schedule(scenario, schedule)
            if failure is None:
                print(f"schedule {index}: ok")
            else:
                print(f"schedule {index}: FAIL\n{failure.describe()}")
                failures.append(failure)
        return 1 if failures else 0

    universe, generator, chain = _setup(args)
    serial = SerialExecutor()
    proposer = ProposerNode(
        "cli-check", config=_proposer_config(args), backend=args.exec_backend
    )
    parent_header, parent_state = chain.genesis.header, universe.genesis
    rows, bad = [], 0
    for number in range(args.blocks_per_point):
        txs = generator.generate_block_txs()
        sealed = proposer.build_block(parent_header, parent_state, txs)
        sched = verify_schedule(sealed.block, strategy=args.strategy)
        order = verify_commit_order(sealed.proposal)
        diff = diff_proposal(sealed, parent_state)
        if not (sched.ok and order.ok and diff.ok):
            bad += 1
            for report in (sched, order, diff):
                if not report.ok:
                    print(report.summary())
        rows.append(
            {
                "block": number + 1,
                "txs": len(sealed.block),
                "conflict_edges": sum(sched.edge_counts().values()),
                "serializable": sched.ok and order.ok,
                "serial_equivalent": diff.ok,
            }
        )
        sres = serial.execute_block(sealed.block, parent_state)
        parent_header, parent_state = sealed.block.header, sres.post_state
    print(format_table(rows, title="conformance check (oracle + differential)"))
    return 1 if bad else 0


def cmd_fuzz(args) -> int:
    """Explore seeded driver interleavings; exit non-zero on any failure."""
    from repro.check.fuzzer import fuzz_conformance, save_failures

    scenario = _fuzz_scenario(args)
    result = fuzz_conformance(
        scenario, args.schedules, seed=args.seed, budget_s=args.budget
    )
    print(result.summary())
    if args.out and result.failures:
        save_failures(result, args.out)
        print(f"wrote failing schedules to {args.out}")
    return 0 if result.ok else 1


def cmd_serve(args) -> int:
    """Run the durable node: recover the data dir, produce blocks, seal."""
    from repro.faults.storage import CrashPlan
    from repro.obs import MetricsRegistry
    from repro.store.service import NodeService, ServeConfig

    cfg = ServeConfig(
        data_dir=args.data_dir,
        seed=args.seed,
        txs_per_block=args.txs_per_block,
        scenario=args.scenario,
        max_height=args.blocks,
        block_interval=args.block_interval,
        snapshot_interval=args.snapshot_interval,
        compact=not args.no_compact,
        fsync=not args.no_fsync,
        report_every=args.report_every,
        events=args.events,
        status_port=args.status_port,
        wall_clock_slo=args.wall_clock_slo,
        stall_interval_s=args.stall_interval,
        stall_factor=args.stall_factor,
    )
    service = NodeService(
        cfg,
        backend=args.exec_backend,
        metrics=MetricsRegistry(),
        crash=CrashPlan.from_env(),
    )
    report = service.run()
    if service.recovery is not None and not service.recovery.fresh:
        print(service.recovery_summary)
    print(report.summary())
    return report.exit_code


def _render_status(doc: dict) -> str:
    """One compact dashboard frame from a /status JSON document."""
    health = doc.get("health", {})
    slo = doc.get("slo", {})
    totals = slo.get("totals", {})
    windows = slo.get("windows") or []
    current = windows[-1] if windows else {}
    events = doc.get("events", {})
    state = "healthy" if health.get("healthy", False) else "UNHEALTHY"
    if not health.get("ready", False):
        state = "recovering"
    lines = [
        f"node   height={doc.get('height', '?')} head={str(doc.get('head', ''))[:12]} "
        f"produced={doc.get('produced', '?')} "
        f"resumed_from={doc.get('resumed_from', '?')}",
        f"health {state} silent={health.get('silent_s', 0.0):.1f}s "
        f"threshold={health.get('threshold_s', 0.0):.1f}s "
        f"unhealthy_intervals={health.get('unhealthy_intervals', 0)}",
        f"totals blocks={totals.get('blocks', 0)} txs={totals.get('txs', 0)} "
        f"aborts={totals.get('aborts', 0)} retries={totals.get('retries', 0)} "
        f"fallbacks={totals.get('fallbacks', 0)}",
        f"window seal_p50={current.get('seal_p50_us', 0.0):.0f}us "
        f"p95={current.get('seal_p95_us', 0.0):.0f}us "
        f"p99={current.get('seal_p99_us', 0.0):.0f}us "
        f"abort_rate={current.get('abort_rate', 0.0):.3f}",
        f"store  write_p95={current.get('store_p95_us', 0.0):.0f}us "
        f"events_seq={events.get('seq', 0)} "
        f"dropped={events.get('dropped', 0)} "
        f"rotations={events.get('rotations', 0)}",
    ]
    return "\n".join(lines)


def cmd_status(args) -> int:
    """Scrape a running node's /status endpoint and render a dashboard."""
    import json
    import time
    import urllib.error
    import urllib.request

    if args.url:
        base = args.url.rstrip("/")
    elif args.port is not None:
        base = f"http://127.0.0.1:{args.port}"
    else:
        print("status: need --url or --port", file=sys.stderr)
        return 2

    def fetch() -> dict:
        with urllib.request.urlopen(f"{base}/status", timeout=5) as resp:
            return json.load(resp)

    try:
        while True:
            try:
                doc = fetch()
            except (urllib.error.URLError, OSError) as exc:
                print(f"status: {base} unreachable: {exc}", file=sys.stderr)
                return 1
            frame = _render_status(doc)
            if args.watch:
                # clear + home, like a one-page `top`
                print(f"\x1b[2J\x1b[H{base}\n{frame}", flush=True)
                time.sleep(args.interval)
            else:
                print(frame)
                return 0
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BlockPilot reproduction — quick experiment driver",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--txs-per-block", type=int, default=132)
    parser.add_argument("--blocks-per-point", type=int, default=4)
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="sim",
        help="execution substrate: sim (event-loop clock, default) or a "
        "real-core backend (serial | thread | process)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for real-core backends (default: all CPUs)",
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="occ-wsi",
        help="proposer execution engine: occ-wsi (paper Alg. 1, default), "
        "two-phase (Saraph & Herlihy), or block-stm (Gelashvili et al.)",
    )
    parser.add_argument(
        "--scenario",
        choices=scenario_names(),
        default=None,
        help="named workload scenario stream (repro.workload.scenarios); "
        "default: the paper-calibrated mainnet mix",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="one propose/validate round trip")
    p = sub.add_parser("proposer", help="Fig. 6-style thread sweep")
    p.add_argument("--lanes", type=int, nargs="+", default=[2, 4, 8, 16])
    p = sub.add_parser("validator", help="Fig. 7(a)-style thread sweep")
    p.add_argument("--lanes", type=int, nargs="+", default=[2, 4, 8, 16])
    p.add_argument(
        "--followers",
        type=int,
        default=0,
        help="also sweep distributed validation over 1..N follower nodes",
    )
    p = sub.add_parser(
        "simulate", help="multi-round consensus simulation (repro.network)"
    )
    p.add_argument("--rounds", type=int, default=4)
    p.add_argument("--proposers", type=int, default=2)
    p.add_argument("--validators", type=int, default=2)
    p.add_argument(
        "--followers",
        type=int,
        default=0,
        help="shard validation across N follower nodes per validator",
    )
    p = sub.add_parser("pipeline", help="Fig. 9-style block-count sweep")
    p.add_argument("--blocks", type=int, nargs="+", default=[1, 2, 4, 8])
    sub.add_parser("hotspot", help="Fig. 8-style intensity sweep")
    p = sub.add_parser("trace", help="traced run -> Chrome-trace JSON + flame")
    p.add_argument(
        "--mode",
        choices=["round", "network"],
        default="round",
        help="round: proposer/validator round trips; network: full simnet",
    )
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--out", default="trace.json")
    p.add_argument(
        "--min-share",
        type=float,
        default=0.0,
        help="prune flame lines below this fraction of total time",
    )
    p = sub.add_parser(
        "check", help="conformance oracles: serializability + serial-equivalence"
    )
    p.add_argument(
        "repro",
        nargs="?",
        default=None,
        help="optional fuzzer repro JSON: replay its schedules instead of "
        "building a fresh chain",
    )
    p.add_argument(
        "--txs",
        type=int,
        default=18,
        help="scenario block size for repro replays (must match the fuzz run)",
    )
    p = sub.add_parser(
        "fuzz",
        help="deterministic schedule fuzzer over the thread-backend drivers",
    )
    p.add_argument("--schedules", type=int, default=50)
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds (stops early when exceeded)",
    )
    p.add_argument("--txs", type=int, default=18, help="scenario block size")
    p.add_argument(
        "--out", default=None, help="write failing schedules to this JSON file"
    )
    p = sub.add_parser(
        "serve",
        help="durable long-running node: block log + snapshots + recovery",
    )
    p.add_argument(
        "--data-dir", required=True, help="directory for log/snapshots/manifest"
    )
    p.add_argument(
        "--blocks",
        type=int,
        default=0,
        help="stop once the chain reaches this height (0 = run until signal)",
    )
    p.add_argument(
        "--block-interval",
        type=int,
        default=12,
        help="simulated seconds between blocks (header-timestamp step)",
    )
    p.add_argument(
        "--snapshot-interval",
        type=int,
        default=64,
        help="write a full state snapshot every N canonical blocks",
    )
    p.add_argument(
        "--no-compact",
        action="store_true",
        help="keep the full block log (skip post-snapshot compaction)",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync calls (faster; durable only against process death)",
    )
    p.add_argument(
        "--report-every",
        type=int,
        default=0,
        help="print a progress line every N blocks (0 = quiet)",
    )
    p.add_argument(
        "--events",
        action="store_true",
        help="write a structured JSONL event log next to the block log",
    )
    p.add_argument(
        "--status-port",
        type=int,
        default=None,
        help="loopback HTTP status endpoint (/metrics /status /healthz); "
        "0 picks an ephemeral port, printed to stderr",
    )
    p.add_argument(
        "--wall-clock-slo",
        action="store_true",
        help="sample SLO windows on the wall clock instead of the "
        "simulated one (diagnostics only; breaks event determinism)",
    )
    p.add_argument(
        "--stall-interval",
        type=float,
        default=5.0,
        help="expected seconds between sealed blocks (watchdog base)",
    )
    p.add_argument(
        "--stall-factor",
        type=float,
        default=4.0,
        help="/healthz flips unhealthy after factor×interval of silence",
    )
    p = sub.add_parser(
        "status",
        help="scrape a running serve node's /status endpoint and render it",
    )
    p.add_argument(
        "--url",
        default=None,
        help="status endpoint base URL (default: http://127.0.0.1:<port>)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="shorthand for --url http://127.0.0.1:<port>",
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help="refresh the dashboard every --interval seconds until ^C",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period for --watch (wall seconds)",
    )
    return parser


COMMANDS = {
    "demo": cmd_demo,
    "proposer": cmd_proposer,
    "validator": cmd_validator,
    "simulate": cmd_simulate,
    "pipeline": cmd_pipeline,
    "hotspot": cmd_hotspot,
    "trace": cmd_trace,
    "check": cmd_check,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
    "status": cmd_status,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # one backend per invocation, shared by every engine the command builds
    args.exec_backend = get_backend(args.backend, args.workers)
    try:
        return COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # `serve` installs its own SIGINT handler and seals first; every
        # other command just stops cleanly with the conventional code
        print(
            f"interrupted: {args.command} stopped before finishing (exit 130)",
            file=sys.stderr,
        )
        return 130
    finally:
        if args.exec_backend is not None:
            args.exec_backend.close()


if __name__ == "__main__":
    sys.exit(main())
