"""Result aggregation and report formatting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; this
package turns raw per-block measurements into the same rows/series the
paper reports and renders them as fixed-width text tables (and ASCII
histograms for the distribution figures).
"""

from repro.analysis.metrics import (
    SweepPoint,
    scaling_sweep_table,
    bucket_by_ratio,
    correlation,
    throughput_tps,
)
from repro.analysis.report import (
    format_table,
    format_histogram,
    format_series,
    write_report,
)
from repro.analysis.conflicts import ConflictBreakdown, analyze_block_conflicts
from repro.analysis.timeline import render_timeline

__all__ = [
    "SweepPoint",
    "scaling_sweep_table",
    "bucket_by_ratio",
    "correlation",
    "throughput_tps",
    "format_table",
    "format_histogram",
    "format_series",
    "write_report",
    "ConflictBreakdown",
    "analyze_block_conflicts",
    "render_timeline",
]
