"""Conflict-source analysis — the §2.3/§3.1 empirical-study angle.

Garamvölgyi et al.'s study (which the paper builds on) found that "the
majority of data conflicts arise from counters (e.g., balances) and
storage".  This module classifies every conflicting key pair in a block
by its source so the claim can be checked on any workload:

* ``balance`` / ``nonce`` — account counters;
* ``storage`` — contract storage slots (SLOAD/SSTORE races);
* ``code`` — contract (re)deployment, essentially never in practice.

A *conflict edge* exists between transactions *i < j* for key *k* when
one of them writes *k* and the other reads or writes it.  The breakdown
counts edges per key kind; hot keys (most conflicted) are surfaced for
hotspot forensics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.chain.block import Block
from repro.state.access import StateKey

__all__ = ["ConflictBreakdown", "analyze_block_conflicts"]


@dataclass(frozen=True)
class ConflictBreakdown:
    """Per-source conflict statistics for one block."""

    total_edges: int
    edges_by_kind: Dict[str, int]
    hot_keys: Tuple[Tuple[StateKey, int], ...]  # (key, edge count), descending
    conflicting_tx_fraction: float

    def counter_fraction(self) -> float:
        """Share of conflict edges caused by account counters."""
        if self.total_edges == 0:
            return 0.0
        counters = self.edges_by_kind.get("balance", 0) + self.edges_by_kind.get(
            "nonce", 0
        )
        return counters / self.total_edges

    def storage_fraction(self) -> float:
        if self.total_edges == 0:
            return 0.0
        return self.edges_by_kind.get("storage", 0) / self.total_edges

    def rows(self, top: int = 5) -> List[dict]:
        """Table rows for the report renderer."""
        rows = [
            {
                "kind": kind,
                "edges": count,
                "share": f"{count / self.total_edges:.1%}" if self.total_edges else "0%",
            }
            for kind, count in sorted(
                self.edges_by_kind.items(), key=lambda kv: -kv[1]
            )
        ]
        return rows


def analyze_block_conflicts(block: Block) -> ConflictBreakdown:
    """Classify the conflict edges implied by a block's profile.

    Requires the block profile (the proposer-published rw-sets); raises
    ``ValueError`` for profile-less blocks.
    """
    if block.profile is None:
        raise ValueError("block has no profile to analyse")

    readers: Dict[StateKey, List[int]] = {}
    writers: Dict[StateKey, List[int]] = {}
    for index, entry in enumerate(block.profile.entries):
        for key in entry.rw.read_keys():
            readers.setdefault(key, []).append(index)
        for key in entry.rw.write_keys():
            writers.setdefault(key, []).append(index)

    edges_by_kind: Counter = Counter()
    per_key: Counter = Counter()
    conflicting_txs = set()

    for key, writer_list in writers.items():
        reader_list = readers.get(key, [])
        w = len(writer_list)
        r_only = len(set(reader_list) - set(writer_list))
        # write-write pairs + read-write pairs (reader not itself a writer)
        edge_count = w * (w - 1) // 2 + r_only * w
        if edge_count:
            edges_by_kind[key.kind] += edge_count
            per_key[key] += edge_count
            involved = set(writer_list)
            if r_only:
                involved |= set(reader_list)
            if len(involved) > 1:
                conflicting_txs |= involved

    n = len(block.transactions)
    return ConflictBreakdown(
        total_edges=sum(edges_by_kind.values()),
        edges_by_kind=dict(edges_by_kind),
        hot_keys=tuple(per_key.most_common(10)),
        conflicting_tx_fraction=(len(conflicting_txs) / n) if n else 0.0,
    )
