"""Measurement aggregation helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.simcore.stats import SpeedupSummary, summarize_speedups

__all__ = ["SweepPoint", "scaling_sweep_table", "bucket_by_ratio", "correlation", "throughput_tps"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point of a parameter sweep with its samples."""

    x: float  # the swept parameter (threads, blocks, intensity, ...)
    summary: SpeedupSummary

    @classmethod
    def from_samples(cls, x: float, samples: Iterable[float]) -> "SweepPoint":
        return cls(x=x, summary=summarize_speedups(samples))


def scaling_sweep_table(
    points: Sequence[SweepPoint], x_label: str = "threads"
) -> List[dict]:
    """Rows for a thread/block-count scaling table."""
    rows = []
    for p in points:
        rows.append(
            {
                x_label: int(p.x) if float(p.x).is_integer() else p.x,
                "mean": round(p.summary.mean, 2),
                "median": round(p.summary.median, 2),
                "p10": round(p.summary.p10, 2),
                "p90": round(p.summary.p90, 2),
                "max": round(p.summary.maximum, 2),
                "accelerated": f"{p.summary.accelerated_fraction:.1%}",
            }
        )
    return rows


def bucket_by_ratio(
    pairs: Iterable[Tuple[float, float]],
    edges: Sequence[float],
) -> List[dict]:
    """Bucket (ratio, speedup) pairs by ratio — the Fig. 8 aggregation.

    Returns one row per non-empty bucket with the mean speedup inside it.
    """
    buckets: Dict[int, List[float]] = {}
    counts: Dict[int, int] = {}
    for ratio, speedup in pairs:
        for i in range(len(edges) - 1):
            if edges[i] <= ratio < edges[i + 1] or (
                i == len(edges) - 2 and ratio >= edges[-1]
            ):
                buckets.setdefault(i, []).append(speedup)
                counts[i] = counts.get(i, 0) + 1
                break
        else:
            if ratio < edges[0]:
                buckets.setdefault(0, []).append(speedup)
                counts[0] = counts.get(0, 0) + 1
    rows = []
    for i in sorted(buckets):
        values = buckets[i]
        rows.append(
            {
                "ratio_bucket": f"[{edges[i]:.2f},{edges[i + 1]:.2f})",
                "blocks": len(values),
                "mean_speedup": round(sum(values) / len(values), 2),
                "min": round(min(values), 2),
                "max": round(max(values), 2),
            }
        )
    return rows


def throughput_tps(tx_count: int, makespan_us: float) -> float:
    """Transactions per second implied by a simulated makespan.

    Throughput is the paper's motivating metric (§1: "the number of
    transactions executed per second"); this converts a block's simulated
    execution window into the TPS the execution layer could sustain if it
    were the only bottleneck.
    """
    if makespan_us <= 0:
        raise ValueError("makespan must be positive")
    return tx_count / (makespan_us / 1_000_000.0)


def correlation(pairs: Iterable[Tuple[float, float]]) -> float:
    """Pearson correlation of (x, y) pairs (Fig. 8's anticorrelation check)."""
    data = list(pairs)
    n = len(data)
    if n < 2:
        raise ValueError("need at least two pairs")
    xs = [p[0] for p in data]
    ys = [p[1] for p in data]
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in data)
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / math.sqrt(vx * vy)
