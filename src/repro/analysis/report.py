"""Fixed-width text rendering of experiment outputs.

The harness prints the same rows/series the paper's figures plot; these
helpers keep every benchmark's output uniform and diffable (EXPERIMENTS.md
embeds them verbatim).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_histogram",
    "format_series",
    "format_failures",
    "write_report",
]


def format_table(rows: Sequence[Mapping], title: Optional[str] = None) -> str:
    """Render dict rows as an aligned text table (column order from row 0)."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).rjust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def format_histogram(
    values: Iterable[float],
    edges: Sequence[float],
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """ASCII histogram over half-open buckets (clamping like stats.histogram)."""
    from repro.simcore.stats import histogram

    counts = histogram(list(values), edges)
    peak = max(counts) if counts else 1
    lines = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        label = f"[{edges[i]:5.2f},{edges[i + 1]:5.2f})"
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{label} {str(count).rjust(5)} {bar}")
    return "\n".join(lines) + "\n"


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
) -> str:
    """Two-column series (the data behind a line plot)."""
    rows = [{x_label: x, y_label: round(y, 3)} for x, y in zip(xs, ys)]
    return format_table(rows, title=title)


def format_failures(stats, title: Optional[str] = None) -> str:
    """Render a run's typed failure counters as a table section.

    ``stats`` is a :class:`~repro.simcore.stats.RunStats` (whose
    ``failures`` dict maps ``FailureReason.value`` to a rejection count)
    or any mapping of reason -> count.  Robustness counters riding on the
    stats object (worker faults, retries, serial fallbacks) are appended
    so a report shows degradation next to outright rejection.
    """
    failures = stats if isinstance(stats, Mapping) else stats.failures
    total = sum(failures.values())
    rows: List[Mapping] = [
        {"reason": reason, "count": count, "share": f"{count / total:.0%}"}
        for reason, count in sorted(failures.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    rendered = format_table(rows, title=title or "failures by reason")
    if isinstance(stats, Mapping):
        return rendered
    extras = [
        ("worker_faults", stats.worker_faults),
        ("exec_retries", stats.exec_retries),
        ("serial_fallbacks", stats.serial_fallbacks),
    ]
    lines = [f"{name}: {value}" for name, value in extras if value]
    if lines:
        rendered += "\n".join(lines) + "\n"
    return rendered


def write_report(name: str, content: str, directory: Optional[str] = None) -> str:
    """Persist a benchmark's rendered output under ``benchmarks/results/``.

    Returns the path written.  The directory defaults to
    ``$REPRO_RESULTS_DIR`` or ``benchmarks/results`` relative to the cwd.
    """
    directory = directory or os.environ.get(
        "REPRO_RESULTS_DIR", os.path.join("benchmarks", "results")
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return path
