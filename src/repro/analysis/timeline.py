"""ASCII lane-occupancy timelines for simulated schedules.

Turns a :class:`~repro.simcore.lanes.LaneGroup` built with
``record_trace=True`` into a Gantt-style text chart — the fastest way to
*see* why a schedule has the makespan it has (one long component pinning
a lane, idle tails, context-switch gaps).
"""

from __future__ import annotations

from typing import List, Optional

from repro.simcore.lanes import LaneGroup

__all__ = ["render_timeline"]


def render_timeline(
    group: LaneGroup,
    *,
    width: int = 72,
    label_of=None,
) -> str:
    """Render each lane's recorded busy intervals as a text bar.

    ``#`` marks busy time, ``.`` idle; when ``label_of`` is given it maps
    a task tag to a single character used instead of ``#`` (labels longer
    than a cell are truncated to their first character).
    """
    if not group.record_trace:
        raise ValueError("LaneGroup must be built with record_trace=True")
    span = group.makespan
    lines: List[str] = []
    if span <= 0:
        return "(empty timeline)\n"
    scale = width / span

    for lane in group.lanes:
        cells = ["."] * width
        for start, end, tag in lane.trace:
            a = min(width - 1, int(start * scale))
            b = min(width, max(a + 1, int(end * scale)))
            ch = "#"
            if label_of is not None:
                label = str(label_of(tag)) if tag is not None else "#"
                ch = label[0] if label else "#"
            for i in range(a, b):
                cells[i] = ch
        busy_pct = lane.busy_time / span if span else 0.0
        lines.append(f"lane {lane.index:2d} |{''.join(cells)}| {busy_pct:4.0%}")

    lines.append(f"{'':8}0{' ' * (width - 10)}{span:9.1f}us")
    return "\n".join(lines) + "\n"
