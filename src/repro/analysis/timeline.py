"""ASCII lane-occupancy timelines for simulated schedules.

Turns a :class:`~repro.simcore.lanes.LaneGroup` built with
``record_trace=True`` into a Gantt-style text chart — the fastest way to
*see* why a schedule has the makespan it has (one long component pinning
a lane, idle tails, context-switch gaps).
"""

from __future__ import annotations

from typing import List

from repro.simcore.lanes import LaneGroup

__all__ = ["render_timeline"]


def render_timeline(
    group: LaneGroup,
    *,
    width: int = 72,
    label_of=None,
    tracer=None,
) -> str:
    """Render each lane's recorded busy intervals as a text bar.

    ``#`` marks busy time, ``.`` idle.  Two sources can paint the bars:

    * the lane's own ``record_trace`` intervals (default); ``label_of``
      maps a task tag to a single character used instead of ``#`` (labels
      longer than a cell are truncated to their first character);
    * a :class:`repro.obs.tracer.Tracer` the group emitted spans to
      (``LaneGroup(..., tracer=...)``), in which case each busy cell is
      labelled by the first character of the span's *name*.

    Both sources describe the same schedule, so the bars they paint are
    identical — only the labels differ.
    """
    if tracer is None and not group.record_trace:
        raise ValueError(
            "LaneGroup must be built with record_trace=True (or pass tracer=)"
        )
    span = group.makespan
    lines: List[str] = []
    if span <= 0:
        return "(empty timeline)\n"
    scale = width / span
    spans_by_id = {s.id: s for s in tracer.spans} if tracer is not None else {}

    for lane in group.lanes:
        if tracer is None:
            intervals = [
                (start, end, str(label_of(tag))[:1] if label_of and tag is not None else "#")
                for start, end, tag in lane.trace
            ]
        else:
            intervals = [
                (s.start, s.end, s.name[:1] or "#")
                for s in (spans_by_id.get(i) for i in lane.span_ids)
                if s is not None and s.end is not None
            ]
        cells = ["."] * width
        for start, end, label in intervals:
            a = min(width - 1, int(start * scale))
            b = min(width, max(a + 1, int(end * scale)))
            ch = label or "#"
            for i in range(a, b):
                cells[i] = ch
        busy_pct = lane.busy_time / span if span else 0.0
        lines.append(f"lane {lane.index:2d} |{''.join(cells)}| {busy_pct:4.0%}")

    lines.append(f"{'':8}0{' ' * (width - 10)}{span:9.1f}us")
    return "\n".join(lines) + "\n"
