"""Blocks, block profiles, receipts and the forked blockchain store.

The chain layer carries the artifacts the two execution contexts exchange
(paper §3.2): proposers seal a :class:`Block` whose header commits to the
post-state root, plus a :class:`BlockProfile` with per-transaction
read/write sets ("execution details ... in the block profile", §4.2);
validators re-execute and compare both (Algorithm 2).

:class:`Blockchain` stores competing blocks at the same height — the fork
situation that gives validators more work than proposers (§3.4) — and
tracks which non-canonical siblings become uncles.
"""

from repro.chain.block import (
    Block,
    BlockHeader,
    BlockProfile,
    Receipt,
    TxProfileEntry,
    transactions_root,
    receipts_root,
)
from repro.chain.blockchain import Blockchain, ChainError
from repro.chain.params import ChainParams, DEFAULT_CHAIN_PARAMS, ETHEREUM_POW_PARAMS

__all__ = [
    "Block",
    "BlockHeader",
    "BlockProfile",
    "Receipt",
    "TxProfileEntry",
    "transactions_root",
    "receipts_root",
    "Blockchain",
    "ChainError",
    "ChainParams",
    "DEFAULT_CHAIN_PARAMS",
    "ETHEREUM_POW_PARAMS",
]
