"""Block structures: headers, bodies, receipts and block profiles."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Tuple

from repro.common.hashing import Hash32, hash_of
from repro.common.rlp import rlp_encode
from repro.common.types import Address
from repro.evm.interpreter import Log
from repro.state.access import FrozenRWSet
from repro.state.trie import MPT
from repro.txpool.transaction import Transaction

__all__ = [
    "BlockHeader",
    "Block",
    "Receipt",
    "TxProfileEntry",
    "BlockProfile",
    "transactions_root",
    "receipts_root",
]


@dataclass(frozen=True)
class BlockHeader:
    """Header committing to parent, contents and post-state."""

    parent_hash: Hash32
    number: int
    state_root: Hash32
    transactions_root: Hash32
    receipts_root: Hash32
    gas_used: int
    gas_limit: int
    coinbase: Address
    timestamp: int
    proposer_id: str = ""  # which node proposed (fork bookkeeping)
    extra: bytes = b""
    #: 2048-bit logs bloom over every log the block's transactions emitted
    logs_bloom: bytes = b"\x00" * 256

    @cached_property
    def hash(self) -> Hash32:
        return hash_of(
            bytes(self.parent_hash),
            self.number,
            bytes(self.state_root),
            bytes(self.transactions_root),
            bytes(self.receipts_root),
            self.gas_used,
            self.gas_limit,
            bytes(self.coinbase),
            self.timestamp,
            self.proposer_id,
            self.extra,
            self.logs_bloom,
        )


@dataclass(frozen=True)
class Receipt:
    """Per-transaction outcome included in the block's receipt trie.

    Carries the transaction's logs (Ethereum receipts do), so the receipt
    root commits to event data and :meth:`Blockchain.get_logs` can serve
    queries from stored blocks."""

    tx_hash: Hash32
    success: bool
    gas_used: int
    cumulative_gas: int
    log_count: int
    logs: Tuple[Log, ...] = ()

    def encode(self) -> bytes:
        return rlp_encode(
            [
                bytes(self.tx_hash),
                1 if self.success else 0,
                self.gas_used,
                self.cumulative_gas,
                self.log_count,
                [
                    [
                        bytes(log.address),
                        [t.to_bytes(32, "big") for t in log.topics],
                        log.data,
                    ]
                    for log in self.logs
                ],
            ]
        )


@dataclass(frozen=True)
class TxProfileEntry:
    """One transaction's execution details published by the proposer."""

    tx_hash: Hash32
    rw: FrozenRWSet
    gas_used: int
    success: bool


@dataclass(frozen=True)
class BlockProfile:
    """The proposer's execution profile for a block (§4.2).

    Validators use it twice: the scheduler derives the dependency graph
    from the read/write footprints without pre-executing, and the applier
    checks re-executed rw-sets against it (§4.4)."""

    entries: Tuple[TxProfileEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def entry_for(self, tx_hash: Hash32) -> Optional[TxProfileEntry]:
        for entry in self.entries:
            if entry.tx_hash == tx_hash:
                return entry
        return None


def transactions_root(transactions: Sequence[Transaction]) -> Hash32:
    """Trie root over the block's transactions, keyed by index (yellow paper)."""
    trie = MPT()
    for index, tx in enumerate(transactions):
        trie = trie.set(rlp_encode(index), bytes(tx.hash))
    return trie.root_hash()


def receipts_root(receipts: Sequence[Receipt]) -> Hash32:
    trie = MPT()
    for index, receipt in enumerate(receipts):
        trie = trie.set(rlp_encode(index), receipt.encode())
    return trie.root_hash()


@dataclass(frozen=True)
class Block:
    """A sealed block: header, ordered transactions, receipts, profile.

    ``profile`` may be ``None`` for blocks from proposers that do not
    publish execution details; the validator then falls back to building
    the dependency graph by pre-execution (slower preparation phase)."""

    header: BlockHeader
    transactions: Tuple[Transaction, ...]
    receipts: Tuple[Receipt, ...] = ()
    profile: Optional[BlockProfile] = None
    uncles: Tuple[BlockHeader, ...] = ()

    @property
    def hash(self) -> Hash32:
        return self.header.hash

    @property
    def number(self) -> int:
        return self.header.number

    def __len__(self) -> int:
        return len(self.transactions)

    def validate_structure(self) -> None:
        """Internal consistency: tx root, receipt root, profile alignment."""
        if transactions_root(self.transactions) != self.header.transactions_root:
            raise ValueError("transactions root mismatch")
        if self.receipts and receipts_root(self.receipts) != self.header.receipts_root:
            raise ValueError("receipts root mismatch")
        if self.profile is not None and len(self.profile) != len(self.transactions):
            raise ValueError("profile entry count mismatch")
        if self.profile is not None:
            for tx, entry in zip(self.transactions, self.profile.entries):
                if tx.hash != entry.tx_hash:
                    raise ValueError("profile entry order mismatch")
