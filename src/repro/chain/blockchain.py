"""The block store: canonical chain, forks, uncles, per-block state.

Because snapshots share structure (immutable tries), the chain keeps the
post-state of *every* known block alive — canonical or not — which is what
the validator pipeline needs to execute same-height fork blocks
concurrently against their common parent state (paper §4.3, Figure 5).

Fork choice is longest-chain with first-seen tie-breaking (Ethereum PoW's
effective behaviour for equal difficulty).  Siblings displaced from the
canonical chain are tracked as uncle candidates (§3.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.hashing import Hash32
from repro.common.types import Address
from repro.chain.block import Block, BlockHeader, receipts_root, transactions_root
from repro.state.statedb import StateSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.backend import StorageBackend

__all__ = ["Blockchain", "ChainError"]

GENESIS_PARENT = Hash32(b"\x00" * 32)


class ChainError(Exception):
    """Structural chain violation (unknown parent, number gap, duplicate)."""


class Blockchain:
    """Stores blocks and their post-state snapshots; tracks the canonical head."""

    def __init__(
        self,
        genesis_state: StateSnapshot,
        *,
        store: Optional["StorageBackend"] = None,
    ) -> None:
        genesis_header = BlockHeader(
            parent_hash=GENESIS_PARENT,
            number=0,
            state_root=genesis_state.state_root(),
            transactions_root=transactions_root(()),
            receipts_root=receipts_root(()),
            gas_used=0,
            gas_limit=30_000_000,
            coinbase=Address(b"\x00" * 20),
            timestamp=0,
            proposer_id="genesis",
        )
        self._seed(Block(genesis_header, ()), genesis_state, store)

    def _seed(
        self,
        base: Block,
        base_state: StateSnapshot,
        store: Optional["StorageBackend"],
    ) -> None:
        """Initialise all indices with ``base`` as the oldest known block."""
        self.genesis = base
        self._blocks: Dict[Hash32, Block] = {base.hash: base}
        self._states: Dict[Hash32, StateSnapshot] = {base.hash: base_state}
        self._by_height: Dict[int, List[Hash32]] = {base.number: [base.hash]}
        # tx hash -> (block hash, index) for canonical-and-fork lookup
        self._tx_index: Dict[Hash32, List[tuple]] = {}
        self._arrival: Dict[Hash32, int] = {base.hash: 0}
        self._arrival_counter = 1
        self._head: Hash32 = base.hash
        #: base height of this view — 0 for full chains, the snapshot
        #: height for checkpoint-bootstrapped chains (history below it
        #: is durable on disk but not resident in memory)
        self.base_height: int = base.number
        self._store: Optional["StorageBackend"] = store

    @classmethod
    def from_checkpoint(
        cls,
        header: BlockHeader,
        state: StateSnapshot,
        *,
        store: Optional["StorageBackend"] = None,
    ) -> "Blockchain":
        """Bootstrap a chain view from a durable ``(header, state)`` pair.

        Used by :mod:`repro.store.recovery` when restarting from a
        snapshot taken at height > 0: the checkpoint block becomes the
        oldest resident block (``genesis`` here means *base of the
        in-memory view*, not height 0).  Queries below the checkpoint
        return ``None`` rather than walking off the resident window.
        """
        if state.state_root() != header.state_root:
            raise ChainError("checkpoint state does not match header root")
        self = cls.__new__(cls)
        self._seed(Block(header, ()), state, store)
        return self

    def attach_store(self, store: Optional["StorageBackend"]) -> None:
        """Set the storage backend notified on every future insertion."""
        self._store = store

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def head(self) -> Block:
        return self._blocks[self._head]

    @property
    def head_state(self) -> StateSnapshot:
        return self._states[self._head]

    def block(self, block_hash: Hash32) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def state_at(self, block_hash: Hash32) -> Optional[StateSnapshot]:
        return self._states.get(block_hash)

    def blocks_at_height(self, number: int) -> List[Block]:
        return [self._blocks[h] for h in self._by_height.get(number, [])]

    def height(self) -> int:
        return self.head.number

    def __contains__(self, block_hash: Hash32) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def canonical_chain(self) -> List[Block]:
        """Blocks from genesis to head, inclusive."""
        chain: List[Block] = []
        cursor: Optional[Block] = self.head
        while cursor is not None:
            chain.append(cursor)
            if cursor.header.parent_hash == GENESIS_PARENT and cursor.number == 0:
                break
            cursor = self._blocks.get(cursor.header.parent_hash)
        chain.reverse()
        return chain

    def canonical_hash_at(self, number: int) -> Optional[Hash32]:
        cursor: Optional[Block] = self.head
        if cursor is None or number > cursor.number:
            return None
        while cursor is not None and cursor.number > number:
            # .get: checkpoint-bootstrapped chains hold no blocks below
            # their base height
            cursor = self._blocks.get(cursor.header.parent_hash)
        return cursor.hash if cursor is not None else None

    def uncles_at(self, number: int) -> List[Block]:
        """Known same-height siblings of the canonical block (§3.4)."""
        canonical = self.canonical_hash_at(number)
        return [
            self._blocks[h]
            for h in self._by_height.get(number, [])
            if h != canonical
        ]

    def get_logs(
        self,
        *,
        address: Optional[object] = None,
        topic: Optional[int] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ):
        """Query logs on the canonical chain (eth_getLogs).

        Uses each header's logs bloom to skip blocks that definitely do
        not match — the standard light-scan path.  Returns
        ``(block_number, tx_index, log)`` tuples in chain order.
        """
        from repro.chain.bloom import Bloom

        if to_block is None:
            to_block = self.head.number
        matches = []
        for block in self.canonical_chain():
            number = block.number
            if number < from_block or number > to_block:
                continue
            if address is not None or topic is not None:
                bloom = Bloom.from_bytes(block.header.logs_bloom)
                if address is not None and not bloom.might_contain(bytes(address)):
                    continue
                if topic is not None and not bloom.might_contain(
                    topic.to_bytes(32, "big")
                ):
                    continue
            for tx_index, receipt in enumerate(block.receipts):
                for log in receipt.logs:
                    if address is not None and log.address != address:
                        continue
                    if topic is not None and topic not in log.topics:
                        continue
                    matches.append((number, tx_index, log))
        return matches

    def find_transaction(self, tx_hash: Hash32):
        """Locate a transaction on the *canonical* chain.

        Returns ``(block, index, receipt_or_None)`` or ``None`` if the
        transaction is unknown or only lives on non-canonical branches
        (the eth_getTransactionByHash contract).
        """
        locations = self._tx_index.get(tx_hash)
        if not locations:
            return None
        for block_hash, index in locations:
            block = self._blocks[block_hash]
            if self.canonical_hash_at(block.number) == block_hash:
                receipt = block.receipts[index] if block.receipts else None
                return block, index, receipt
        return None

    def uncle_count(self) -> int:
        return sum(
            len(hashes) - 1 for hashes in self._by_height.values() if len(hashes) > 1
        )

    # ------------------------------------------------------------------ #
    # insertion                                                          #
    # ------------------------------------------------------------------ #

    def add_block(self, block: Block, post_state: StateSnapshot) -> bool:
        """Insert a validated block with its post-state.

        Returns True if the block became the new canonical head.  The
        caller (a validator) is responsible for having *verified* the
        block — the chain checks only structural linkage and that the
        provided state matches the header's root.
        """
        if block.hash in self._blocks:
            raise ChainError(f"duplicate block {block.hash.hex()[:12]}")
        parent = self._blocks.get(block.header.parent_hash)
        if parent is None:
            raise ChainError("unknown parent")
        if block.number != parent.number + 1:
            raise ChainError(
                f"number gap: parent {parent.number}, block {block.number}"
            )
        if post_state.state_root() != block.header.state_root:
            raise ChainError("post-state root does not match header")

        self._blocks[block.hash] = block
        self._states[block.hash] = post_state
        self._by_height.setdefault(block.number, []).append(block.hash)
        for index, tx in enumerate(block.transactions):
            self._tx_index.setdefault(tx.hash, []).append((block.hash, index))
        self._arrival[block.hash] = self._arrival_counter
        self._arrival_counter += 1

        # fork choice: longest chain, earliest arrival breaks ties.
        # Persist before publishing: if the store raises (disk full, I/O
        # error) the head is unchanged, so disk never trails the
        # advertised canonical chain — the block stays resident as a
        # non-canonical sibling until the caller retries or aborts.
        became_head = block.number > self.head.number
        if self._store is not None:
            self._store.on_block(block, post_state, head=became_head)
        if became_head:
            self._head = block.hash
        return became_head
