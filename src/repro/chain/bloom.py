"""The 2048-bit logs bloom filter (yellow-paper M function).

Every block header commits to a bloom over the addresses and topics of
all logs its transactions emitted, letting clients skip blocks that
cannot contain events they care about.  Construction follows Ethereum:
for each input byte string, take ``keccak(data)`` and set three bits,
each indexed by 11 bits taken from byte pairs (0,1), (2,3) and (4,5) of
the hash.

The validator recomputes the bloom from its re-executed logs and rejects
blocks whose header bloom disagrees — one more channel a lying proposer
cannot slip through.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.hashing import keccak
from repro.evm.interpreter import Log

__all__ = ["Bloom", "bloom_from_logs"]

BLOOM_BITS = 2048
BLOOM_BYTES = BLOOM_BITS // 8


class Bloom:
    """A 2048-bit bloom filter over byte strings."""

    __slots__ = ("_bits",)

    def __init__(self, value: int = 0) -> None:
        if value < 0 or value >= 1 << BLOOM_BITS:
            raise ValueError("bloom value out of range")
        self._bits = value

    @staticmethod
    def _bit_indexes(data: bytes):
        digest = keccak(data)
        for i in (0, 2, 4):
            yield ((digest[i] & 0x07) << 8) | digest[i + 1]

    def add(self, data: bytes) -> None:
        for index in self._bit_indexes(data):
            self._bits |= 1 << index

    def might_contain(self, data: bytes) -> bool:
        """False means *definitely absent*; True means possibly present."""
        return all(self._bits & (1 << i) for i in self._bit_indexes(data))

    def add_log(self, log: Log) -> None:
        self.add(bytes(log.address))
        for topic in log.topics:
            self.add(topic.to_bytes(32, "big"))

    def union(self, other: "Bloom") -> "Bloom":
        return Bloom(self._bits | other._bits)

    @property
    def value(self) -> int:
        return self._bits

    def to_bytes(self) -> bytes:
        return self._bits.to_bytes(BLOOM_BYTES, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Bloom":
        if len(raw) != BLOOM_BYTES:
            raise ValueError(f"bloom must be {BLOOM_BYTES} bytes")
        return cls(int.from_bytes(raw, "big"))

    def __eq__(self, other) -> bool:
        return isinstance(other, Bloom) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def bit_count(self) -> int:
        return bin(self._bits).count("1")


def bloom_from_logs(logs: Iterable[Log]) -> Bloom:
    """Aggregate bloom over a sequence of logs (a block's logsBloom)."""
    bloom = Bloom()
    for log in logs:
        bloom.add_log(log)
    return bloom
