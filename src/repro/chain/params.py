"""Consensus parameters: rewards, uncle policy, block capacity.

Uncle blocks matter to BlockPilot's motivation (§3.4): they are rewarded
("uncle blocks can also get rewarded as uncle blocks provide a security
benefit"), which is why validators must process fork siblings efficiently
rather than discard them.  The reward schedule follows Ethereum PoW:

* the block proposer earns ``block_reward`` plus 1/32 of it per included
  uncle (the *nephew* reward);
* each uncle's coinbase earns ``(8 + uncle_height − block_height) / 8``
  of the block reward (so a height-7-generations-stale uncle earns 1/8).

The default ``block_reward`` is zero — the framework's correctness results
are reward-agnostic, and zero keeps fee-only accounting front and centre —
but the PoW schedule is fully implemented and tested; pass
``ETHEREUM_POW_PARAMS`` to both proposer and validator to enable it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChainParams", "DEFAULT_CHAIN_PARAMS", "ETHEREUM_POW_PARAMS"]

ETHER = 10**18


@dataclass(frozen=True)
class ChainParams:
    """Chain-wide consensus constants shared by proposers and validators.

    Both roles must hold identical parameters or state roots diverge —
    exactly like a real network's chain configuration.
    """

    block_reward: int = 0
    #: proposer's bonus per included uncle: block_reward / nephew_divisor
    nephew_reward_divisor: int = 32
    #: maximum uncles a block may embed (Ethereum: 2)
    max_uncles: int = 2
    #: how many generations back an uncle may reach (Ethereum: 6)
    max_uncle_depth: int = 6
    #: default block gas limit for sealing
    gas_limit: int = 30_000_000

    def nephew_reward(self, uncle_count: int) -> int:
        if self.block_reward == 0 or uncle_count == 0:
            return 0
        return (self.block_reward // self.nephew_reward_divisor) * uncle_count

    def uncle_reward(self, block_number: int, uncle_number: int) -> int:
        """Reward paid to an uncle's coinbase (Ethereum PoW formula)."""
        if self.block_reward == 0:
            return 0
        depth = block_number - uncle_number
        if depth < 1 or depth > self.max_uncle_depth + 1:
            return 0
        factor = 8 - depth
        if factor <= 0:
            return 0
        return self.block_reward * factor // 8

    def validate_uncle(self, block_number: int, uncle_number: int) -> bool:
        depth = block_number - uncle_number
        return 1 <= depth <= self.max_uncle_depth + 1


DEFAULT_CHAIN_PARAMS = ChainParams()

#: Ethereum PoW-era economics (post-Constantinople 2-ETH reward).
ETHEREUM_POW_PARAMS = ChainParams(block_reward=2 * ETHER)
