"""Concurrency conformance suite: oracles, fuzzer, and race reporting.

BlockPilot's correctness story rests on two claims the rest of the code
asserts only indirectly:

* the proposer's OCC-WSI commit order is **conflict-serializable**
  (Algorithm 1) — replaying commits serially in commit order reproduces
  the identical state;
* the validator's subgraph-parallel replay under the block profile is
  **equivalent to serial block-order execution** (Algorithm 2).

This package turns those claims into reusable, adversarially-exercised
machinery (the same shape as Block-STM's internal parallel-vs-sequential
consistency check):

* :mod:`repro.check.oracle` — the serializability oracle: builds the
  rw/ww/wr conflict graph from the versioned read/write sets every
  OCC-WSI run records and proves the committed order conflict-serializable
  by cycle detection.  Runs post-propose behind
  ``ProposerConfig(strict_checks=True)``.
* :mod:`repro.check.differential` — the differential oracle: re-executes
  a block serially from the parent snapshot and diffs state roots,
  receipts, gas and RunStats-visible outcomes.
* :mod:`repro.check.fuzzer` — a deterministic schedule fuzzer that drives
  the thread backend through permuted worker interleavings (via the yield
  points in :mod:`repro.exec.hooks`), shrinks failing interleavings to a
  minimal schedule, and serialises repro seeds to JSON.
* :mod:`repro.check.report` — typed :class:`FootprintViolation` findings
  from the guarded snapshots plus the ``repro.check.report`` summary.

CLI: ``python -m repro check [trace.json]`` runs both oracles over a
recorded (or freshly generated) workload; ``python -m repro fuzz`` runs
the schedule fuzzer (``make check-fuzz``).
"""

from repro.check.differential import (
    DiffFinding,
    DifferentialReport,
    diff_block,
    diff_proposal,
)
from repro.check.fuzzer import (
    ConformanceScenario,
    FuzzFailure,
    FuzzResult,
    FuzzSchedule,
    fuzz_conformance,
    load_schedule_json,
    shrink_schedule,
)
from repro.check.oracle import (
    ConflictEdge,
    ScheduleReport,
    ScheduleViolation,
    ScheduleViolationError,
    verify_commit_order,
    verify_schedule,
)
from repro.check.report import CheckLog, FootprintViolation

__all__ = [
    "ConflictEdge",
    "ScheduleReport",
    "ScheduleViolation",
    "ScheduleViolationError",
    "verify_schedule",
    "verify_commit_order",
    "DiffFinding",
    "DifferentialReport",
    "diff_block",
    "diff_proposal",
    "ConformanceScenario",
    "FuzzSchedule",
    "FuzzFailure",
    "FuzzResult",
    "fuzz_conformance",
    "shrink_schedule",
    "load_schedule_json",
    "CheckLog",
    "FootprintViolation",
]
