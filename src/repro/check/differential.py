"""Differential oracle: parallel execution vs the serial ground truth.

The strongest correctness statement BlockPilot can make is extensional:
whatever the proposer's OCC-WSI interleaving or the validator's component
schedule did, the sealed block must be *indistinguishable* from one
produced by executing its transactions serially in block order from the
parent snapshot.  This module re-derives that serial ground truth with a
fresh EVM and recording state, then diffs every observable artifact:

* the post-state root in the header,
* every receipt (success flag, gas, cumulative gas, log count),
* the block profile's per-transaction read/write sets and gas,
* total gas used,
* structural commitments (transaction root, receipt root, profile order).

:func:`diff_proposal` additionally audits the proposer's local artifacts —
the :class:`~repro.core.proposer.SealedProposal`'s post-state and the
:class:`~repro.simcore.stats.RunStats` bookkeeping — for internal
consistency with the block that shipped.

Findings are data, not exceptions: callers (tests, benchmarks, the
``python -m repro check`` CLI, the fuzzer) decide how to react.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.block import Block
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.core.proposer import SealedProposal, finalize_block_state
from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction
from repro.state.access import RecordingState
from repro.state.statedb import StateDB, StateSnapshot

__all__ = ["DiffFinding", "DifferentialReport", "diff_block", "diff_proposal"]


@dataclass(frozen=True)
class DiffFinding:
    """One observable divergence between the block and its serial replay."""

    kind: str
    #: Transaction index the finding is anchored to (-1 = block level).
    index: int
    detail: str

    def describe(self) -> str:
        where = f"tx[{self.index}]" if self.index >= 0 else "block"
        return f"{self.kind} @ {where}: {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome of one serial-replay diff."""

    ok: bool
    n_txs: int
    findings: List[DiffFinding] = field(default_factory=list)
    #: Root the serial replay produced (None if replay aborted early).
    serial_state_root: Optional[bytes] = None
    #: Proposer strategy behind the diffed artifact ("" when unknown) —
    #: named in summaries so a divergence points at its engine.
    strategy: str = ""

    def add(self, kind: str, index: int, detail: str) -> None:
        self.findings.append(DiffFinding(kind, index, detail))
        self.ok = False

    def summary(self) -> str:
        origin = f"[{self.strategy}] " if self.strategy else ""
        head = (
            f"{origin}differential: {'OK' if self.ok else 'DIVERGED'} — "
            f"{self.n_txs} txs, {len(self.findings)} findings"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f.describe() for f in self.findings])


def diff_block(
    block: Block,
    parent_state: StateSnapshot,
    *,
    evm: Optional[EVM] = None,
    params: ChainParams = DEFAULT_CHAIN_PARAMS,
) -> DifferentialReport:
    """Re-execute ``block`` serially from ``parent_state`` and diff.

    ``evm`` must be configured identically to the one that built the block
    (the default :class:`EVM` matches the default pipeline); ``params``
    must match the chain's reward schedule or the fee/reward finalization
    will diverge on the state root alone.
    """
    evm = evm or EVM()
    report = DifferentialReport(ok=True, n_txs=len(block.transactions))

    try:
        block.validate_structure()
    except ValueError as exc:
        report.add("structure", -1, str(exc))

    ctx = ExecutionContext(
        block_number=block.header.number,
        timestamp=block.header.timestamp,
        coinbase=block.header.coinbase,
        gas_limit=block.header.gas_limit,
    )

    db = StateDB(parent_state)
    total_fees = 0
    total_gas = 0
    cumulative = 0
    if len(block.receipts) != len(block.transactions):
        report.add(
            "receipt_count",
            -1,
            f"{len(block.receipts)} receipts for {len(block.transactions)} txs",
        )

    for index, tx in enumerate(block.transactions):
        rec = RecordingState(db)
        try:
            result = evm.apply_transaction(rec, tx, ctx)
        except InvalidTransaction as exc:
            # A sealed block must not contain a transaction the serial
            # validator rejects; everything after this point would replay
            # against the wrong state, so stop here.
            report.add("invalid_tx", index, f"serial replay rejected tx: {exc}")
            return report
        total_fees += result.fee
        total_gas += result.gas_used
        cumulative += result.gas_used

        if index < len(block.receipts):
            receipt = block.receipts[index]
            if receipt.success != result.success:
                report.add(
                    "receipt_success",
                    index,
                    f"receipt says success={receipt.success}, "
                    f"serial replay got {result.success}",
                )
            if receipt.gas_used != result.gas_used:
                report.add(
                    "receipt_gas",
                    index,
                    f"receipt gas {receipt.gas_used} != serial {result.gas_used}",
                )
            if receipt.cumulative_gas != cumulative:
                report.add(
                    "receipt_cumulative_gas",
                    index,
                    f"receipt cumulative {receipt.cumulative_gas} != "
                    f"serial {cumulative}",
                )
            if receipt.log_count != len(result.logs):
                report.add(
                    "receipt_logs",
                    index,
                    f"receipt logs {receipt.log_count} != serial {len(result.logs)}",
                )

        if block.profile is not None and index < len(block.profile.entries):
            entry = block.profile.entries[index]
            frozen = rec.rw.freeze()
            if entry.gas_used != result.gas_used:
                report.add(
                    "profile_gas",
                    index,
                    f"profile gas {entry.gas_used} != serial {result.gas_used}",
                )
            if entry.success != result.success:
                report.add(
                    "profile_success",
                    index,
                    f"profile success={entry.success}, serial={result.success}",
                )
            if entry.rw.read_keys() != frozen.read_keys():
                missing = entry.rw.read_keys() ^ frozen.read_keys()
                report.add(
                    "profile_reads",
                    index,
                    f"profile read set differs from serial replay "
                    f"({len(missing)} keys)",
                )
            if entry.rw.write_items() != frozen.write_items():
                report.add(
                    "profile_writes",
                    index,
                    "profile write set (keys or values) differs from serial replay",
                )

    if total_gas != block.header.gas_used:
        report.add(
            "gas_used",
            -1,
            f"header gas_used {block.header.gas_used} != serial {total_gas}",
        )

    serial_post = finalize_block_state(
        db.commit(),
        coinbase=block.header.coinbase,
        total_fees=total_fees,
        block_number=block.number,
        uncles=block.uncles,
        params=params,
    )
    serial_root = serial_post.state_root()
    report.serial_state_root = bytes(serial_root)
    if serial_root != block.header.state_root:
        report.add(
            "state_root",
            -1,
            f"header root {bytes(block.header.state_root).hex()[:16]}… != "
            f"serial root {bytes(serial_root).hex()[:16]}…",
        )
    return report


def diff_proposal(
    sealed: SealedProposal,
    parent_state: StateSnapshot,
    *,
    evm: Optional[EVM] = None,
    params: ChainParams = DEFAULT_CHAIN_PARAMS,
) -> DifferentialReport:
    """Diff a sealed proposal against serial replay *and* its own books.

    Everything :func:`diff_block` checks, plus the proposer-local
    artifacts a validator never sees: the retained post-state, the
    commit-version sequence, and the RunStats counters the observability
    layer exports.  An inconsistency here means the proposer's block is
    (perhaps) fine but its bookkeeping lies — the kind of silent drift a
    refactor of the drivers could introduce without failing any
    state-root test.
    """
    report = diff_block(sealed.block, parent_state, evm=evm, params=params)
    proposal = sealed.proposal
    report.strategy = getattr(proposal, "strategy", "")
    committed = proposal.committed

    if sealed.post_state.state_root() != sealed.block.header.state_root:
        report.add(
            "post_state",
            -1,
            "sealed post_state root differs from the shipped header root",
        )

    if len(committed) != len(sealed.block.transactions):
        report.add(
            "committed_count",
            -1,
            f"{len(committed)} committed txs vs "
            f"{len(sealed.block.transactions)} in block",
        )

    for position, c in enumerate(committed, start=1):
        if c.version != position:
            report.add(
                "commit_version",
                position - 1,
                f"committed version {c.version} at position {position}",
            )
        if c.snapshot_version >= c.version:
            report.add(
                "snapshot_version",
                position - 1,
                f"snapshot v{c.snapshot_version} not before commit v{c.version}",
            )

    stats = proposal.stats
    recorded = stats.extra.get("committed")
    if recorded is not None and recorded != len(committed):
        report.add(
            "stats_committed",
            -1,
            f"RunStats.extra['committed']={recorded} but {len(committed)} committed",
        )
    if stats.aborts > stats.tasks:
        report.add(
            "stats_aborts",
            -1,
            f"RunStats reports {stats.aborts} aborts out of {stats.tasks} executions",
        )
    dropped = stats.extra.get("invalid_dropped")
    if dropped is not None and dropped != proposal.invalid_dropped:
        report.add(
            "stats_invalid_dropped",
            -1,
            f"RunStats.extra['invalid_dropped']={dropped} but proposal "
            f"recorded {proposal.invalid_dropped}",
        )
    if proposal.gas_used != sealed.block.header.gas_used:
        report.add(
            "proposal_gas",
            -1,
            f"proposal gas {proposal.gas_used} != header {sealed.block.header.gas_used}",
        )
    return report
