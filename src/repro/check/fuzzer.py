"""Deterministic schedule fuzzer for the real-parallelism drivers.

The wave driver (proposing) and component driver (validating) are
deterministic *given their scheduling decisions*; the decisions themselves
are exactly where OS nondeterminism would enter on real hardware.  The
fuzzer explores that space through the yield points of
:mod:`repro.exec.hooks`: each :class:`FuzzSchedule` is a seeded, fully
recorded assignment of wave widths, commit orders, lane orders and
component orders — i.e. one reachable interleaving — and the conformance
property says **every** reachable interleaving must:

* produce a proposal whose commit order the serializability oracle proves
  conflict-serializable (:func:`repro.check.oracle.verify_commit_order`);
* seal to a block indistinguishable from serial block-order execution
  (:func:`repro.check.differential.diff_proposal`);
* validate cleanly under any validator schedule, with zero footprint
  violations on honest blocks;
* and make the *same accept/reject decision* as the serial reference
  validator on adversarial (lying-profile) blocks.

Failing schedules are **shrunk**: decisions are greedily reset to their
production defaults while the failure reproduces, leaving a minimal
explicit schedule naming only the load-bearing decisions.  Schedules
serialize to JSON so a CI failure is a one-file repro.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chain.block import Block, BlockProfile, TxProfileEntry
from repro.chain.blockchain import Blockchain
from repro.common.types import Address
from repro.core.occ_wsi import ProposerConfig
from repro.core.proposer import seal_block
from repro.core.strategies import STRATEGY_CHOICES, build_proposer
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.exec.backend import ThreadBackend
from repro.exec.hooks import ScheduleProbe
from repro.state.access import FrozenRWSet
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import Universe, UniverseConfig, build_universe

from repro.check.differential import diff_proposal
from repro.check.oracle import verify_commit_order, verify_schedule
from repro.check.report import CheckLog

__all__ = [
    "FuzzSchedule",
    "FuzzFailure",
    "FuzzResult",
    "ConformanceScenario",
    "forge_lying_profile_block",
    "run_schedule",
    "fuzz_conformance",
    "shrink_schedule",
    "save_failures",
    "load_schedule_json",
]


# --------------------------------------------------------------------- #
# schedules                                                             #
# --------------------------------------------------------------------- #


@dataclass
class FuzzSchedule:
    """One fully determined interleaving of the drivers' yield points.

    ``mode='seeded'`` derives each decision from ``seed`` on first ask and
    records it into ``decisions`` (so a failing run leaves a complete,
    seed-free transcript).  ``mode='explicit'`` replays only the recorded
    decisions — anything absent takes the production default, which is
    what makes shrinking-by-removal meaningful.
    """

    seed: int
    mode: str = "seeded"  # 'seeded' | 'explicit'
    decisions: Dict[str, Any] = field(default_factory=dict)

    def probe(self) -> "_FuzzProbe":
        return _FuzzProbe(self)

    def explicit(self) -> "FuzzSchedule":
        """Seed-free copy replaying exactly the recorded decisions."""
        return FuzzSchedule(self.seed, "explicit", dict(self.decisions))

    def to_json_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "mode": self.mode, "decisions": dict(self.decisions)}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FuzzSchedule":
        return cls(
            seed=int(data.get("seed", 0)),
            mode=str(data.get("mode", "explicit")),
            decisions=dict(data.get("decisions", {})),
        )


class _FuzzProbe(ScheduleProbe):
    """Schedule probe backed by a :class:`FuzzSchedule`.

    ``scope`` namespaces decision keys per driver invocation (the fuzzer
    sets it before each propose/validate call), so one schedule can steer
    several runs without key collisions.  Trivial decisions (singleton
    orders, full-width waves that match the derived value) are never
    recorded — they would only be shrinking noise.
    """

    def __init__(self, schedule: FuzzSchedule) -> None:
        self._schedule = schedule
        self.scope = ""

    def _key(self, name: str) -> str:
        return f"{self.scope}/{name}" if self.scope else name

    def _decide_width(self, name: str, max_width: int) -> int:
        s = self._schedule
        key = self._key(name)
        if key in s.decisions:
            return max(1, min(max_width, int(s.decisions[key])))
        if s.mode != "seeded" or max_width <= 1:
            return max_width
        width = random.Random(f"{s.seed}|{key}").randint(1, max_width)
        if width != max_width:
            s.decisions[key] = width
        return width

    def _decide_order(self, name: str, n: int) -> List[int]:
        s = self._schedule
        key = self._key(name)
        if key in s.decisions:
            return [int(i) for i in s.decisions[key]]
        identity = list(range(n))
        if s.mode != "seeded" or n <= 1:
            return identity
        order = list(identity)
        random.Random(f"{s.seed}|{key}").shuffle(order)
        if order != identity:
            s.decisions[key] = list(order)
        return order

    # -- yield points ---------------------------------------------------- #

    def wave_width(self, wave_index: int, max_width: int) -> int:
        return self._decide_width(f"wave_width:{wave_index}", max_width)

    def wave_commit_order(self, wave_index: int, n: int) -> List[int]:
        return self._decide_order(f"wave_commit:{wave_index}", n)

    def lane_order(self, n_lanes: int) -> List[int]:
        return self._decide_order("lane_order", n_lanes)

    def component_order(self, lane_index: int, n: int) -> List[int]:
        return self._decide_order(f"component_order:{lane_index}", n)

    def blockstm_wave_width(self, wave_index: int, max_width: int) -> int:
        return self._decide_width(f"blockstm_width:{wave_index}", max_width)

    def blockstm_exec_order(self, wave_index: int, n: int) -> List[int]:
        return self._decide_order(f"blockstm_exec:{wave_index}", n)


# --------------------------------------------------------------------- #
# scenarios                                                             #
# --------------------------------------------------------------------- #


def forge_lying_profile_block(
    universe: Universe, *, hidden_payment_index: int = 1
) -> Block:
    """Seal an honest block, then tamper its profile to hide a conflict.

    The block carries two payments into the same receiver plus a filler;
    the shipped profile strips every key of the shared receiver from one
    payment's rw-set.  An account-level dependency graph built from that
    profile splits the two conflicting payments into "disjoint" components
    — the exact byzantine input the footprint guards exist to catch.  The
    header stays honest (it commits to the true execution), so a serial
    validator accepts the block; only the *parallel partition* is poisoned.
    """
    receiver = universe.eoas[-1]
    senders = (universe.eoas[-2], universe.eoas[-3], universe.eoas[-4])
    txs = [
        Transaction(senders[0], receiver, 1_000, b"", 60_000, 10, 0, tag="pay"),
        Transaction(senders[1], receiver, 2_000, b"", 60_000, 10, 0, tag="pay"),
        Transaction(senders[2], universe.eoas[-5], 3_000, b"", 60_000, 10, 0, tag="pay"),
    ]
    from repro.network.node import ProposerNode

    chain = Blockchain(universe.genesis)
    sealed = ProposerNode("forge").build_block(chain.head.header, universe.genesis, txs)
    block = sealed.block
    assert block.profile is not None

    # locate the hidden_payment_index-th payment into the shared receiver
    # (block order is commit order, which may differ from submission order)
    target = None
    seen = 0
    for index, tx in enumerate(block.transactions):
        if tx.to == receiver:
            if seen == hidden_payment_index:
                target = index
                break
            seen += 1
    if target is None:  # pragma: no cover - forge workload is fixed
        raise AssertionError("forged block lost its shared-receiver payments")

    entries = list(block.profile.entries)
    honest = entries[target]
    lying_rw = FrozenRWSet(
        reads=tuple((k, v) for k, v in honest.rw.reads if k.address != receiver),
        writes=tuple((k, v) for k, v in honest.rw.writes if k.address != receiver),
    )
    entries[target] = TxProfileEntry(
        tx_hash=honest.tx_hash,
        rw=lying_rw,
        gas_used=honest.gas_used,
        success=honest.success,
    )
    return dataclasses.replace(block, profile=BlockProfile(entries=tuple(entries)))


@dataclass
class ConformanceScenario:
    """A workload plus the reference answers fuzzed runs are held to.

    One scenario instance is reused across every schedule of a fuzz
    session: the universe, transactions, and serial reference verdicts are
    computed once; only the drivers' scheduling decisions vary.
    """

    name: str
    universe: Universe
    txs: List[Transaction]
    lanes: int = 4
    workers: int = 2
    #: Proposer strategy the fuzzed propose leg runs
    #: (:data:`~repro.core.strategies.STRATEGY_CHOICES`).  Block-STM
    #: schedules flow through the collaborative scheduler's own yield
    #: points (``blockstm_width:*`` / ``blockstm_exec:*``).
    strategy: str = "occ-wsi"
    #: Blocks with poisoned profiles; validated with ``verify_profile=False``
    #: (the ablation under which only the footprint guards stand between a
    #: lying profile and a wrong merge).  The conformance property is that
    #: the fuzzed verdict always equals the serial reference verdict.
    adversarial_blocks: List[Block] = field(default_factory=list)

    _parent: Any = field(default=None, repr=False)
    _adversarial_ref: Optional[List[Tuple[bool, Optional[bytes]]]] = field(
        default=None, repr=False
    )

    @classmethod
    def hotspot(
        cls,
        n_txs: int = 18,
        seed: int = 7,
        *,
        lanes: int = 4,
        workers: int = 2,
        with_adversarial: bool = True,
        strategy: str = "occ-wsi",
    ) -> "ConformanceScenario":
        """The default fuzz target: a contended block over a small world.

        High hotspot intensity concentrates traffic on single contract
        instances, which maximises intra-wave conflicts (proposer aborts)
        and cross-component coupling pressure (validator partitions) — the
        regimes where a scheduling bug would actually show.
        """
        universe = build_universe(
            UniverseConfig(
                n_eoas=96,
                n_tokens=3,
                n_amms=2,
                n_nfts=1,
                n_airdrops=1,
                token_holder_fraction=0.9,
                seed=23,
            )
        )
        generator = BlockWorkloadGenerator(
            universe,
            WorkloadConfig(
                txs_per_block=n_txs,
                tx_count_jitter=0.0,
                hotspot_intensity=0.8,
                seed=seed,
            ),
        )
        if strategy not in STRATEGY_CHOICES:
            raise ValueError(f"unknown strategy {strategy!r}")
        scenario = cls(
            name="hotspot" if strategy == "occ-wsi" else f"hotspot[{strategy}]",
            universe=universe,
            txs=generator.generate_block_txs(),
            lanes=lanes,
            workers=workers,
            strategy=strategy,
        )
        if with_adversarial:
            scenario.adversarial_blocks.append(forge_lying_profile_block(universe))
        return scenario

    @classmethod
    def named(
        cls,
        scenario: str,
        n_txs: int = 18,
        seed: int = 7,
        *,
        lanes: int = 4,
        workers: int = 2,
        with_adversarial: bool = True,
        strategy: str = "occ-wsi",
    ) -> "ConformanceScenario":
        """A fuzz target drawn from the workload scenario registry.

        The compact variant of the named stream supplies the universe and
        one block of traffic, so every registered traffic shape (counter
        variants, bursts, MEV bundles, long tail, ...) runs under the same
        serializability + differential oracles as the default hotspot
        target — ``python -m repro --scenario mev-bundles fuzz``.
        """
        from repro.workload.scenarios import get_scenario

        if strategy not in STRATEGY_CHOICES:
            raise ValueError(f"unknown strategy {strategy!r}")
        stream = get_scenario(
            scenario, seed=seed, txs_per_block=n_txs, compact=True
        )
        label = scenario if strategy == "occ-wsi" else f"{scenario}[{strategy}]"
        out = cls(
            name=label,
            universe=stream.universe,
            txs=stream.generate_block_txs(),
            lanes=lanes,
            workers=workers,
            strategy=strategy,
        )
        if with_adversarial:
            out.adversarial_blocks.append(
                forge_lying_profile_block(stream.universe)
            )
        return out

    # -- cached reference artifacts -------------------------------------- #

    def parent_header(self):
        if self._parent is None:
            self._parent = Blockchain(self.universe.genesis).head.header
        return self._parent

    def ctx(self) -> ExecutionContext:
        parent = self.parent_header()
        return ExecutionContext(
            block_number=parent.number + 1,
            timestamp=parent.timestamp + 12,
            coinbase=Address(b"\xcc" * 20),
            gas_limit=30_000_000,
        )

    def adversarial_reference(self) -> List[Tuple[bool, Optional[bytes]]]:
        """Serial reference verdict per adversarial block: (accepted, root)."""
        if self._adversarial_ref is None:
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=self.lanes, verify_profile=False)
            )
            ref: List[Tuple[bool, Optional[bytes]]] = []
            for block in self.adversarial_blocks:
                verdict = validator.validate_block(block, self.universe.genesis)
                root = (
                    bytes(verdict.post_state.state_root())
                    if verdict.accepted and verdict.post_state is not None
                    else None
                )
                ref.append((verdict.accepted, root))
            self._adversarial_ref = ref
        return self._adversarial_ref


# --------------------------------------------------------------------- #
# executing one schedule                                                #
# --------------------------------------------------------------------- #


@dataclass
class FuzzFailure:
    """One schedule that broke the conformance property."""

    kind: str  # 'serializability' | 'differential' | 'schedule' | 'validator' | 'footprint' | 'divergence'
    detail: str
    schedule: FuzzSchedule
    shrunk: Optional[FuzzSchedule] = None

    def describe(self) -> str:
        lines = [f"[{self.kind}] {self.detail}"]
        if self.shrunk is not None:
            lines.append(
                f"  minimal schedule: {len(self.shrunk.decisions)} decision(s) "
                f"{sorted(self.shrunk.decisions)}"
            )
        return "\n".join(lines)


def run_schedule(
    scenario: ConformanceScenario, schedule: FuzzSchedule
) -> Optional[FuzzFailure]:
    """Run the full propose→oracle→seal→diff→validate chain once.

    Returns ``None`` when every conformance obligation holds, else the
    first :class:`FuzzFailure` (schedule attached, decisions recorded).
    """
    probe = schedule.probe()
    genesis = scenario.universe.genesis
    ctx = scenario.ctx()

    # -- propose under the fuzzed schedule -------------------------------- #
    pool = TxPool()
    pool.add_many(scenario.txs)
    probe.scope = "propose"
    with ThreadBackend(scenario.workers) as backend:
        proposer = build_proposer(
            ProposerConfig(lanes=scenario.lanes, strategy=scenario.strategy),
            backend=backend,
            probe=probe,
        )
        result = proposer.propose(genesis, pool, ctx)

    oracle_report = verify_commit_order(result)
    if not oracle_report.ok:
        return FuzzFailure("serializability", oracle_report.summary(), schedule)

    sealed = seal_block(
        result,
        scenario.parent_header(),
        coinbase=ctx.coinbase,
        timestamp=ctx.timestamp,
        gas_limit=ctx.gas_limit,
    )
    schedule_report = verify_schedule(sealed.block, strategy=scenario.strategy)
    if not schedule_report.ok:
        return FuzzFailure("schedule", schedule_report.summary(), schedule)
    diff_report = diff_proposal(sealed, genesis)
    if not diff_report.ok:
        return FuzzFailure("differential", diff_report.summary(), schedule)

    # -- validate the fuzzed block under a fuzzed validator schedule ------- #
    check_log = CheckLog()
    probe.scope = "validate"
    with ThreadBackend(scenario.workers) as backend:
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=scenario.lanes),
            backend=backend,
            check_log=check_log,
            probe=probe,
        )
        verdict = validator.validate_block(sealed.block, genesis)
    if not verdict.accepted:
        return FuzzFailure(
            "validator", f"honest block rejected: {verdict.reason}", schedule
        )
    if not check_log.clean:
        return FuzzFailure("footprint", check_log.summary(), schedule)

    # -- adversarial blocks: fuzzed verdict must equal serial verdict ------ #
    reference = scenario.adversarial_reference()
    for index, block in enumerate(scenario.adversarial_blocks):
        expect_accepted, expect_root = reference[index]
        probe.scope = f"adversarial:{index}"
        adv_log = CheckLog()  # violations *expected* here; not a failure
        with ThreadBackend(scenario.workers) as backend:
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=scenario.lanes, verify_profile=False),
                backend=backend,
                check_log=adv_log,
                probe=probe,
            )
            adv_verdict = validator.validate_block(block, genesis)
        if adv_verdict.accepted != expect_accepted:
            return FuzzFailure(
                "divergence",
                f"adversarial block {index}: fuzzed verdict "
                f"accepted={adv_verdict.accepted} ({adv_verdict.reason}) but "
                f"serial reference accepted={expect_accepted}",
                schedule,
            )
        if adv_verdict.accepted and adv_verdict.post_state is not None:
            root = bytes(adv_verdict.post_state.state_root())
            if root != expect_root:
                return FuzzFailure(
                    "divergence",
                    f"adversarial block {index}: state root differs from the "
                    f"serial reference",
                    schedule,
                )
    return None


# --------------------------------------------------------------------- #
# shrinking                                                             #
# --------------------------------------------------------------------- #


def shrink_schedule(
    schedule: FuzzSchedule,
    still_fails: Callable[[FuzzSchedule], bool],
    *,
    max_runs: int = 200,
) -> FuzzSchedule:
    """Greedily reset decisions to their production defaults.

    Works on the explicit form (missing key = default), removing one
    decision at a time and keeping the removal whenever the failure still
    reproduces, to a fixpoint.  The result names only the load-bearing
    decisions; an empty result means the failure reproduces under the
    production schedule itself.
    """
    current = schedule.explicit()
    runs = 0
    changed = True
    while changed and runs < max_runs:
        changed = False
        for key in sorted(current.decisions):
            trial = FuzzSchedule(
                current.seed,
                "explicit",
                {k: v for k, v in current.decisions.items() if k != key},
            )
            runs += 1
            if still_fails(trial):
                current = trial
                changed = True
            if runs >= max_runs:
                break
    return current


# --------------------------------------------------------------------- #
# the fuzz loop                                                         #
# --------------------------------------------------------------------- #


@dataclass
class FuzzResult:
    """Outcome of one fuzz session."""

    scenario: str
    schedules_run: int
    failures: List[FuzzFailure]
    elapsed_s: float
    #: Proposer strategy the session fuzzed (named in repro artifacts).
    strategy: str = "occ-wsi"

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        head = (
            f"fuzz[{self.scenario}]: {self.schedules_run} schedule(s) in "
            f"{self.elapsed_s:.1f}s — "
            f"{'all conformant' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f.describe() for f in self.failures])


def fuzz_conformance(
    scenario: ConformanceScenario,
    n_schedules: int = 50,
    *,
    seed: int = 0,
    budget_s: Optional[float] = None,
    shrink: bool = True,
    max_failures: int = 5,
) -> FuzzResult:
    """Explore ``n_schedules`` seeded interleavings (or until ``budget_s``).

    Every schedule is independent and reproducible from its recorded
    decisions; failures are shrunk in-session (while whatever broke the
    invariant — e.g. a monkeypatched guard — is still in effect) and
    capped at ``max_failures`` so a systematically broken build doesn't
    spend the whole budget re-proving one bug.
    """
    started = time.monotonic()
    failures: List[FuzzFailure] = []
    run = 0
    for index in range(n_schedules):
        if budget_s is not None and time.monotonic() - started > budget_s:
            break
        schedule = FuzzSchedule(seed=seed + index)
        failure = run_schedule(scenario, schedule)
        run += 1
        if failure is None:
            continue
        if shrink:
            kind = failure.kind

            def _still_fails(trial: FuzzSchedule) -> bool:
                repro = run_schedule(scenario, trial)
                return repro is not None and repro.kind == kind

            failure.shrunk = shrink_schedule(
                failure.schedule, _still_fails, max_runs=40
            )
        failures.append(failure)
        if len(failures) >= max_failures:
            break
    return FuzzResult(
        scenario=scenario.name,
        schedules_run=run,
        failures=failures,
        elapsed_s=time.monotonic() - started,
        strategy=scenario.strategy,
    )


# --------------------------------------------------------------------- #
# JSON repro artifacts                                                  #
# --------------------------------------------------------------------- #


def save_failures(result: FuzzResult, path: str) -> None:
    """Write a fuzz session's failing schedules as a JSON repro file."""
    payload = {
        "scenario": result.scenario,
        "strategy": result.strategy,
        "schedules_run": result.schedules_run,
        "elapsed_s": round(result.elapsed_s, 3),
        "failures": [
            {
                "kind": failure.kind,
                "detail": failure.detail,
                "schedule": failure.schedule.explicit().to_json_dict(),
                "shrunk": (
                    failure.shrunk.to_json_dict()
                    if failure.shrunk is not None
                    else None
                ),
            }
            for failure in result.failures
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_schedule_json(path: str) -> List[FuzzSchedule]:
    """Load schedules from a repro file (or a bare schedule dict).

    Accepts either the :func:`save_failures` format (returns the shrunk
    schedule when present, else the full one, per failure) or a single
    serialized :class:`FuzzSchedule`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "failures" in data:
        schedules: List[FuzzSchedule] = []
        for entry in data["failures"]:
            chosen = entry.get("shrunk") or entry.get("schedule")
            if chosen is not None:
                schedules.append(FuzzSchedule.from_json_dict(chosen))
        return schedules
    if isinstance(data, dict):
        return [FuzzSchedule.from_json_dict(data)]
    return [FuzzSchedule.from_json_dict(entry) for entry in data]
