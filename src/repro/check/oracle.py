"""Serializability oracle: prove a committed order conflict-serializable.

Every OCC-WSI run already records, per committed transaction, the snapshot
version its reads observed and the exact keys it wrote.  That is enough to
reconstruct the **conflict graph** at account+slot granularity (one node
per committed transaction, one edge per rw/ww/wr conflict, direction
derived from the versions actually observed) and check two things:

1. the graph is acyclic — some serial order is conflict-equivalent to the
   parallel execution (serializability proper); and
2. every edge points *forward* in commit order — the equivalent serial
   order is the commit order itself, which is the order the block ships
   and the order every validator replays (§3.3).

Reads are recorded at the transaction's **snapshot version** — the global
committed counter at execution time, not a per-key version.  A read at
snapshot ``s`` observed, for each key, the latest committed write at or
before ``s`` (or the base snapshot if none).  Two local invariants make
both properties checkable in one pass:

* **future read** — a transaction at position ``j`` may not observe a
  snapshot at or past its own commit (``s >= j``): a wr edge from a
  later writer would point backward.
* **stale read** — no writer of a read key may sit between the reader's
  snapshot and its commit (``s < p < j``): the reader missed ``p``'s
  write, so the rw anti-dependency ``j -> p`` and the commit-order wr
  claim ``p -> j`` form a 2-cycle.  This is exactly the check OCC-WSI's
  reserve table performs at commit time; here it is re-proven from the
  recorded sets, independently of the proposer's bookkeeping.

Violations carry a **cycle witness**: the minimal list of conflict edges
whose directions cannot be embedded in the commit order.

Two entry points:

* :func:`verify_schedule` — from a sealed :class:`~repro.chain.block.
  Block` and its profile (positions are versions); what validators and
  the ``python -m repro check`` CLI use.
* :func:`verify_commit_order` — from a live :class:`~repro.core.occ_wsi.
  ProposalResult`, additionally cross-checking the recorded write sets
  against the multi-version store's version index (catches driver bugs
  where the store and the rw bookkeeping disagree).  This is what
  ``ProposerConfig(strict_checks=True)`` runs post-propose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.state.access import StateKey

__all__ = [
    "ConflictEdge",
    "ScheduleViolation",
    "ScheduleReport",
    "ScheduleViolationError",
    "verify_schedule",
    "verify_commit_order",
]


def _key_str(key: StateKey) -> str:
    slot = f"[{key.slot}]" if key.slot is not None else ""
    return f"{key.kind}:{key.address.hex()[:8]}{slot}"


@dataclass(frozen=True)
class ConflictEdge:
    """One directed conflict between two committed positions (1-based).

    ``kind`` is the conflict class: ``wr`` (src wrote a key dst read),
    ``ww`` (both wrote it, src first), ``rw`` (src read a version older
    than dst's write — the anti-dependency).
    """

    src: int
    dst: int
    kind: str
    key: StateKey

    def describe(self) -> str:
        return f"tx{self.src} -{self.kind}-> tx{self.dst} on {_key_str(self.key)}"


@dataclass(frozen=True)
class ScheduleViolation:
    """One reason the committed order is not conflict-serializable."""

    kind: str  # 'future_read' | 'stale_read' | 'unwitnessed_read' | 'cycle' | 'store_mismatch' | 'missing_profile'
    tx: int  # 1-based position of the offending transaction (0 = block-level)
    key: Optional[StateKey]
    detail: str
    #: Minimal set of conflict edges that cannot all point forward in the
    #: claimed order (empty for non-cyclic bookkeeping violations).
    witness: Tuple[ConflictEdge, ...] = ()

    def describe(self) -> str:
        lines = [f"{self.kind} @ tx{self.tx}: {self.detail}"]
        lines.extend(f"  witness: {edge.describe()}" for edge in self.witness)
        return "\n".join(lines)


@dataclass
class ScheduleReport:
    """Outcome of one serializability check."""

    ok: bool
    n_txs: int
    #: All conflict edges derived from the recorded sets (forward edges
    #: included — useful for analysis/visualisation).
    edges: List[ConflictEdge] = field(default_factory=list)
    violations: List[ScheduleViolation] = field(default_factory=list)
    #: Proposer strategy that produced the schedule ("" when unknown) —
    #: carried into summaries so a violation names its engine.
    strategy: str = ""

    @property
    def cycle(self) -> Optional[Tuple[ConflictEdge, ...]]:
        """First cycle witness found, if any."""
        for violation in self.violations:
            if violation.witness:
                return violation.witness
        return None

    def edge_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"wr": 0, "ww": 0, "rw": 0}
        for edge in self.edges:
            counts[edge.kind] = counts.get(edge.kind, 0) + 1
        return counts

    def summary(self) -> str:
        counts = self.edge_counts()
        origin = f"[{self.strategy}] " if self.strategy else ""
        head = (
            f"{origin}serializability: {'OK' if self.ok else 'VIOLATED'} — "
            f"{self.n_txs} txs, edges wr={counts['wr']} ww={counts['ww']} "
            f"rw={counts['rw']}, violations={len(self.violations)}"
        )
        if self.ok:
            return head
        return "\n".join([head] + [v.describe() for v in self.violations])


class ScheduleViolationError(AssertionError):
    """Raised by ``strict_checks`` when a proposal fails the oracle.

    An ``AssertionError`` subclass on purpose: a failing oracle means the
    proposer's own bookkeeping is inconsistent — an internal invariant
    broke, not an input error.
    """

    def __init__(self, report: ScheduleReport) -> None:
        super().__init__(report.summary())
        self.report = report


# --------------------------------------------------------------------- #
# core: verify one sequence of (reads-with-versions, write-keys)         #
# --------------------------------------------------------------------- #

#: One committed entry: (reads as (key, observed_version) pairs, write keys).
_Entry = Tuple[Sequence[Tuple[StateKey, int]], Sequence[StateKey]]


def _check_entries(entries: Sequence[_Entry], *, semantics: str = "snapshot") -> ScheduleReport:
    """Check one committed sequence under the given read-version semantics.

    ``snapshot`` (OCC-WSI, two-phase): a read version is the **global
    committed counter** at execution time — any value below the reader's
    own position with no intervening writer is consistent.

    ``multiversion`` (Block-STM): a read version names the **exact
    writer** whose value the read observed (0 = base/committed prefix).
    All snapshot invariants still apply (a multi-version read resolves to
    the latest writer below the reader, which snapshot semantics accepts
    as "snapshot = that writer's position"), plus the *witness rule*: a
    non-zero read version must be an actual writer position of that key.
    A claimed version no writer occupies means the engine invented a
    dependency — undetectable under snapshot semantics, where versions
    between writers are legal.
    """
    n = len(entries)
    report = ScheduleReport(ok=True, n_txs=n)

    # writer index: key -> sorted 1-based positions that wrote it
    writers: Dict[StateKey, List[int]] = {}
    for position, (_, write_keys) in enumerate(entries, start=1):
        for key in write_keys:
            writers.setdefault(key, []).append(position)

    # ww edges: version order between consecutive writers of a key
    for key, positions in writers.items():
        for earlier, later in zip(positions, positions[1:]):
            report.edges.append(ConflictEdge(earlier, later, "ww", key))

    for j, (reads, _) in enumerate(entries, start=1):
        for key, snapshot in reads:
            key_writers = writers.get(key, ())

            # future read: observing your own or a later commit is
            # impossible under any interleaving of Algorithm 1
            if snapshot >= j:
                witness = (
                    ConflictEdge(j, snapshot, "rw", key),
                    ConflictEdge(snapshot, j, "wr", key),
                )
                report.violations.append(
                    ScheduleViolation(
                        "future_read",
                        j,
                        key,
                        f"read of {_key_str(key)} claims snapshot v{snapshot} "
                        f"at commit position {j}",
                        witness,
                    )
                )
                continue

            # witness rule (multiversion only): a non-zero read version
            # must name a position that actually wrote this key
            if semantics == "multiversion" and snapshot > 0 and snapshot not in key_writers:
                report.violations.append(
                    ScheduleViolation(
                        "unwitnessed_read",
                        j,
                        key,
                        f"tx{j} claims to have read {_key_str(key)} from "
                        f"v{snapshot}, but no committed transaction at that "
                        "position wrote the key",
                    )
                )
                continue

            # wr edge: the latest writer the reader could have observed
            # (snapshot versions are the global committed counter — a read
            # with no writer at or before it observed the base snapshot)
            observed = [p for p in key_writers if p <= snapshot]
            if observed:
                report.edges.append(ConflictEdge(max(observed), j, "wr", key))

            # stale read: a writer between snapshot and commit means the
            # reader missed a committed write => 2-cycle with commit order
            stale = [p for p in key_writers if snapshot < p < j]
            for p in stale:
                witness = (
                    ConflictEdge(p, j, "wr", key),
                    ConflictEdge(j, p, "rw", key),
                )
                report.violations.append(
                    ScheduleViolation(
                        "stale_read",
                        j,
                        key,
                        f"tx{j} read {_key_str(key)} at snapshot v{snapshot} "
                        f"but tx{p} wrote it before tx{j} committed",
                        witness,
                    )
                )
                report.edges.append(ConflictEdge(j, p, "rw", key))

            # forward anti-dependencies (reader before a later writer) are
            # consistent with commit order but part of the conflict graph
            for p in key_writers:
                if p > max(snapshot, j):
                    report.edges.append(ConflictEdge(j, p, "rw", key))

    cycle = _find_cycle(n, report.edges)
    if cycle is not None:
        report.violations.append(
            ScheduleViolation(
                "cycle",
                cycle[0].src,
                cycle[0].key,
                "conflict graph contains a cycle: "
                + " , ".join(edge.describe() for edge in cycle),
                cycle,
            )
        )

    report.ok = not report.violations
    return report


def _find_cycle(n: int, edges: Iterable[ConflictEdge]) -> Optional[Tuple[ConflictEdge, ...]]:
    """Iterative DFS cycle search; returns the edge path of the first cycle."""
    adjacency: Dict[int, List[ConflictEdge]] = {}
    for edge in edges:
        if edge.src != edge.dst:
            adjacency.setdefault(edge.src, []).append(edge)

    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in range(1, n + 1)}
    for root in range(1, n + 1):
        if color[root] != WHITE:
            continue
        # stack of (node, iterator over outgoing edges); path holds the
        # edge taken into each grey node so a back edge yields the cycle
        stack: List[Tuple[int, int]] = [(root, 0)]
        path: List[ConflictEdge] = []
        color[root] = GREY
        while stack:
            node, edge_index = stack[-1]
            outgoing = adjacency.get(node, [])
            if edge_index >= len(outgoing):
                stack.pop()
                color[node] = BLACK
                if path:
                    path.pop()
                continue
            stack[-1] = (node, edge_index + 1)
            edge = outgoing[edge_index]
            if color.get(edge.dst, BLACK) == GREY:
                # back edge: slice the path from the cycle entry point
                cycle = [edge]
                for prior in reversed(path):
                    cycle.append(prior)
                    if prior.src == edge.dst:
                        break
                return tuple(reversed(cycle))
            if color.get(edge.dst, BLACK) == WHITE:
                color[edge.dst] = GREY
                stack.append((edge.dst, 0))
                path.append(edge)
    return None


# --------------------------------------------------------------------- #
# public entry points                                                    #
# --------------------------------------------------------------------- #


def _semantics_for(strategy: str) -> str:
    """Read-version semantics a strategy's recorded schedules use."""
    return "multiversion" if strategy == "block-stm" else "snapshot"


def verify_schedule(block, profile=None, *, strategy: str = "") -> ScheduleReport:
    """Prove a sealed block's commit order conflict-serializable.

    ``block`` is a :class:`~repro.chain.block.Block`; ``profile`` defaults
    to ``block.profile``.  Positions in the block are the commit versions
    (1-based), and each profile entry's recorded read versions are the
    snapshot the proposer actually executed against — so a reordered or
    hand-forged block whose claimed snapshots cannot be embedded in the
    shipped order is rejected with a cycle witness.

    ``strategy`` names the proposer engine that built the block; passing
    ``"block-stm"`` switches the read versions to per-key multiversion
    semantics (every non-zero read version must be witnessed by an actual
    writer at that position).  Blocks do not carry their strategy, so
    callers that know it (the fuzzer, the check CLI) thread it through.
    """
    if profile is None:
        profile = block.profile
    if profile is None:
        report = ScheduleReport(ok=False, n_txs=len(block.transactions), strategy=strategy)
        report.violations.append(
            ScheduleViolation(
                "missing_profile", 0, None, "block carries no profile to verify"
            )
        )
        return report
    entries: List[_Entry] = [
        (tuple(entry.rw.reads), tuple(entry.rw.write_keys()))
        for entry in profile.entries
    ]
    report = _check_entries(entries, semantics=_semantics_for(strategy))
    report.strategy = strategy
    return report


def verify_commit_order(result) -> ScheduleReport:
    """Prove a live :class:`ProposalResult`'s commit order serializable.

    Beyond the schedule check, cross-validates the multi-version store's
    version index against the committed write sets: every version the
    store recorded for a key must correspond to that transaction's rw
    write set and vice versa.  A divergence means the proposing driver
    applied writes it never recorded (or recorded writes it never
    applied) — exactly the class of bug the conformance suite exists to
    catch.
    """
    strategy = getattr(result, "strategy", "")
    committed = result.committed
    entries: List[_Entry] = []
    for c in committed:
        reads = tuple((key, version) for key, version in c.rw.reads.items())
        entries.append((reads, tuple(c.rw.writes)))
    report = _check_entries(entries, semantics=_semantics_for(strategy))
    report.strategy = strategy

    # store cross-check: recorded rw writes <=> store version index
    expected: Dict[StateKey, List[int]] = {}
    for c in committed:
        for key in c.rw.writes:
            expected.setdefault(key, []).append(c.version)
    actual = result.store.key_versions()
    if expected != actual:
        drift = set(expected) ^ set(actual)
        sample = next(iter(drift), None)
        if sample is None:
            sample = next(
                (k for k in expected if expected[k] != actual.get(k)), None
            )
        report.violations.append(
            ScheduleViolation(
                "store_mismatch",
                0,
                sample,
                "multi-version store version index disagrees with recorded "
                f"write sets ({len(drift)} keys differ in presence)",
            )
        )
        report.ok = False
    return report
