"""Typed findings from the footprint race detector.

The component driver guards every worker task's state view: an access to
an account outside the component's profile-declared footprint means the
partition was wrong — either the proposer's profile lied or a scheduler
bug put conflicting transactions in "disjoint" components.  Production
behaviour on a miss is a silent, safe funnel (discard the parallel
attempt, fall back to the serial reference loop).  Safe, but silent:
a systematically lying profile would quietly cost the entire parallel
speedup and never fail a test.

A :class:`CheckLog` attached to a :class:`~repro.core.validator.
ParallelValidator` turns each miss into a typed :class:`FootprintViolation`
finding — which component, which transactions, which account, what the
declared footprint was — so the conformance suite (and operators reading
the ``repro.check.report`` summary) can distinguish "fell back because of
one odd transaction" from "the profile is garbage".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.types import Address

__all__ = ["FootprintViolation", "CheckLog"]


@dataclass(frozen=True)
class FootprintViolation:
    """One access outside a component's declared account footprint."""

    #: Hash (hex prefix) of the block whose validation tripped the guard.
    block: str
    #: Component index within the dependency-graph partition.
    component: int
    #: Transaction indices (block order, 0-based) the component contains.
    tx_indices: Tuple[int, ...]
    #: Account accessed outside the declared footprint.
    address: Address
    #: Size of the declared footprint the access escaped.
    declared: int

    def describe(self) -> str:
        return (
            f"block {self.block} component {self.component} "
            f"(txs {list(self.tx_indices)}) touched undeclared account "
            f"{self.address.hex()[:8]} (declared footprint: {self.declared} accounts)"
        )


@dataclass
class CheckLog:
    """Accumulates conformance findings across validation runs.

    One instance can observe many blocks; :meth:`reset` clears it between
    fuzzer schedules so each schedule's verdict is self-contained.
    """

    footprint_violations: List[FootprintViolation] = field(default_factory=list)

    def record_footprint(self, violation: FootprintViolation) -> None:
        self.footprint_violations.append(violation)

    def reset(self) -> None:
        self.footprint_violations.clear()

    @property
    def clean(self) -> bool:
        return not self.footprint_violations

    def by_block(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.footprint_violations:
            counts[violation.block] = counts.get(violation.block, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "footprint_violations": [
                {
                    "block": v.block,
                    "component": v.component,
                    "tx_indices": list(v.tx_indices),
                    "address": v.address.hex(),
                    "declared": v.declared,
                }
                for v in self.footprint_violations
            ],
        }

    def summary(self) -> str:
        if self.clean:
            return "repro.check.report: clean (0 footprint violations)"
        lines = [
            f"repro.check.report: {len(self.footprint_violations)} footprint "
            f"violation(s) across {len(self.by_block())} block(s)"
        ]
        lines.extend("  " + v.describe() for v in self.footprint_violations)
        return "\n".join(lines)
