"""Primitive chain types and encodings shared by every subsystem.

This package is dependency-free (standard library only) and provides:

* :mod:`repro.common.types` -- ``Address``, ``Hash32``, 256-bit integer
  helpers and the word-size constants the EVM operates on.
* :mod:`repro.common.hashing` -- the commitment hash used throughout the
  repo (SHA3-256 standing in for Keccak-256; see module docs).
* :mod:`repro.common.rlp` -- a complete RLP encoder/decoder compatible
  with Ethereum's wire encoding for nested byte-string/list structures.
"""

from repro.common.types import (
    Address,
    Hash32,
    MAX_U256,
    U256_MASK,
    WORD_BYTES,
    to_u256,
    u256_add,
    u256_sub,
    u256_mul,
    u256_div,
    u256_mod,
    u256_exp,
    signed_to_u256,
    u256_to_signed,
    to_word_bytes,
    word_from_bytes,
)
from repro.common.hashing import keccak, hash_of, EMPTY_HASH
from repro.common.rlp import rlp_encode, rlp_decode, RLPDecodeError

__all__ = [
    "Address",
    "Hash32",
    "MAX_U256",
    "U256_MASK",
    "WORD_BYTES",
    "to_u256",
    "u256_add",
    "u256_sub",
    "u256_mul",
    "u256_div",
    "u256_mod",
    "u256_exp",
    "signed_to_u256",
    "u256_to_signed",
    "to_word_bytes",
    "word_from_bytes",
    "keccak",
    "hash_of",
    "EMPTY_HASH",
    "rlp_encode",
    "rlp_decode",
    "RLPDecodeError",
]
