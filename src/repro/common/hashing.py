"""Commitment hashing for tries, blocks and transactions.

Ethereum uses Keccak-256 (the pre-standardisation SHA-3 candidate).  The
Python standard library ships only the finalised SHA3-256, which differs in
padding but is otherwise the same sponge with the same security and output
size.  Because this repository never needs to interoperate with real
Ethereum data — all blocks are generated locally — SHA3-256 is a faithful
stand-in: every property the system relies on (collision resistance,
determinism, 32-byte output, avalanche) holds identically.

``hash_of`` is a convenience that hashes heterogeneous values by a stable
canonical serialisation, used for transaction and block identifiers.
"""

from __future__ import annotations

import hashlib

from repro.common.types import Hash32

__all__ = ["keccak", "hash_of", "EMPTY_HASH"]


def keccak(data: bytes) -> Hash32:
    """Hash ``data`` to a 32-byte digest (SHA3-256 standing in for Keccak)."""
    return Hash32(hashlib.sha3_256(data).digest())


#: Digest of the empty byte string — used for empty code hashes.
EMPTY_HASH = keccak(b"")


def _canonical(value) -> bytes:
    """Serialise a value into an unambiguous byte string for hashing.

    Supports ``bytes``/``bytearray``, ``str`` (UTF-8), ``int`` (minimal
    big-endian with sign tag) and ``tuple``/``list`` (length-prefixed
    concatenation).  Each branch emits a distinct type tag so values of
    different types can never collide.
    """
    if isinstance(value, (bytes, bytearray)):
        return b"B" + len(value).to_bytes(8, "big") + bytes(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, bool):
        return b"O" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        sign = b"-" if value < 0 else b"+"
        mag = abs(value)
        raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
        return b"I" + sign + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, (tuple, list)):
        parts = [_canonical(v) for v in value]
        body = b"".join(parts)
        return b"L" + len(parts).to_bytes(8, "big") + body
    if value is None:
        return b"N"
    raise TypeError(f"hash_of cannot canonicalise {type(value).__name__}")


def hash_of(*values) -> Hash32:
    """Hash an arbitrary tuple of primitive values canonically."""
    return keccak(_canonical(tuple(values)))
