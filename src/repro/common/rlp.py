"""Recursive Length Prefix (RLP) encoding and decoding.

RLP is Ethereum's canonical serialisation for nested structures of byte
strings.  The implementation follows the yellow paper exactly:

* a single byte in ``[0x00, 0x7f]`` is its own encoding;
* a string of 0-55 bytes is ``0x80+len`` followed by the string;
* a longer string is ``0xb7+len(len)`` then the big-endian length then the
  string;
* lists use ``0xc0``/``0xf7`` analogously over the concatenated encodings
  of their items.

Integers are encoded big-endian with no leading zeros (zero encodes as the
empty string), matching Ethereum's convention.  The decoder is strict: it
rejects non-minimal length prefixes and trailing garbage, which the tests
exercise via round-trip properties.
"""

from __future__ import annotations

from typing import Union

RLPItem = Union[bytes, int, str, list, tuple]

__all__ = ["rlp_encode", "rlp_decode", "RLPDecodeError"]


class RLPDecodeError(ValueError):
    """Raised when a byte string is not valid canonical RLP."""


def _encode_int(value: int) -> bytes:
    if value < 0:
        raise ValueError("RLP cannot encode negative integers")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    raw = _encode_int(length)
    return bytes([offset + 55 + len(raw)]) + raw


def rlp_encode(item: RLPItem) -> bytes:
    """Encode bytes / int / str / nested lists into canonical RLP."""
    if isinstance(item, (bytes, bytearray)):
        data = bytes(item)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, bool):
        raise TypeError("RLP does not define a boolean encoding")
    if isinstance(item, int):
        return rlp_encode(_encode_int(item))
    if isinstance(item, str):
        return rlp_encode(item.encode("utf-8"))
    if isinstance(item, (list, tuple)):
        body = b"".join(rlp_encode(sub) for sub in item)
        return _encode_length(len(body), 0xC0) + body
    raise TypeError(f"cannot RLP-encode {type(item).__name__}")


def _decode_at(data: bytes, pos: int):
    """Decode one item starting at ``pos``; return ``(item, next_pos)``."""
    if pos >= len(data):
        raise RLPDecodeError("unexpected end of input")
    prefix = data[pos]
    if prefix < 0x80:  # single byte
        return bytes([prefix]), pos + 1
    if prefix <= 0xB7:  # short string
        length = prefix - 0x80
        end = pos + 1 + length
        if end > len(data):
            raise RLPDecodeError("string runs past end of input")
        payload = data[pos + 1 : end]
        if length == 1 and payload[0] < 0x80:
            raise RLPDecodeError("non-canonical single-byte encoding")
        return payload, end
    if prefix <= 0xBF:  # long string
        len_of_len = prefix - 0xB7
        if pos + 1 + len_of_len > len(data):
            raise RLPDecodeError("length field runs past end of input")
        len_bytes = data[pos + 1 : pos + 1 + len_of_len]
        if len_bytes[0] == 0:
            raise RLPDecodeError("length has leading zero byte")
        length = int.from_bytes(len_bytes, "big")
        if length < 56:
            raise RLPDecodeError("long form used for short string")
        end = pos + 1 + len_of_len + length
        if end > len(data):
            raise RLPDecodeError("string runs past end of input")
        return data[pos + 1 + len_of_len : end], end
    if prefix <= 0xF7:  # short list
        length = prefix - 0xC0
        end = pos + 1 + length
        if end > len(data):
            raise RLPDecodeError("list runs past end of input")
        return _decode_list(data, pos + 1, end), end
    # long list
    len_of_len = prefix - 0xF7
    if pos + 1 + len_of_len > len(data):
        raise RLPDecodeError("length field runs past end of input")
    len_bytes = data[pos + 1 : pos + 1 + len_of_len]
    if len_bytes[0] == 0:
        raise RLPDecodeError("length has leading zero byte")
    length = int.from_bytes(len_bytes, "big")
    if length < 56:
        raise RLPDecodeError("long form used for short list")
    end = pos + 1 + len_of_len + length
    if end > len(data):
        raise RLPDecodeError("list runs past end of input")
    return _decode_list(data, pos + 1 + len_of_len, end), end


def _decode_list(data: bytes, start: int, end: int) -> list:
    items = []
    pos = start
    while pos < end:
        item, pos = _decode_at(data, pos)
        items.append(item)
    if pos != end:
        raise RLPDecodeError("list payload length mismatch")
    return items


def rlp_decode(data: bytes):
    """Decode canonical RLP into nested lists of ``bytes``.

    Raises :class:`RLPDecodeError` on any malformed or non-canonical input,
    including trailing bytes after the first item.
    """
    item, pos = _decode_at(bytes(data), 0)
    if pos != len(data):
        raise RLPDecodeError(f"{len(data) - pos} trailing bytes after RLP item")
    return item
