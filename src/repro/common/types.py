"""Core value types: addresses, 32-byte hashes and 256-bit word arithmetic.

The EVM is a 256-bit word machine.  Rather than wrapping every value in a
class (which would be ruinously slow in pure Python), words travel through
the interpreter as plain ``int`` restricted to ``[0, 2**256)``; the helpers
here implement the wrapping arithmetic and the signed/unsigned views the
opcode handlers need.

``Address`` and ``Hash32`` are thin ``bytes`` subclasses that enforce their
length on construction, so malformed identifiers fail fast at the boundary
instead of corrupting tries or read/write sets deep inside the system.
"""

from __future__ import annotations

WORD_BYTES = 32
ADDRESS_BYTES = 20
U256_BITS = 256
U256_MASK = (1 << U256_BITS) - 1
MAX_U256 = U256_MASK
_SIGN_BIT = 1 << (U256_BITS - 1)


class Address(bytes):
    """A 20-byte account identifier.

    Construct from raw bytes (must be exactly 20), or via
    :meth:`from_int` / :meth:`from_hex` for convenience.
    """

    __slots__ = ()

    def __new__(cls, value: bytes) -> "Address":
        if len(value) != ADDRESS_BYTES:
            raise ValueError(
                f"Address must be {ADDRESS_BYTES} bytes, got {len(value)}"
            )
        return super().__new__(cls, value)

    @classmethod
    def from_int(cls, value: int) -> "Address":
        """Build an address from an integer (low 160 bits)."""
        if value < 0:
            raise ValueError("Address integers must be non-negative")
        return cls(value.to_bytes(ADDRESS_BYTES, "big"))

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        """Parse a ``0x``-prefixed or bare 40-hex-character address."""
        if text.startswith(("0x", "0X")):
            text = text[2:]
        return cls(bytes.fromhex(text))

    def to_int(self) -> int:
        return int.from_bytes(self, "big")

    def hex0x(self) -> str:
        return "0x" + self.hex()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Address({self.hex0x()})"


class Hash32(bytes):
    """A 32-byte digest (state roots, block hashes, tx hashes)."""

    __slots__ = ()

    def __new__(cls, value: bytes) -> "Hash32":
        if len(value) != WORD_BYTES:
            raise ValueError(f"Hash32 must be {WORD_BYTES} bytes, got {len(value)}")
        return super().__new__(cls, value)

    @classmethod
    def from_hex(cls, text: str) -> "Hash32":
        if text.startswith(("0x", "0X")):
            text = text[2:]
        return cls(bytes.fromhex(text))

    def hex0x(self) -> str:
        return "0x" + self.hex()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hash32({self.hex0x()})"


def to_u256(value: int) -> int:
    """Reduce an arbitrary Python int into the unsigned 256-bit ring."""
    return value & U256_MASK


def u256_add(a: int, b: int) -> int:
    return (a + b) & U256_MASK


def u256_sub(a: int, b: int) -> int:
    return (a - b) & U256_MASK


def u256_mul(a: int, b: int) -> int:
    return (a * b) & U256_MASK


def u256_div(a: int, b: int) -> int:
    """EVM DIV: division by zero yields zero (no trap)."""
    return 0 if b == 0 else a // b


def u256_mod(a: int, b: int) -> int:
    """EVM MOD: modulo zero yields zero (no trap)."""
    return 0 if b == 0 else a % b


def u256_exp(base: int, exponent: int) -> int:
    """Wrapping exponentiation, as the EXP opcode defines it."""
    return pow(base, exponent, 1 << U256_BITS)


def signed_to_u256(value: int) -> int:
    """Encode a Python int in two's-complement 256-bit form."""
    return value & U256_MASK


def u256_to_signed(value: int) -> int:
    """Decode a 256-bit word as a two's-complement signed integer."""
    value &= U256_MASK
    return value - (1 << U256_BITS) if value & _SIGN_BIT else value


def to_word_bytes(value: int) -> bytes:
    """Serialize a u256 as a 32-byte big-endian word."""
    return (value & U256_MASK).to_bytes(WORD_BYTES, "big")


def word_from_bytes(data: bytes) -> int:
    """Read up to 32 bytes as a big-endian word (short input is left-padded)."""
    if len(data) > WORD_BYTES:
        raise ValueError(f"word too long: {len(data)} bytes")
    return int.from_bytes(data, "big")
