"""BlockPilot core: the proposer-validator parallel execution framework.

This package implements the paper's contribution proper:

* :mod:`repro.core.occ_wsi` -- Algorithm 1: the proposer's optimistic
  Write-Snapshot-Isolation execution that produces a serializable packing
  order, with aborted transactions returned to the pool.
* :mod:`repro.core.proposer` -- block sealing: receipts, tries, state
  root, and the block profile (per-tx read/write sets) for validators.
* :mod:`repro.core.depgraph` -- account-level transaction dependency
  graph; conflicting transactions land in the same subgraph (§4.3).
* :mod:`repro.core.scheduler` -- gas-weighted assignment of subgraphs to
  worker threads (LPT), plus the ablation policies.
* :mod:`repro.core.applier` -- Algorithm 2: rw-set verification against
  the block profile and world-state/root checks.
* :mod:`repro.core.validator` -- single-block parallel validation with
  the four-phase timing model.
* :mod:`repro.core.pipeline` -- the multi-block validator pipeline:
  same-height blocks overlap fully, child validation waits for parent.
* :mod:`repro.core.baselines` -- serial (geth-like) execution and the
  two-phase speculative OCC comparator [Saraph & Herlihy].
* :mod:`repro.core.blockstm` -- the Block-STM proposer strategy:
  multi-version memory with ESTIMATE markers, suspend-on-read dependency
  discovery, and cooperative re-validation [Gelashvili et al.].
* :mod:`repro.core.strategies` -- the proposer strategy registry
  (``occ-wsi`` | ``two-phase`` | ``block-stm``) and the round-based
  two-phase proposer engine.
"""

from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.scheduler import SchedulePlan, schedule_components, SCHEDULER_POLICIES
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig, ProposalResult
from repro.core.blockstm import BlockSTMProposer
from repro.core.strategies import STRATEGY_CHOICES, TwoPhaseProposer, build_proposer
from repro.core.proposer import seal_block, finalize_fees, SealedProposal
from repro.core.applier import Applier, ProfileMismatch, ValidationOutcome
from repro.core.validator import ParallelValidator, ValidatorConfig, ValidationResult
from repro.core.pipeline import ValidatorPipeline, PipelineConfig, PipelineResult
from repro.core.baselines import (
    SerialExecutor,
    SerialResult,
    TwoPhaseOCCExecutor,
    TwoPhaseOCCResult,
)

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "SchedulePlan",
    "schedule_components",
    "SCHEDULER_POLICIES",
    "OCCWSIProposer",
    "BlockSTMProposer",
    "TwoPhaseProposer",
    "build_proposer",
    "STRATEGY_CHOICES",
    "ProposerConfig",
    "ProposalResult",
    "seal_block",
    "finalize_fees",
    "SealedProposal",
    "Applier",
    "ProfileMismatch",
    "ValidationOutcome",
    "ParallelValidator",
    "ValidatorConfig",
    "ValidationResult",
    "ValidatorPipeline",
    "PipelineConfig",
    "PipelineResult",
    "SerialExecutor",
    "SerialResult",
    "TwoPhaseOCCExecutor",
    "TwoPhaseOCCResult",
]
