"""The applier: Algorithm 2's read/write-set and state verification.

"The applier collects read-write sets from workers, checks them against
the block profile, and authenticates them.  Once all read and write sets
in the block profile are verified, the applier confirms the world state
aligns with the expected one" (§4.4).

The checks are exact:

* the re-executed **read key set** must equal the profile's (versions are
  context-relative and not compared);
* the re-executed **write set** must match key-for-key *and value-for-
  value* — a proposer cannot claim writes it did not perform nor hide
  writes it did;
* per-transaction gas and success flag must match the profile;
* after all transactions, the recomputed state root must equal the
  header's, and recomputed receipts must hash to the header's receipt
  root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chain.block import Block, Receipt, TxProfileEntry, receipts_root
from repro.chain.bloom import bloom_from_logs
from repro.evm.interpreter import TxResult
from repro.state.access import ReadWriteSet
from repro.state.statedb import StateSnapshot

__all__ = ["ProfileMismatch", "ValidationOutcome", "Applier"]


class ProfileMismatch(Exception):
    """Re-executed transaction disagrees with the block profile."""

    def __init__(self, tx_index: int, reason: str) -> None:
        super().__init__(f"tx {tx_index}: {reason}")
        self.tx_index = tx_index
        self.reason = reason


@dataclass(frozen=True)
class ValidationOutcome:
    """Applier verdict for a whole block."""

    accepted: bool
    reason: Optional[str] = None
    failed_tx: Optional[int] = None


class Applier:
    """Verifies execution results against the proposer's claims."""

    def verify_tx(
        self,
        index: int,
        entry: TxProfileEntry,
        rw: ReadWriteSet,
        result: TxResult,
    ) -> None:
        """Check one re-executed transaction against its profile entry.

        Raises :class:`ProfileMismatch` on the first disagreement.
        """
        if result.gas_used != entry.gas_used:
            raise ProfileMismatch(
                index,
                f"gas mismatch: executed {result.gas_used}, profile {entry.gas_used}",
            )
        if result.success != entry.success:
            raise ProfileMismatch(
                index,
                f"status mismatch: executed {result.success}, "
                f"profile {entry.success}",
            )
        expected_reads = entry.rw.read_keys()
        actual_reads = frozenset(rw.reads)
        if actual_reads != expected_reads:
            missing = expected_reads - actual_reads
            extra = actual_reads - expected_reads
            raise ProfileMismatch(
                index,
                f"read set mismatch: missing {len(missing)}, extra {len(extra)}",
            )
        expected_writes = dict(entry.rw.write_items())
        if dict(rw.writes) != expected_writes:
            raise ProfileMismatch(index, "write set mismatch")

    def verify_block(
        self,
        block: Block,
        computed_state: StateSnapshot,
        computed_receipts: Sequence[Receipt],
        total_gas: int,
        computed_logs=None,
    ) -> ValidationOutcome:
        """Final block-level checks after all transactions verified."""
        if computed_logs is not None:
            bloom = bloom_from_logs(computed_logs).to_bytes()
            if bloom != block.header.logs_bloom:
                return ValidationOutcome(False, "logs bloom mismatch")
        if total_gas != block.header.gas_used:
            return ValidationOutcome(
                False,
                f"block gas mismatch: executed {total_gas}, "
                f"header {block.header.gas_used}",
            )
        if receipts_root(computed_receipts) != block.header.receipts_root:
            return ValidationOutcome(False, "receipts root mismatch")
        if computed_state.state_root() != block.header.state_root:
            return ValidationOutcome(False, "state root mismatch")
        return ValidationOutcome(True)
