"""The applier: Algorithm 2's read/write-set and state verification.

"The applier collects read-write sets from workers, checks them against
the block profile, and authenticates them.  Once all read and write sets
in the block profile are verified, the applier confirms the world state
aligns with the expected one" (§4.4).

The checks are exact:

* the re-executed **read key set** must equal the profile's (versions are
  context-relative and not compared);
* the re-executed **write set** must match key-for-key *and value-for-
  value* — a proposer cannot claim writes it did not perform nor hide
  writes it did;
* per-transaction gas and success flag must match the profile;
* after all transactions, the recomputed state root must equal the
  header's, and recomputed receipts must hash to the header's receipt
  root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chain.block import Block, Receipt, TxProfileEntry, receipts_root
from repro.chain.bloom import bloom_from_logs
from repro.evm.interpreter import TxResult
from repro.faults.errors import FailureReason, ValidationFailure
from repro.state.access import ReadWriteSet
from repro.state.statedb import StateSnapshot

__all__ = ["ProfileMismatch", "ValidationOutcome", "Applier"]


class ProfileMismatch(Exception):
    """Re-executed transaction disagrees with the block profile.

    ``code`` classifies the disagreement (read set, write set, or the
    gas/status claims) so callers can build a typed
    :class:`~repro.faults.errors.ValidationFailure` from it.
    """

    def __init__(
        self,
        tx_index: int,
        reason: str,
        code: FailureReason = FailureReason.PROFILE_GAS_MISMATCH,
    ) -> None:
        super().__init__(f"tx {tx_index}: {reason}")
        self.tx_index = tx_index
        self.reason = reason
        self.code = code

    def failure(self) -> ValidationFailure:
        return ValidationFailure(self.code, tx_index=self.tx_index, detail=self.reason)


@dataclass(frozen=True)
class ValidationOutcome:
    """Applier verdict for a whole block."""

    accepted: bool
    reason: Optional[str] = None
    failed_tx: Optional[int] = None
    failure: Optional[ValidationFailure] = None


class Applier:
    """Verifies execution results against the proposer's claims."""

    def verify_tx(
        self,
        index: int,
        entry: TxProfileEntry,
        rw: ReadWriteSet,
        result: TxResult,
    ) -> None:
        """Check one re-executed transaction against its profile entry.

        Raises :class:`ProfileMismatch` on the first disagreement.
        """
        if result.gas_used != entry.gas_used:
            raise ProfileMismatch(
                index,
                f"gas mismatch: executed {result.gas_used}, profile {entry.gas_used}",
                code=FailureReason.PROFILE_GAS_MISMATCH,
            )
        if result.success != entry.success:
            raise ProfileMismatch(
                index,
                f"status mismatch: executed {result.success}, "
                f"profile {entry.success}",
                code=FailureReason.PROFILE_GAS_MISMATCH,
            )
        expected_reads = entry.rw.read_keys()
        actual_reads = frozenset(rw.reads)
        if actual_reads != expected_reads:
            missing = expected_reads - actual_reads
            extra = actual_reads - expected_reads
            raise ProfileMismatch(
                index,
                f"read set mismatch: missing {len(missing)}, extra {len(extra)}",
                code=FailureReason.PROFILE_READ_MISMATCH,
            )
        expected_writes = dict(entry.rw.write_items())
        if dict(rw.writes) != expected_writes:
            raise ProfileMismatch(
                index, "write set mismatch", code=FailureReason.PROFILE_WRITE_MISMATCH
            )

    def verify_block(
        self,
        block: Block,
        computed_state: StateSnapshot,
        computed_receipts: Sequence[Receipt],
        total_gas: int,
        computed_logs=None,
    ) -> ValidationOutcome:
        """Final block-level checks after all transactions verified."""

        def failed(reason: str, code: FailureReason) -> ValidationOutcome:
            return ValidationOutcome(
                False, reason, failure=ValidationFailure(code, detail=reason)
            )

        if computed_logs is not None:
            bloom = bloom_from_logs(computed_logs).to_bytes()
            if bloom != block.header.logs_bloom:
                return failed("logs bloom mismatch", FailureReason.RECEIPT_MISMATCH)
        if total_gas != block.header.gas_used:
            return failed(
                f"block gas mismatch: executed {total_gas}, "
                f"header {block.header.gas_used}",
                FailureReason.RECEIPT_MISMATCH,
            )
        if receipts_root(computed_receipts) != block.header.receipts_root:
            return failed("receipts root mismatch", FailureReason.RECEIPT_MISMATCH)
        if computed_state.state_root() != block.header.state_root:
            return failed("state root mismatch", FailureReason.STATE_ROOT_MISMATCH)
        return ValidationOutcome(True)
