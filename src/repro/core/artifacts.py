"""Reusable preparation-phase artifacts (profile footprints, graphs, plans).

The validator derives the same objects from a block's profile in several
places: ``validate_block`` builds footprints → dependency graph → schedule
for the timing simulation, and the real-core path in
:mod:`repro.exec.validating` rebuilds the identical graph (plus a plan for
the backend's worker count) to partition components.  DiPETrans makes the
case that the dependency-analysis artifact is worth computing once and
shipping around; this module is that artifact.

:class:`BlockArtifacts` bundles everything derivable from one block profile
at one conflict granularity.  Schedules are memoized per
``(lanes, policy, seed)`` — the graph is lane-count independent, plans are
not.  :class:`ArtifactCache` keys artifacts by block hash so the pipeline
computes them once per block no matter how many phases (or backends) ask,
and **invalidates on fork-sibling divergence**: once a sibling commits at a
height, the losing blocks' artifacts are dead weight and are dropped.

Everything here is wall-clock optimisation only.  The simulated cost model
still charges ``schedule_per_tx × n`` for every preparation phase —
caching changes what the host CPU does, never the simulated timeline, so
all traces and benchmark figures stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.chain.block import Block, BlockProfile
from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.scheduler import SchedulePlan, schedule_components

__all__ = [
    "BlockArtifacts",
    "ArtifactCache",
    "profile_footprints",
    "artifacts_for",
]

#: An account-level footprint is a frozenset of addresses; key-level, of
#: StateKeys.  Downstream consumers only ever union/intersect them.
Footprint = FrozenSet[Any]


def profile_footprints(
    profile: BlockProfile, granularity: str
) -> Tuple[Footprint, ...]:
    """Per-transaction conflict footprints from a block profile.

    ``"account"`` is the paper's granularity (§4.3); ``"key"`` is the
    ablation.  Mirrors the inline derivation ``validate_block`` used to do.
    """
    if granularity == "account":
        return tuple(e.rw.touched_addresses() for e in profile.entries)
    if granularity == "key":
        return tuple(
            frozenset(e.rw.read_keys()) | frozenset(e.rw.write_keys())
            for e in profile.entries
        )
    raise ValueError(f"unknown conflict granularity {granularity!r}")


class BlockArtifacts:
    """Everything derivable from one block profile at one granularity."""

    __slots__ = (
        "footprints",
        "gas_estimates",
        "graph",
        "_plans",
        "_comp_fps",
        "_comp_gas",
    )

    def __init__(self, profile: BlockProfile, granularity: str) -> None:
        self.footprints = profile_footprints(profile, granularity)
        self.gas_estimates: Tuple[int, ...] = tuple(
            e.gas_used for e in profile.entries
        )
        self.graph: DependencyGraph = build_dependency_graph(
            self.footprints, self.gas_estimates
        )
        # (lanes, policy, seed, metrics-attached) -> plan.  The metrics flag
        # keeps scheduler histogram observations identical to the uncached
        # code path (a metrics-less consumer never swallows an observing one).
        self._plans: Dict[Tuple[int, str, int, bool], SchedulePlan] = {}
        self._comp_fps: Optional[Tuple[Footprint, ...]] = None
        self._comp_gas: Optional[Tuple[int, ...]] = None

    def plan_for(
        self, lanes: int, policy: str, seed: int, metrics: Any = None
    ) -> SchedulePlan:
        """Schedule for ``lanes`` worker threads (memoized).

        ``schedule_components`` is deterministic in ``(graph, lanes,
        policy, seed)``, so the memo can never change a plan — only skip
        recomputing it.
        """
        key = (lanes, policy, seed, metrics is not None)
        plan = self._plans.get(key)
        if plan is None:
            plan = schedule_components(
                self.graph, lanes, policy, seed, metrics=metrics
            )
            self._plans[key] = plan
        return plan

    def component_footprints(self) -> Tuple[Footprint, ...]:
        """Union of member footprints per dependency-graph component."""
        fps = self._comp_fps
        if fps is None:
            footprints = self.footprints
            fps = tuple(
                frozenset().union(*(footprints[i] for i in component))
                for component in self.graph.components
            )
            self._comp_fps = fps
        return fps

    def component_gas(self) -> Tuple[int, ...]:
        """Profile-gas total per dependency-graph component (memoized).

        This is the weight the distributed coordinator's LPT bin-packing
        balances across followers — components whose members burned more
        gas take proportionally longer to re-execute.
        """
        gas = self._comp_gas
        if gas is None:
            estimates = self.gas_estimates
            gas = tuple(
                sum(estimates[i] for i in component)
                for component in self.graph.components
            )
            self._comp_gas = gas
        return gas


def artifacts_for(
    block: Block,
    granularity: str,
    cache: Optional["ArtifactCache"] = None,
) -> Optional[BlockArtifacts]:
    """Component-extraction entry point: artifacts for one block.

    Consults ``cache`` when given (sharing derivations with the pipeline's
    other phases), otherwise derives standalone.  Returns ``None`` exactly
    when the cache would: profile-less blocks and profiles whose entry
    count mismatches the transaction list.
    """
    if cache is not None:
        return cache.get(block, granularity)
    profile = block.profile
    if profile is None or len(profile.entries) != len(block.transactions):
        return None
    return BlockArtifacts(profile, granularity)


class ArtifactCache:
    """Bounded per-block artifact store with fork-divergence invalidation.

    Keys are ``(block hash, granularity)``; block hashes commit to the
    profile, so a cached entry can never go stale — entries are dropped
    only for *relevance* (losing fork siblings, LRU pressure), never for
    correctness.  ``metrics`` (optional
    :class:`~repro.obs.metrics.MetricsRegistry`) observes hits, misses,
    evictions and invalidations under ``artifacts.*``.
    """

    def __init__(self, maxsize: int = 128, metrics: Any = None) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.metrics = metrics
        self._entries: Dict[Tuple[bytes, str], BlockArtifacts] = {}
        self._heights: Dict[bytes, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter("artifacts", name).inc(amount)

    def get(self, block: Block, granularity: str) -> Optional[BlockArtifacts]:
        """Artifacts for ``block``, computing on first request.

        Returns ``None`` for profile-less blocks (the validator's
        pre-execution fallback owns those) and for profiles whose entry
        count mismatches the transactions (malformed; the caller rejects).
        """
        profile = block.profile
        if profile is None or len(profile.entries) != len(block.transactions):
            return None
        key = (bytes(block.hash), granularity)
        entries = self._entries
        art = entries.pop(key, None)
        if art is not None:
            entries[key] = art  # LRU re-insert
            self.hits += 1
            self._count("hits")
            return art
        self.misses += 1
        self._count("misses")
        art = BlockArtifacts(profile, granularity)
        if len(entries) >= self.maxsize:
            oldest = next(iter(entries))
            del entries[oldest]
            self.evictions += 1
            self._count("evictions")
        entries[key] = art
        self._heights[key[0]] = block.number
        return art

    def invalidate(self, block_hash: bytes) -> int:
        """Drop every granularity's artifacts for one block."""
        block_key = bytes(block_hash)
        dead = [k for k in self._entries if k[0] == block_key]
        for k in dead:
            del self._entries[k]
        self._heights.pop(block_key, None)
        if dead:
            self.invalidations += len(dead)
            self._count("invalidations", len(dead))
        return len(dead)

    def invalidate_siblings(self, height: int, keep: bytes) -> int:
        """Fork divergence: a block committed at ``height``; drop the rest.

        Cached artifacts for losing siblings at the same height can never
        be consulted again (the pipeline abandons or has finished them), so
        holding them only squeezes live entries out of the LRU.
        """
        keep_key = bytes(keep)
        losers = [
            h
            for h, block_height in self._heights.items()
            if block_height == height and h != keep_key
        ]
        dropped = 0
        for block_hash in losers:
            dropped += self.invalidate(block_hash)
        return dropped

    def clear(self) -> None:
        self._entries.clear()
        self._heights.clear()
