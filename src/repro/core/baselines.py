"""Baseline executors the paper compares against.

* :class:`SerialExecutor` — geth-style serial processing, the denominator
  of every speedup figure.  One lane, block order, apply-as-you-go.
* :class:`TwoPhaseOCCExecutor` — the "OCC" comparator of Fig. 7(a),
  after Saraph & Herlihy [27]: phase one speculatively executes all
  transactions in parallel against the block-start snapshot; any
  transaction whose key-level footprint collides with another's write set
  is discarded and re-executed **serially** in phase two.  Under hotspot
  contention most of the block lands in phase two, which is why BlockPilot
  (serial chains *scheduled* across lanes) beats it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.block import Block
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.core.proposer import finalize_block_state
from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction, TxResult
from repro.simcore.costmodel import CostModel
from repro.simcore.lanes import LaneGroup
from repro.state.access import ReadWriteSet, RecordingState
from repro.state.statedb import StateDB, StateSnapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = [
    "SerialResult",
    "SerialExecutor",
    "TwoPhaseOCCResult",
    "TwoPhaseOCCExecutor",
]


def _ctx_from_header(block: Block) -> ExecutionContext:
    """Execution context implied by a sealed block's header."""
    return ExecutionContext(
        block_number=block.header.number,
        timestamp=block.header.timestamp,
        coinbase=block.header.coinbase,
        gas_limit=block.header.gas_limit,
    )


@dataclass
class SerialResult:
    """Outcome of a serial run (block validation or block building)."""

    post_state: StateSnapshot
    tx_results: List[TxResult]
    tx_costs: List[float]
    total_time: float
    total_fees: int
    packed: List[Transaction] = field(default_factory=list)
    invalid_dropped: int = 0

    @property
    def gas_used(self) -> int:
        return sum(r.gas_used for r in self.tx_results)


class SerialExecutor:
    """Geth-like serial execution: one thread, block order."""

    def __init__(
        self,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        params: ChainParams = DEFAULT_CHAIN_PARAMS,
    ) -> None:
        self.evm = evm or EVM()
        self.cost_model = cost_model or CostModel()
        self.params = params

    def execute_block(
        self, block: Block, parent_state: StateSnapshot, ctx: Optional[ExecutionContext] = None
    ) -> SerialResult:
        """Process a received block serially (the validator baseline).

        Raises :class:`InvalidTransaction` if the block contains one — a
        serial validator would reject such a block outright.
        """
        if ctx is None:
            ctx = _ctx_from_header(block)
        model = self.cost_model
        db = StateDB(parent_state)
        tx_results: List[TxResult] = []
        tx_costs: List[float] = []
        total_fees = 0
        time = 0.0
        for tx in block.transactions:
            result = self.evm.apply_transaction(db, tx, ctx)
            tx_results.append(result)
            cost = model.tx_cost(result.trace)
            tx_costs.append(cost)
            time += cost + model.applier_per_tx
            total_fees += result.fee
        time += model.block_epilogue + model.block_commit
        post_state = finalize_block_state(
            db.commit(),
            coinbase=block.header.coinbase,
            total_fees=total_fees,
            block_number=block.number,
            uncles=block.uncles,
            params=self.params,
        )
        return SerialResult(
            post_state=post_state,
            tx_results=tx_results,
            tx_costs=tx_costs,
            total_time=time,
            total_fees=total_fees,
            packed=list(block.transactions),
        )

    def propose_serial(
        self,
        base: StateSnapshot,
        pool: TxPool,
        ctx: ExecutionContext,
        *,
        gas_limit: int = 30_000_000,
        max_txs: Optional[int] = None,
    ) -> SerialResult:
        """Serial block building (the proposer baseline of Fig. 6).

        Pops the best-priced ready transaction, executes, commits, repeats
        until the gas limit; each commit pays the same ``commit_overhead``
        the parallel proposer's critical section does.
        """
        model = self.cost_model
        db = StateDB(base)
        tx_results: List[TxResult] = []
        tx_costs: List[float] = []
        packed: List[Transaction] = []
        total_fees = 0
        invalid = 0
        cur_gas = 0
        time = 0.0
        while cur_gas < gas_limit and (max_txs is None or len(packed) < max_txs):
            tx = pool.pop_best()
            if tx is None:
                break
            rec = RecordingState(db)
            try:
                result = self.evm.apply_transaction(rec, tx, ctx)
            except InvalidTransaction:
                pool.drop(tx)
                invalid += 1
                time += model.tx_overhead
                continue
            cost = model.tx_cost(result.trace)
            time += cost + model.commit_overhead
            tx_results.append(result)
            tx_costs.append(cost)
            packed.append(tx)
            cur_gas += result.gas_used
            total_fees += result.fee
            pool.mark_packed(tx)
        post_state = db.commit()
        return SerialResult(
            post_state=post_state,
            tx_results=tx_results,
            tx_costs=tx_costs,
            total_time=time,
            total_fees=total_fees,
            packed=packed,
            invalid_dropped=invalid,
        )


@dataclass
class TwoPhaseOCCResult:
    """Outcome of the two-phase speculative OCC validator run."""

    post_state: StateSnapshot
    total_time: float
    phase1_time: float
    phase2_time: float
    conflicted: List[int]  # tx indices re-executed serially
    tx_results: List[TxResult]
    serial_time: float

    @property
    def speedup(self) -> float:
        return self.serial_time / self.total_time if self.total_time > 0 else 1.0

    @property
    def conflict_fraction(self) -> float:
        n = len(self.tx_results)
        return len(self.conflicted) / n if n else 0.0


class TwoPhaseOCCExecutor:
    """Saraph & Herlihy's speculative two-phase scheduler [27]."""

    def __init__(
        self,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        lanes: int = 16,
        params: ChainParams = DEFAULT_CHAIN_PARAMS,
    ) -> None:
        self.evm = evm or EVM()
        self.cost_model = cost_model or CostModel()
        self.lanes = lanes
        self.params = params

    def execute_block(
        self, block: Block, parent_state: StateSnapshot, ctx: Optional[ExecutionContext] = None
    ) -> TwoPhaseOCCResult:
        if ctx is None:
            ctx = _ctx_from_header(block)
        model = self.cost_model
        n = len(block.transactions)

        # ---- phase 1: speculative execution against the parent snapshot --- #
        spec_rw: List[Optional[ReadWriteSet]] = [None] * n
        spec_cost: List[float] = [0.0] * n
        spec_invalid: List[bool] = [False] * n
        for index, tx in enumerate(block.transactions):
            scratch = StateDB(parent_state)
            rec = RecordingState(scratch)
            try:
                result = self.evm.apply_transaction(rec, tx, ctx)
            except InvalidTransaction:
                # e.g. second tx of a sender: nonce depends on the first —
                # inherently serial, goes to phase 2
                spec_invalid[index] = True
                spec_cost[index] = model.tx_overhead
                continue
            spec_rw[index] = rec.rw
            spec_cost[index] = model.tx_cost(result.trace)

        # conflict detection: key-level footprint collisions
        conflicted = set(i for i in range(n) if spec_invalid[i])
        for i in range(n):
            if spec_rw[i] is None:
                continue
            for j in range(i + 1, n):
                if spec_rw[j] is None:
                    continue  # already conflicted via spec_invalid
                if spec_rw[i].conflicts_with(spec_rw[j]):
                    conflicted.add(i)
                    conflicted.add(j)

        # phase-1 timing: txs spread over lanes, LPT by speculative cost
        group = LaneGroup(self.lanes)
        for index in sorted(range(n), key=lambda i: (-spec_cost[i], i)):
            group.run_on_earliest(spec_cost[index])
        phase1 = group.makespan

        # ---- real execution, block order (ground-truth state) -------------- #
        db = StateDB(parent_state)
        tx_results: List[TxResult] = []
        real_costs: List[float] = []
        total_fees = 0
        for tx in block.transactions:
            result = self.evm.apply_transaction(db, tx, ctx)
            tx_results.append(result)
            real_costs.append(model.tx_cost(result.trace))
            total_fees += result.fee
        post_state = finalize_block_state(
            db.commit(),
            coinbase=block.header.coinbase,
            total_fees=total_fees,
            block_number=block.number,
            uncles=block.uncles,
            params=self.params,
        )

        # ---- phase 2: serial re-execution of conflicted transactions ------- #
        phase2 = sum(real_costs[i] for i in sorted(conflicted))

        total = (
            phase1
            + phase2
            + model.applier_per_tx * n
            + model.block_epilogue
            + model.block_commit
        )
        serial_time = (
            sum(real_costs)
            + model.applier_per_tx * n
            + model.block_epilogue
            + model.block_commit
        )
        return TwoPhaseOCCResult(
            post_state=post_state,
            total_time=total,
            phase1_time=phase1,
            phase2_time=phase2,
            conflicted=sorted(conflicted),
            tx_results=tx_results,
            serial_time=serial_time,
        )
