"""Round-based OCC with deterministic aborts (after OCC-DA [17]).

Garamvölgyi et al.'s scheduler — cited by the paper as the representative
deterministic-abort OCC (§2.3) — executes optimistically but makes abort
decisions *deterministic* so that the schedule can be replayed exactly.
This implementation captures the design's essence as a proposer-side
comparator for OCC-WSI:

* execution proceeds in **rounds**: up to ``lanes`` ready transactions
  run concurrently against the round-start snapshot;
* conflicts are resolved in a fixed **priority order** (pop order — gas
  price, then arrival): a transaction commits iff its read set does not
  intersect the writes of higher-priority transactions committed in the
  same round, otherwise it aborts deterministically and retries next
  round;
* a synchronisation **barrier** ends every round.

Compared with OCC-WSI's free-running lanes, the barrier wastes the tail
of every round (lanes idle while the slowest transaction finishes) —
that gap is what the ``bench_ablation_occ_variants`` benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction, TxResult
from repro.simcore.costmodel import CostModel
from repro.simcore.stats import RunStats
from repro.state.access import ReadWriteSet, RecordingState
from repro.state.statedb import StateDB, StateSnapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = ["BatchOCCConfig", "BatchOCCResult", "BatchOCCProposer"]


@dataclass(frozen=True)
class BatchOCCConfig:
    lanes: int = 16
    gas_limit: int = 30_000_000
    max_txs: Optional[int] = None
    #: per-round synchronisation barrier cost (µs)
    round_barrier: float = 3.0
    #: safety valve against pathological retry loops
    max_rounds: int = 10_000


@dataclass
class BatchOCCResult:
    committed: List[Transaction]
    results: List[TxResult]
    rwsets: List[ReadWriteSet]
    stats: RunStats
    post_state: StateSnapshot
    rounds: int
    total_fees: int
    invalid_dropped: int

    @property
    def gas_used(self) -> int:
        return sum(r.gas_used for r in self.results)


class BatchOCCProposer:
    """Deterministic round-based OCC block building."""

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[BatchOCCConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or BatchOCCConfig()
        self.cost_model = cost_model or CostModel()

    def propose(
        self, base: StateSnapshot, pool: TxPool, ctx: ExecutionContext
    ) -> BatchOCCResult:
        cfg = self.config
        model = self.cost_model

        db = StateDB(base)  # committed state, advanced round by round
        committed: List[Transaction] = []
        results: List[TxResult] = []
        rwsets: List[ReadWriteSet] = []
        cur_gas = 0
        total_fees = 0
        invalid_dropped = 0
        aborts = 0
        executions = 0
        total_work = 0.0
        clock = 0.0
        rounds = 0

        def block_full() -> bool:
            if cur_gas >= cfg.gas_limit:
                return True
            return cfg.max_txs is not None and len(committed) >= cfg.max_txs

        while not block_full() and rounds < cfg.max_rounds:
            # ---- select up to `lanes` ready transactions ---------------- #
            batch: List[Transaction] = []
            while len(batch) < cfg.lanes:
                tx = pool.pop_best()
                if tx is None:
                    break
                batch.append(tx)
            if not batch:
                break
            rounds += 1

            # ---- speculative execution against the round snapshot -------- #
            round_snapshot = db.commit()
            speculative = []
            round_exec_costs = []
            for tx in batch:
                scratch = RecordingState(StateDB(round_snapshot))
                try:
                    result = self.evm.apply_transaction(scratch, tx, ctx)
                except InvalidTransaction:
                    speculative.append((tx, None, None))
                    round_exec_costs.append(model.tx_overhead)
                    continue
                executions += 1
                cost = model.tx_cost(result.trace)
                round_exec_costs.append(cost)
                speculative.append((tx, result, scratch.rw))

            # the barrier: the round lasts as long as its slowest lane
            round_time = max(round_exec_costs) + cfg.round_barrier
            total_work += sum(round_exec_costs)

            # ---- deterministic validation in priority order --------------- #
            written_this_round: set = set()
            commit_count = 0
            for tx, result, rw in speculative:
                if result is None:
                    pool.drop(tx)
                    invalid_dropped += 1
                    continue
                if block_full():
                    pool.push_back(tx)
                    continue
                if any(key in written_this_round for key in rw.reads):
                    # deterministic abort: retry next round
                    aborts += 1
                    pool.push_back(tx)
                    continue
                # commit: re-execute against the authoritative state so the
                # committed sequence is self-consistent
                rec = RecordingState(db)
                final_result = self.evm.apply_transaction(rec, tx, ctx)
                committed.append(tx)
                results.append(final_result)
                rwsets.append(rec.rw)
                cur_gas += final_result.gas_used
                total_fees += final_result.fee
                written_this_round.update(rw.writes)
                pool.mark_packed(tx)
                commit_count += 1

            clock += round_time + model.commit_overhead * commit_count

        post_state = db.commit()
        stats = RunStats(
            makespan=clock,
            total_work=total_work,
            lanes=cfg.lanes,
            tasks=executions,
            aborts=aborts,
            extra={"rounds": rounds, "committed": len(committed)},
        )
        return BatchOCCResult(
            committed=committed,
            results=results,
            rwsets=rwsets,
            stats=stats,
            post_state=post_state,
            rounds=rounds,
            total_fees=total_fees,
            invalid_dropped=invalid_dropped,
        )
