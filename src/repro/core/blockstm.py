"""Block-STM proposer strategy: multi-version memory, suspend-on-ESTIMATE.

Where OCC-WSI (:mod:`repro.core.occ_wsi`) aborts-and-retries any
transaction whose read set went stale, Block-STM [Gelashvili et al.]
fixes a **preset serialization order** up front and lets a collaborative
scheduler converge on it:

* Every transaction executes against a **multi-version memory**: a read
  by the transaction at preset position ``i`` observes the write of the
  highest-indexed transaction below ``i`` (or the committed prefix /
  base snapshot), never a later one.
* When a transaction aborts, its writes are not removed but replaced by
  **ESTIMATE markers**.  A later transaction that reads an estimate
  *suspends* on the aborted writer instead of speculating through it —
  dynamic dependency discovery that converts abort storms into cheap
  waits (the exact mechanism that beats abort-and-retry under the
  app-inherent conflicts of real traffic).
* **Cooperative re-validation** runs in preset order after every wave of
  executions, re-checking only transactions at or above the lowest
  position whose memory changed; a failed check aborts that incarnation
  (writes become estimates) and cascades forward deterministically.

The driver below is a single implementation for the simulated clock and
the real backends: all scheduling decisions (wave membership, execution
order, validation, commits) happen in the parent in preset order, and
worker tasks (:func:`repro.exec.tasks.run_blockstm_task`) are pure
functions of their wave snapshot — so sealed blocks are bit-identical
across ``sim | serial | thread | process``.

Transactions are consumed from the pool in **chunks** (pool pop order is
the preset order; nonce successors become ready only after their
predecessor commits, which bounds a chunk at one transaction per
sender).  A converged chunk commits a prefix into the shared
:class:`~repro.state.versioned.MultiVersionStore` in preset order, so
the resulting :class:`~repro.core.occ_wsi.ProposalResult` is
indistinguishable in shape from an OCC-WSI run — sealing, the
serializability oracle and the differential oracle all apply unchanged,
except that reads carry true **per-key version witnesses** (the oracle's
``multiversion`` semantics) rather than a global snapshot counter.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.occ_wsi import (
    CommittedTx,
    ProposalResult,
    ProposerConfig,
    run_strict_checks,
)
from repro.evm.interpreter import EVM, ExecutionContext
from repro.exec.hooks import apply_order
from repro.exec.tasks import (
    BlockSTMTask,
    BlockSTMTaskResult,
    MVEntry,
    ProposeShared,
    run_blockstm_task,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.simcore.stats import RunStats
from repro.state.access import ReadWriteSet, StateKey
from repro.state.statedb import StateSnapshot
from repro.state.versioned import MultiVersionStore
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = ["BlockSTMProposer"]


class _MVMemory:
    """Parent-side multi-version memory for one chunk.

    Per key, per chunk-local writer index: ``(incarnation, value,
    is_estimate)``.  The parent is the only mutator, so no locking — the
    workers see immutable per-wave snapshots (:meth:`snapshot`).
    """

    def __init__(self) -> None:
        self._entries: Dict[StateKey, Dict[int, Tuple[int, Any, bool]]] = {}
        self._writer_keys: Dict[int, Set[StateKey]] = {}

    def record(self, index: int, incarnation: int, writes: Dict[StateKey, Any]) -> bool:
        """Install ``index``'s writes, dropping keys its new incarnation no
        longer writes.  Returns whether any reader-visible state changed."""
        old_keys = self._writer_keys.get(index, set())
        new_keys = set(writes)
        for key in old_keys - new_keys:
            per_key = self._entries.get(key)
            if per_key is not None:
                per_key.pop(index, None)
                if not per_key:
                    del self._entries[key]
        for key, value in writes.items():
            self._entries.setdefault(key, {})[index] = (incarnation, value, False)
        self._writer_keys[index] = new_keys
        return bool(old_keys) or bool(new_keys)

    def mark_estimates(self, index: int) -> bool:
        """Turn ``index``'s live writes into ESTIMATE markers (on abort)."""
        changed = False
        for key in self._writer_keys.get(index, ()):
            per_key = self._entries.get(key)
            if per_key is not None and index in per_key:
                incarnation, value, _ = per_key[index]
                per_key[index] = (incarnation, value, True)
                changed = True
        return changed

    def resolve(self, key: StateKey, reader: int) -> Tuple[int, int, bool]:
        """Highest writer of ``key`` below ``reader``: ``(index,
        incarnation, is_estimate)``; ``(-1, 0, False)`` when none."""
        per_key = self._entries.get(key)
        if not per_key:
            return (-1, 0, False)
        best = -1
        for index in per_key:
            if best < index < reader:
                best = index
        if best < 0:
            return (-1, 0, False)
        incarnation, _, is_estimate = per_key[best]
        return (best, incarnation, is_estimate)

    def snapshot(self) -> Dict[StateKey, Tuple[MVEntry, ...]]:
        """Immutable per-wave view shipped to workers (sorted by writer)."""
        return {
            key: tuple(
                (index, entry[0], entry[1], entry[2])
                for index, entry in sorted(per_key.items())
            )
            for key, per_key in self._entries.items()
        }


class _ChunkOutcome:
    """Converged chunk: final per-transaction results plus counters."""

    __slots__ = (
        "final",
        "sim_time",
        "waves",
        "executions",
        "suspensions",
        "aborts",
        "total_work",
        "max_incarnation",
    )

    def __init__(self, n: int) -> None:
        self.final: List[Optional[BlockSTMTaskResult]] = [None] * n
        self.sim_time = 0.0
        self.waves = 0
        self.executions = 0
        self.suspensions = 0
        self.aborts = 0
        self.total_work = 0.0
        self.max_incarnation = 0


class BlockSTMProposer:
    """Block-STM driver with the same surface as :class:`OCCWSIProposer`.

    One instance is reusable across blocks; each :meth:`propose` call is
    independent.  Use :func:`repro.core.strategies.build_proposer` to
    select an engine by :attr:`ProposerConfig.strategy`.
    """

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[ProposerConfig] = None,
        cost_model: Optional[CostModel] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        probe=None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or ProposerConfig(strategy="block-stm")
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Optional real-parallelism backend; ``None`` runs tasks inline
        #: and charges a barrier-free lane schedule on the simulated
        #: clock.  Either way the scheduler's decisions are identical, so
        #: block contents are bit-identical across sim/serial/thread/process.
        self.backend = backend
        #: Optional :class:`~repro.exec.hooks.ScheduleProbe` steering wave
        #: width and execution order (conformance fuzzing only).
        self.probe = probe

    # ------------------------------------------------------------------ #

    def _run_chunk(
        self,
        chunk: List[Transaction],
        shared: ProposeShared,
        overlay: Dict[StateKey, Any],
        wave_base: int,
    ) -> _ChunkOutcome:
        """Converge one chunk: execute/suspend/validate to a fixpoint."""
        cfg = self.config
        model = self.cost_model
        backend = self.backend
        probe = self.probe
        tracer = self.tracer
        trace_on = tracer.enabled

        n = len(chunk)
        out = _ChunkOutcome(n)
        memory = _MVMemory()
        reads_of: List[Tuple[Tuple[StateKey, int, int], ...]] = [()] * n
        incarnations = [0] * n
        need_exec: Set[int] = set(range(n))
        executed = [False] * n
        suspended: Dict[int, int] = {}
        dependents: Dict[int, Set[int]] = {}
        max_waves = 1000 + 12 * n

        # Simulated clock: Block-STM's collaborative scheduler has no wave
        # barrier — a lane picks up the next task the moment it is free and
        # the task's inputs exist.  The waves above are a *deterministic
        # bookkeeping* construct (they fix which incarnation sees which
        # memory snapshot); the clock models the continuous schedule with
        # persistent per-lane finish times plus per-task ready times
        # (earliest start after the dependency/invalidating writer landed).
        lane_finish = [0.0] * max(1, cfg.lanes)
        ready = [0.0] * n
        completion = [0.0] * n
        validation_time = 0.0

        while need_exec:
            out.waves += 1
            if out.waves > max_waves:  # pragma: no cover - defensive valve
                raise RuntimeError(
                    f"block-stm chunk failed to converge after {max_waves} waves"
                )
            runnable = sorted(i for i in need_exec if i not in suspended)
            if not runnable:  # pragma: no cover - lowest pending never suspends
                raise RuntimeError("block-stm scheduler deadlock: all pending suspended")

            # -- wave selection (yield points; defaults = production) ---- #
            wave_index = wave_base + out.waves - 1
            width = cfg.lanes
            order: List[int] = list(range(len(runnable)))
            if probe is not None:
                width = max(1, min(cfg.lanes, probe.blockstm_wave_width(wave_index, cfg.lanes)))
                permuted = apply_order(
                    probe.blockstm_exec_order(wave_index, len(runnable)), len(runnable)
                )
                if permuted is not None:
                    order = permuted
            picked = [runnable[slot] for slot in order[:width]]

            mv_snapshot = memory.snapshot()
            tasks = [
                BlockSTMTask(chunk[i], i, incarnations[i], mv_snapshot, overlay)
                for i in picked
            ]
            if backend is not None:
                results = backend.map(run_blockstm_task, tasks)
            else:
                results = [run_blockstm_task(shared, task) for task in tasks]

            # simulated lane scheduling (list scheduling, longest first):
            # completed incarnations cost their trace, suspensions only
            # the scheduler bookkeeping; a task starts at the later of its
            # lane coming free and its inputs being ready
            finish_of: Dict[int, float] = {}
            sched = []
            for res in results:
                if res.dep is not None:
                    cost = model.abort_overhead
                elif res.invalid is not None:
                    cost = model.tx_overhead
                else:
                    assert res.result is not None
                    cost = model.tx_cost(res.result.trace)
                sched.append((cost, res.index))
            for cost, i in sorted(sched, key=lambda item: (-item[0], item[1])):
                lane = min(range(len(lane_finish)), key=lambda j: (lane_finish[j], j))
                start = max(lane_finish[lane], ready[i])
                lane_finish[lane] = start + cost
                finish_of[i] = start + cost

            # -- apply results in preset order --------------------------- #
            changed_floor: Optional[int] = None
            for res in sorted(results, key=lambda r: r.index):
                i = res.index
                if res.dep is not None:
                    # an attempt that tripped an estimate cannot restart
                    # before this attempt ended (and, when registered, its
                    # dependency completed — set at resume time below)
                    ready[i] = max(ready[i], finish_of[i])
                    # suspend only while the dependency is still pending:
                    # a same-wave apply below this index may already have
                    # cleared the estimate this reader tripped on
                    if res.dep in need_exec:
                        out.suspensions += 1
                        suspended[i] = res.dep
                        dependents.setdefault(res.dep, set()).add(i)
                        if trace_on:
                            tracer.instant(
                                "blockstm_suspend", 0.0, tx=i, dep=res.dep, wave=wave_index
                            )
                    else:
                        ready[i] = max(ready[i], completion[res.dep])
                    continue
                out.executions += 1
                if res.invalid is None:
                    assert res.result is not None
                    out.total_work += model.tx_cost(res.result.trace)
                changed = memory.record(i, res.incarnation, res.writes)
                out.final[i] = res
                reads_of[i] = res.reads
                executed[i] = True
                need_exec.discard(i)
                completion[i] = finish_of[i]
                if changed and (changed_floor is None or i < changed_floor):
                    changed_floor = i
                for waiter in dependents.pop(i, ()):
                    suspended.pop(waiter, None)
                    ready[waiter] = max(ready[waiter], completion[i])

            # -- cooperative re-validation (preset order, from the lowest
            # position whose memory changed; aborts cascade in-pass) ----- #
            if changed_floor is None:
                continue
            validated_reads = 0
            for i in range(changed_floor + 1, n):
                if not executed[i]:
                    continue
                ok = True
                invalidated_by = -1
                for key, src_index, src_incarnation in reads_of[i]:
                    validated_reads += 1
                    cur_index, cur_incarnation, cur_estimate = memory.resolve(key, i)
                    if (
                        cur_estimate
                        or cur_index != src_index
                        or (cur_index >= 0 and cur_incarnation != src_incarnation)
                    ):
                        ok = False
                        invalidated_by = cur_index
                        break
                if ok:
                    continue
                out.aborts += 1
                memory.mark_estimates(i)
                executed[i] = False
                out.final[i] = None
                incarnations[i] += 1
                out.max_incarnation = max(out.max_incarnation, incarnations[i])
                need_exec.add(i)
                # the retry cannot start before the write that invalidated
                # this incarnation existed (nor before its own last attempt)
                ready[i] = max(ready[i], completion[i])
                if invalidated_by >= 0:
                    ready[i] = max(ready[i], completion[invalidated_by])
                if trace_on:
                    tracer.instant(
                        "blockstm_abort",
                        0.0,
                        tx=i,
                        incarnation=incarnations[i],
                        wave=wave_index,
                    )
            # validation is embarrassingly parallel over the lanes; an
            # invalidated incarnation pays its cost on the retry wave
            validation_time += validated_reads * model.validate_per_read / cfg.lanes
        out.sim_time = max(lane_finish) + validation_time
        return out

    # ------------------------------------------------------------------ #

    def propose(
        self,
        base: StateSnapshot,
        pool: TxPool,
        ctx: ExecutionContext,
    ) -> ProposalResult:
        """Build one block under the Block-STM collaborative scheduler."""
        cfg = self.config
        model = self.cost_model
        tracer = self.tracer
        trace_on = tracer.enabled
        metrics = self.metrics
        backend = self.backend

        store = MultiVersionStore(base)
        committed: List[CommittedTx] = []
        cur_gas = 0
        total_fees = 0
        invalid_dropped = 0
        executions = 0
        suspensions = 0
        aborts = 0
        waves = 0
        chunks = 0
        total_work = 0.0
        clock = 0.0
        max_incarnation = 0
        chunk_cap = max(32, cfg.lanes * 8)

        shared = ProposeShared(evm_config=self.evm.config, base=base, ctx=ctx)
        if backend is not None:
            backend.open(shared)
        wall0 = time.perf_counter()

        def block_full() -> bool:
            if cur_gas >= cfg.gas_limit:
                return True
            return cfg.max_txs is not None and len(committed) >= cfg.max_txs

        propose_scope = (
            tracer.scope("propose", 0.0, lanes=cfg.lanes, strategy="block-stm")
            if trace_on
            else None
        )
        if propose_scope is not None:
            propose_scope.__enter__()

        while not block_full():
            chunk: List[Transaction] = []
            while len(chunk) < chunk_cap:
                tx = pool.pop_best()
                if tx is None:
                    break
                chunk.append(tx)
            if not chunk:
                break
            chunks += 1
            overlay = store.final_values()
            outcome = self._run_chunk(chunk, shared, overlay, waves)
            waves += outcome.waves
            executions += outcome.executions
            suspensions += outcome.suspensions
            aborts += outcome.aborts
            total_work += outcome.total_work
            clock += outcome.sim_time
            max_incarnation = max(max_incarnation, outcome.max_incarnation)

            # committed-prefix versions of keys this chunk read from the
            # store/base, captured before the chunk's own commits land
            prior_versions: Dict[StateKey, int] = {}
            for res in outcome.final:
                if res is None:  # pragma: no cover - convergence guarantees
                    raise RuntimeError("block-stm chunk left an unexecuted transaction")
                for key, src_index, _ in res.reads:
                    if src_index < 0 and key not in prior_versions:
                        prior_versions[key] = store.latest_version(key)

            # -- commit the converged prefix in preset order ------------- #
            version_of: Dict[int, int] = {}
            for i, tx in enumerate(chunk):
                if block_full():
                    # gas/tx budget cut: everything at or past the cut
                    # returns to the pool for the next block (the prefix
                    # below the cut only ever read inside itself)
                    pool.push_back(tx)
                    continue
                res = outcome.final[i]
                assert res is not None
                if res.invalid is not None:
                    pool.drop(tx)
                    invalid_dropped += 1
                    if trace_on:
                        tracer.instant("invalid_tx", clock, tx=tx.hash.hex()[:8])
                    continue
                assert res.result is not None
                version = store.committed_version + 1
                store.apply(res.writes, version)
                version_of[i] = version
                reads_global: Dict[StateKey, int] = {}
                for key, src_index, _ in res.reads:
                    if src_index >= 0:
                        reads_global[key] = version_of[src_index]
                    else:
                        reads_global[key] = prior_versions[key]
                rw = ReadWriteSet(reads=reads_global, writes=dict(res.rw_writes))
                # lazy commit: no serial section — marking a converged
                # transaction COMMITTED parallelises across the lanes
                clock += model.commit_overhead / cfg.lanes
                committed.append(
                    CommittedTx(
                        tx=tx,
                        result=res.result,
                        rw=rw,
                        version=version,
                        snapshot_version=version - 1,
                        commit_time=clock,
                        cost=model.tx_cost(res.result.trace),
                    )
                )
                cur_gas += res.result.gas_used
                total_fees += res.result.fee
                pool.mark_packed(tx)
                if trace_on:
                    tracer.instant(
                        "commit", clock, tx=tx.hash.hex()[:8], version=version
                    )

        makespan = clock if backend is None else (time.perf_counter() - wall0) * 1e6
        if propose_scope is not None:
            propose_scope.span.end = makespan
            propose_scope.span.attrs.update(
                committed=len(committed),
                aborts=aborts,
                executions=executions,
                suspensions=suspensions,
                waves=waves,
            )
            propose_scope.__exit__(None, None, None)

        stats = RunStats(
            makespan=makespan,
            total_work=total_work,
            lanes=cfg.lanes,
            tasks=executions,
            aborts=aborts,
            extra={
                "committed": len(committed),
                "invalid_dropped": invalid_dropped,
                "abort_rate": aborts / executions if executions else 0.0,
                "strategy": "block-stm",
                "waves": waves,
                "chunks": chunks,
                "suspensions": suspensions,
                "max_incarnation": max_incarnation,
            },
        )
        if backend is not None:
            stats.extra["backend"] = backend.name
            stats.extra["backend_workers"] = backend.workers
        if metrics is not None:
            metrics.counter("proposer.executions").inc(executions)
            metrics.counter("proposer.aborts").inc(aborts)
            metrics.counter("proposer.commits").inc(len(committed))
            metrics.counter("proposer.invalid_dropped").inc(invalid_dropped)
            metrics.counter("blockstm.waves").inc(waves)
            metrics.counter("blockstm.suspensions").inc(suspensions)
            metrics.counter("blockstm.validation_aborts").inc(aborts)
            gauge = "proposer.makespan_us" if backend is None else "proposer.wall_us"
            metrics.gauge(gauge).set(makespan)
            metrics.merge_into(stats.extra)
        return run_strict_checks(
            ProposalResult(
                committed=committed,
                stats=stats,
                store=store,
                base=base,
                total_fees=total_fees,
                invalid_dropped=invalid_dropped,
                retries_exhausted=0,
                strategy="block-stm",
            ),
            enabled=cfg.strict_checks,
            metrics=metrics,
        )
