"""Transaction dependency graph (validator preparation phase, §4.3).

Conflicts are detected **at the account level**: "account counters (e.g.,
balance) are changed in every transaction, and updates to contract account
can cause the overall update to the account MPT" (§4.3).  Two transactions
conflict when their account footprints intersect; the transitive closure
of the conflict relation partitions the block into **subgraphs** (connected
components).  Transactions inside a subgraph must run serially in block
order; distinct subgraphs are independent and run in parallel.

The exact key-level rw-sets stay in the block profile for the applier's
verification — the graph is deliberately coarser (cheap to build, and
conservative: it may merge transactions that do not conflict at key level,
never the reverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.types import Address

__all__ = ["DependencyGraph", "build_dependency_graph"]


class _UnionFind:
    __slots__ = ("parent", "rank")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


@dataclass(frozen=True)
class DependencyGraph:
    """Partition of a block's transactions into conflict subgraphs.

    ``components`` lists subgraphs as tuples of transaction indices in
    block order; ``component_of[i]`` maps a transaction index to its
    subgraph index; ``gas`` carries the per-transaction gas estimates the
    scheduler weighs subgraphs by.
    """

    tx_count: int
    components: Tuple[Tuple[int, ...], ...]
    component_of: Tuple[int, ...]
    gas: Tuple[int, ...]

    def component_gas(self, component_index: int) -> int:
        return sum(self.gas[i] for i in self.components[component_index])

    def largest_component_ratio(self) -> float:
        """Share of the block's transactions in the biggest subgraph.

        This is the hotspot metric of §5.5 (paper average: 27.5%); a ratio
        of 1.0 means the whole block is one serial chain."""
        if self.tx_count == 0:
            return 0.0
        return max(len(c) for c in self.components) / self.tx_count

    def critical_path_gas(self) -> int:
        """Gas of the heaviest subgraph — the lower bound on parallel time."""
        if not self.components:
            return 0
        return max(self.component_gas(i) for i in range(len(self.components)))

    def to_networkx(self):
        """Export the conflict graph for analysis (nodes = tx indices).

        Edges connect consecutive transactions within each subgraph — the
        execution-order chain the scheduler enforces."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.tx_count))
        for component in self.components:
            for a, b in zip(component, component[1:]):
                g.add_edge(a, b)
        return g


def build_dependency_graph(
    footprints: Sequence[FrozenSet[Address]],
    gas: Optional[Sequence[int]] = None,
) -> DependencyGraph:
    """Build the subgraph partition from per-transaction account footprints.

    ``footprints[i]`` is the set of account addresses transaction *i*
    touches (reads or writes).  Footprints typically come from the block
    profile's rw-sets (:meth:`FrozenRWSet.touched_addresses`); gas
    estimates default to 1 per transaction when absent.
    """
    n = len(footprints)
    gas_tuple = tuple(gas) if gas is not None else (1,) * n
    if len(gas_tuple) != n:
        raise ValueError("gas estimates must align with footprints")

    uf = _UnionFind(n)
    first_toucher: Dict[Address, int] = {}
    for index, footprint in enumerate(footprints):
        for address in footprint:
            owner = first_toucher.get(address)
            if owner is None:
                first_toucher[address] = index
            else:
                uf.union(owner, index)

    groups: Dict[int, List[int]] = {}
    for index in range(n):
        groups.setdefault(uf.find(index), []).append(index)

    # deterministic component order: by first (lowest) tx index
    ordered = sorted(groups.values(), key=lambda c: c[0])
    components = tuple(tuple(sorted(c)) for c in ordered)
    component_of = [0] * n
    for comp_index, component in enumerate(components):
        for tx_index in component:
            component_of[tx_index] = comp_index

    return DependencyGraph(
        tx_count=n,
        components=components,
        component_of=tuple(component_of),
        gas=gas_tuple,
    )
