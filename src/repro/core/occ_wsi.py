"""OCC-WSI: the proposer's optimistic parallel execution (Algorithm 1).

Worker threads repeatedly pop the best pending transaction, execute it
against a **snapshot** of the state at the version current when they
started, and validate at commit time against the **reserve table**: if any
key in the transaction's read set carries a version newer than the
snapshot, the transaction aborts back to the pool (``PushHeap``).
Write-write conflicts do not abort — that is the Write-Snapshot-Isolation
relaxation (§4.2): blind writes still serialize in commit order.

The run is a discrete-event simulation over simulated lanes, but every
transaction *really executes* (through the EVM against a multi-version
view), so aborts, retries, read/write sets and the final state are real;
only durations are modelled.  The committed sequence is serializable by
construction: each committed transaction read only data at or before its
snapshot version and nothing it read changed before its commit — replaying
commits serially in commit order reproduces the identical state (a
property the test suite checks).

Commits are serialised through a single critical section ("Synchronize
with all worker threads", Algorithm 1 line 23); that serial section plus
wasted aborted work is what bends the proposer's scaling curve (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction, TxResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.simcore.events import EventQueue
from repro.simcore.stats import RunStats
from repro.state.access import ReadWriteSet, RecordingState, StateKey
from repro.state.statedb import StateDB, StateSnapshot
from repro.state.versioned import MultiVersionStore, OCCStateView
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = [
    "ProposerConfig",
    "CommittedTx",
    "ProposalResult",
    "OCCWSIProposer",
    "materialize_store",
    "run_strict_checks",
]

#: Fixed buckets for the txpool-depth-over-time histogram (clamped tails).
_DEPTH_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1 << 30)
#: Fixed buckets for per-transaction abort/retry counts.
_RETRY_EDGES = (0, 1, 2, 3, 4, 6, 8, 12, 16, 32, 1 << 20)


@dataclass(frozen=True)
class ProposerConfig:
    """Proposer knobs: strategy, worker thread count and block capacity."""

    lanes: int = 16
    gas_limit: int = 30_000_000
    max_txs: Optional[int] = None
    #: Intra-block execution strategy (``repro.core.strategies``):
    #: ``"occ-wsi"`` (Algorithm 1, this module), ``"two-phase"`` (Saraph &
    #: Herlihy speculative rounds) or ``"block-stm"`` (multi-version
    #: suspend-on-ESTIMATE, :mod:`repro.core.blockstm`).  Consumed by
    #: :func:`repro.core.strategies.build_proposer`; this class ignores it.
    strategy: str = "occ-wsi"
    #: Safety valve: abandon a transaction after this many aborts (a real
    #: proposer would rather ship the block than spin; never hit in
    #: practice because the pool drains).
    max_retries: int = 1000
    #: Run the serializability oracle (:mod:`repro.check.oracle`) over every
    #: proposal before returning it, raising
    #: :class:`~repro.check.oracle.ScheduleViolationError` if the committed
    #: order is not provably conflict-serializable.  Off by default: the
    #: check is O(committed rw-set size) per block — cheap, but not free.
    strict_checks: bool = False


@dataclass
class CommittedTx:
    """One transaction packed into the block, in commit order."""

    tx: Transaction
    result: TxResult
    rw: ReadWriteSet
    version: int  # 1-based position in the block
    snapshot_version: int
    commit_time: float
    cost: float


@dataclass
class ProposalResult:
    """Outcome of one proposing run (any strategy)."""

    committed: List[CommittedTx]
    stats: RunStats
    store: MultiVersionStore
    base: StateSnapshot
    total_fees: int
    invalid_dropped: int
    retries_exhausted: int = 0
    #: Which proposer strategy produced this result — carried into the
    #: conformance oracles so violation reports name their producer.
    strategy: str = "occ-wsi"

    @property
    def gas_used(self) -> int:
        return sum(c.result.gas_used for c in self.committed)

    def final_state(self, coinbase=None) -> StateSnapshot:
        """Materialise the committed writes (plus deferred fees) onto the base."""
        snapshot = materialize_store(self.base, self.store)
        if coinbase is not None and self.total_fees:
            db = StateDB(snapshot)
            db.add_balance(coinbase, self.total_fees)
            snapshot = db.commit()
        return snapshot


def materialize_store(base: StateSnapshot, store: MultiVersionStore) -> StateSnapshot:
    """Apply the latest committed value of every key onto ``base``."""
    db = StateDB(base)
    for key, value in store.final_values().items():
        if key.kind == "balance":
            db.set_balance(key.address, value)
        elif key.kind == "nonce":
            db.set_nonce(key.address, value)
        elif key.kind == "storage":
            db.set_storage(key.address, key.slot, value)
        elif key.kind == "code":
            db.set_code(key.address, value)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown key kind {key.kind}")
    return db.commit()


def run_strict_checks(
    result: "ProposalResult",
    *,
    enabled: bool,
    metrics: Optional[MetricsRegistry],
) -> "ProposalResult":
    """Post-propose serializability gate shared by every proposer strategy.

    Runs :func:`repro.check.oracle.verify_commit_order` over the fresh
    result (which picks the version semantics matching
    ``result.strategy``) and raises
    :class:`~repro.check.oracle.ScheduleViolationError` on any violation.
    """
    if not enabled:
        return result
    # local import: repro.check re-executes through the core pipeline,
    # so a module-level import would be circular
    from repro.check.oracle import ScheduleViolationError, verify_commit_order

    report = verify_commit_order(result)
    if metrics is not None:
        metrics.counter("check.schedules_verified").inc()
        if not report.ok:
            metrics.counter("check.schedule_violations").inc(len(report.violations))
    if not report.ok:
        raise ScheduleViolationError(report)
    return result


class OCCWSIProposer:
    """Algorithm 1 driver.

    One instance is reusable across blocks; each :meth:`propose` call is
    independent (the multi-version store and reserve table are per-run).
    """

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[ProposerConfig] = None,
        cost_model: Optional[CostModel] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        probe=None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or ProposerConfig()
        self.cost_model = cost_model or CostModel()
        #: Span sink on the simulated clock; the NullTracer default keeps
        #: the hot loop at one hoisted flag check per run.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Optional real-parallelism backend (:mod:`repro.exec`).  ``None``
        #: keeps the simulated-clock event loop below; a backend switches
        #: :meth:`propose` to the deterministic wave driver on real cores.
        self.backend = backend
        #: Optional :class:`~repro.exec.hooks.ScheduleProbe` steering the
        #: wave driver's scheduling decisions (conformance fuzzing only;
        #: ``None`` keeps every decision at its production default).
        self.probe = probe

    def _checked(self, result: "ProposalResult") -> "ProposalResult":
        """Post-propose oracle gate (``ProposerConfig.strict_checks``)."""
        return run_strict_checks(
            result, enabled=self.config.strict_checks, metrics=self.metrics
        )

    def propose(
        self,
        base: StateSnapshot,
        pool: TxPool,
        ctx: ExecutionContext,
    ) -> ProposalResult:
        """Run parallel block building until the gas limit or pool exhaustion."""
        if self.backend is not None:
            from repro.exec.proposing import propose_with_backend

            return self._checked(
                propose_with_backend(self, base, pool, ctx, self.backend)
            )
        cfg = self.config
        model = self.cost_model
        tracer = self.tracer
        trace_on = tracer.enabled  # hoisted: the hot loop pays one check
        metrics = self.metrics
        depth_hist = (
            metrics.histogram("proposer.txpool_depth", _DEPTH_EDGES)
            if metrics is not None
            else None
        )

        store = MultiVersionStore(base)
        reserve: Dict[StateKey, int] = {}  # Algorithm 1's Table
        committed: List[CommittedTx] = []
        retry_counts: Dict[object, int] = {}

        queue = EventQueue()
        idle: Set[int] = set()
        for lane in range(cfg.lanes):
            queue.push(0.0, ("free", lane))

        cur_gas = 0
        total_fees = 0
        invalid_dropped = 0
        retries_exhausted = 0
        aborts = 0
        executions = 0
        total_work = 0.0
        last_commit_end = 0.0
        commit_free = 0.0

        def block_full() -> bool:
            if cur_gas >= cfg.gas_limit:
                return True
            return cfg.max_txs is not None and len(committed) >= cfg.max_txs

        def wake_idle(now: float) -> None:
            while idle and pool.has_ready():
                lane = min(idle)
                idle.discard(lane)
                queue.push(now, ("free", lane))

        # one "propose" span parents every per-tx span of this run; opened
        # manually so the event loop below keeps its indentation
        propose_scope = tracer.scope("propose", 0.0, lanes=cfg.lanes) if trace_on else None
        if propose_scope is not None:
            propose_scope.__enter__()

        for event in queue.drain():
            now = event.time
            payload = event.payload
            kind = payload[0]

            if kind == "free":
                lane = payload[1]
                if block_full():
                    idle.add(lane)
                    continue
                if depth_hist is not None:
                    depth_hist.observe(len(pool))
                tx = pool.pop_best()
                if tx is None:
                    idle.add(lane)
                    continue
                snapshot_version = store.committed_version
                view = OCCStateView(store, snapshot_version)
                rec = RecordingState(view, version=snapshot_version)
                try:
                    result = self.evm.apply_transaction(rec, tx, ctx)
                except InvalidTransaction:
                    pool.drop(tx)
                    invalid_dropped += 1
                    if trace_on:
                        tracer.instant("invalid_tx", now, lane=lane, tx=tx.hash.hex()[:8])
                    queue.push(now + model.tx_overhead, ("free", lane))
                    continue
                executions += 1
                cost = model.tx_cost(result.trace)
                total_work += cost
                if trace_on:
                    tracer.record(
                        "execute",
                        now,
                        now + cost,
                        lane=lane,
                        tx=tx.hash.hex()[:8],
                        snapshot=snapshot_version,
                    )
                queue.push(
                    now + cost,
                    ("finish", lane, tx, view, rec, result, snapshot_version),
                )
                continue

            # kind == "finish"
            _, lane, tx, view, rec, result, snapshot_version = payload

            if block_full():
                # block sealed while this execution was in flight: the work
                # is wasted; the transaction returns to the pool for the
                # next block
                pool.push_back(tx)
                idle.add(lane)
                continue

            conflict = any(
                reserve.get(key, 0) > snapshot_version for key in rec.rw.reads
            )
            if conflict:
                aborts += 1
                retry_counts[tx.hash] = retry_counts.get(tx.hash, 0) + 1
                if trace_on:
                    tracer.instant(
                        "abort",
                        now,
                        lane=lane,
                        tx=tx.hash.hex()[:8],
                        retries=retry_counts[tx.hash],
                        snapshot=snapshot_version,
                    )
                if retry_counts[tx.hash] >= cfg.max_retries:
                    pool.drop(tx)
                    retries_exhausted += 1
                else:
                    pool.push_back(tx)
                queue.push(now + model.abort_overhead, ("free", lane))
                wake_idle(now)
                continue

            # commit: serialised critical section plus the line-23 barrier,
            # whose cost scales with the worker count
            commit_start = max(now, commit_free)
            commit_end = (
                commit_start
                + model.commit_overhead
                + model.commit_sync_per_lane * cfg.lanes
            )
            commit_free = commit_end
            last_commit_end = commit_end

            version = store.committed_version + 1
            store.apply(view.buffered_writes, version)
            for key in rec.rw.writes:
                reserve[key] = version
            committed.append(
                CommittedTx(
                    tx=tx,
                    result=result,
                    rw=rec.rw,
                    version=version,
                    snapshot_version=snapshot_version,
                    commit_time=commit_end,
                    cost=model.tx_cost(result.trace),
                )
            )
            cur_gas += result.gas_used
            total_fees += result.fee
            pool.mark_packed(tx)
            if trace_on:
                tracer.record(
                    "commit",
                    commit_start,
                    commit_end,
                    lane=lane,
                    tx=tx.hash.hex()[:8],
                    version=version,
                )
            queue.push(commit_end, ("free", lane))
            wake_idle(commit_end)

        if propose_scope is not None:
            propose_scope.span.end = last_commit_end
            propose_scope.span.attrs.update(
                committed=len(committed), aborts=aborts, executions=executions
            )
            propose_scope.__exit__(None, None, None)

        stats = RunStats(
            makespan=last_commit_end,
            total_work=total_work,
            lanes=cfg.lanes,
            tasks=executions,
            aborts=aborts,
            extra={
                "committed": len(committed),
                "invalid_dropped": invalid_dropped,
                "abort_rate": aborts / executions if executions else 0.0,
            },
        )
        if metrics is not None:
            metrics.counter("proposer.executions").inc(executions)
            metrics.counter("proposer.aborts").inc(aborts)
            metrics.counter("proposer.commits").inc(len(committed))
            metrics.counter("proposer.invalid_dropped").inc(invalid_dropped)
            metrics.counter("proposer.retries_exhausted").inc(retries_exhausted)
            retry_hist = metrics.histogram("proposer.tx_aborts", _RETRY_EDGES)
            for count in retry_counts.values():
                retry_hist.observe(count)
            metrics.gauge("proposer.makespan_us").set(last_commit_end)
            # NOTE: the global keccak memo is deliberately NOT published
            # here — it persists across runs, so its cumulative counters
            # would break metrics-replay determinism.  Use
            # repro.state.cache.keccak_cache_stats() for ad-hoc inspection.
            base_stats = store.base_cache.stats
            metrics.counter("state.base_cache.hits").inc(base_stats.hits)
            metrics.counter("state.base_cache.misses").inc(base_stats.misses)
            metrics.merge_into(stats.extra)
        return self._checked(
            ProposalResult(
                committed=committed,
                stats=stats,
                store=store,
                base=base,
                total_fees=total_fees,
                invalid_dropped=invalid_dropped,
                retries_exhausted=retries_exhausted,
            )
        )
