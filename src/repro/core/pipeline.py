"""The validator pipeline: processing multiple blocks concurrently (§4.3).

Validators receive more blocks than proposers produce (forks, §3.4), so
BlockPilot overlaps the four phases across blocks:

* **Same-height blocks** (fork siblings) share nothing but the parent
  state and overlap fully: "free workers will execute transactions
  regardless of the block information" — one shared worker pool serves
  every in-flight block.
* **Different heights** serialise at the validation phase: "block N'+1
  cannot overlap with the previous block N' in the block validation
  phase" (Figure 5).  Execution of a child may begin once the parent's
  execution phase has produced its post-state.

Costs that shape Fig. 9: the worker pool has a fixed lane count, and a
lane switching to a different block's context pays ``context_switch``
("workers to shift between different contexts to handle distinct blocks
and send out relevant information", §5.6) — with many concurrent blocks
the pool saturates and switch overhead erodes the gain, producing the
peak-at-4-blocks shape.

Correctness remains real: each block is fully re-executed and verified by
the :class:`~repro.core.validator.ParallelValidator`; the pipeline only
composes the *timing* of those runs over shared resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.chain.block import Block
from repro.common.hashing import Hash32
from repro.core.artifacts import ArtifactCache
from repro.core.validator import ParallelValidator, ValidationResult, ValidatorConfig
from repro.evm.interpreter import EVM, ExecutionContext
from repro.faults.errors import FailureReason, ValidationFailure
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.simcore.lanes import LaneGroup
from repro.simcore.stats import RunStats
from repro.state.statedb import StateSnapshot

__all__ = ["PipelineConfig", "BlockTiming", "PipelineResult", "ValidatorPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline knobs: shared worker pool size and scheduling policy."""

    worker_lanes: int = 16
    policy: str = "gas_lpt"
    seed: int = 0
    verify_profile: bool = True
    #: record per-lane (start, end, tag) traces for timeline rendering
    record_trace: bool = False
    #: Once one fork sibling at a height commits, abandon the other
    #: in-flight siblings at that height instead of validating them
    #: (frees worker lanes; abandoned blocks get SIBLING_ABANDONED).
    #: Off by default — uncle bookkeeping needs fully validated siblings.
    abandon_siblings: bool = False
    #: Fault-tolerance knobs forwarded to the per-block validator.
    max_parallel_retries: int = 2
    serial_fallback: bool = True
    timeout_us: Optional[float] = None


@dataclass
class BlockTiming:
    """Simulated phase completion times for one block in the pipeline."""

    index: int
    arrival: float
    prep_end: float
    exec_end: float
    validate_end: float
    commit_end: float
    accepted: bool


@dataclass
class PipelineResult:
    """Outcome of one pipeline run over a batch of blocks."""

    results: List[ValidationResult]
    timings: List[BlockTiming]
    makespan: float
    serial_time: float
    context_switches: int
    stats: RunStats = None
    #: populated when PipelineConfig.record_trace is set — feed it to
    #: repro.analysis.timeline.render_timeline for a Gantt view
    lane_group: Optional[LaneGroup] = None

    @property
    def speedup(self) -> float:
        """Pipeline speedup over serially processing the whole batch."""
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    @property
    def all_accepted(self) -> bool:
        return all(t.accepted for t in self.timings)

    @property
    def failures(self) -> List[Optional[ValidationFailure]]:
        """Per-block typed failures (None for accepted blocks)."""
        return [r.failure if r is not None else None for r in self.results]

    @property
    def rejection_rate(self) -> float:
        """Fraction of the batch that was rejected or abandoned."""
        if not self.timings:
            return 0.0
        return sum(1 for t in self.timings if not t.accepted) / len(self.timings)


class ValidatorPipeline:
    """Multi-block concurrent validation over a shared worker pool."""

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[PipelineConfig] = None,
        cost_model: Optional[CostModel] = None,
        injector: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        distributor=None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or PipelineConfig()
        self.cost_model = cost_model or CostModel()
        #: Pipeline spans live on the *global* pipeline clock; the inner
        #: per-block validator keeps its own standalone clock, so it gets
        #: the metrics registry (counters accumulate) but not the tracer.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Shared preparation-artifact cache: the exec backend and the
        #: validator's preparation phase both consume one derivation per
        #: block, and losing fork siblings are invalidated on commit.
        self.artifacts = ArtifactCache(metrics=metrics)
        self._validator = ParallelValidator(
            evm=self.evm,
            config=ValidatorConfig(
                lanes=self.config.worker_lanes,
                policy=self.config.policy,
                seed=self.config.seed,
                verify_profile=self.config.verify_profile,
                max_parallel_retries=self.config.max_parallel_retries,
                serial_fallback=self.config.serial_fallback,
                timeout_us=self.config.timeout_us,
            ),
            cost_model=self.cost_model,
            injector=injector,
            metrics=metrics,
            backend=backend,
            artifacts=self.artifacts,
            distributor=distributor,
        )

    def close(self) -> None:
        """Drop cached artifacts — bounds memory in long-running services."""
        self.artifacts.clear()

    # ------------------------------------------------------------------ #

    def process_blocks(
        self,
        blocks: Sequence[Block],
        parent_states: Mapping[Hash32, StateSnapshot],
        ctx: Optional[ExecutionContext] = None,
        arrivals: Optional[Sequence[float]] = None,
    ) -> PipelineResult:
        """Validate a batch of blocks through the pipeline.

        ``parent_states`` supplies the post-state of every parent that is
        *outside* the batch (keyed by block hash); parents inside the batch
        are resolved from their own validation.  ``arrivals`` gives each
        block's network arrival time (default: all at time zero — the
        same-height burst of Fig. 9).
        """
        n = len(blocks)
        if arrivals is None:
            arrivals = [0.0] * n
        if len(arrivals) != n:
            raise ValueError("arrivals must align with blocks")

        # resolve each block's parent: either an in-batch index or a snapshot
        hash_to_index: Dict[bytes, int] = {}
        for i, block in enumerate(blocks):
            hash_to_index.setdefault(bytes(block.hash), i)

        parent_index: List[Optional[int]] = []
        for block in blocks:
            parent_index.append(hash_to_index.get(bytes(block.header.parent_hash)))

        # topological execution order (parents before children); arrival
        # order breaks ties so the schedule is deterministic
        order = self._topo_order(parent_index, arrivals)

        # ---- real validation, in dependency order ----------------------- #
        results: List[Optional[ValidationResult]] = [None] * n
        committed_heights: set = set()
        for i in order:
            block = blocks[i]
            p = parent_index[i]
            if (
                self.config.abandon_siblings
                and block.header.number in committed_heights
            ):
                # a sibling already committed at this height: abandon the
                # in-flight fork block instead of burning lanes on it
                results[i] = _abandoned_sibling(block)
                self.artifacts.invalidate(block.hash)
                continue
            if p is not None:
                parent_result = results[p]
                if parent_result is None or not parent_result.accepted:
                    results[i] = _rejected_for_parent(block)
                    continue
                parent_state = parent_result.post_state
            else:
                parent_state = parent_states.get(block.header.parent_hash)
                if parent_state is None:
                    results[i] = _rejected_unknown_parent(block)
                    continue
            results[i] = self._validator.validate_block(block, parent_state, ctx)  # ctx=None derives from each header
            if results[i].accepted:
                committed_heights.add(block.header.number)
                # fork divergence: artifacts of losing siblings at this
                # height can never be consulted again — drop them
                self.artifacts.invalidate_siblings(
                    block.header.number, block.hash
                )
            else:
                self.artifacts.invalidate(block.hash)

        # ---- timing simulation over the shared worker pool ---------------- #
        timings, switches, pool = self._simulate(
            blocks, results, parent_index, arrivals, order
        )

        makespan = max((t.commit_end for t in timings), default=0.0)
        serial_time = sum(
            r.serial_time for r in results if r is not None and r.serial_time
        )
        total_work = sum(sum(r.tx_costs) for r in results if r is not None)
        stats = RunStats(
            makespan=makespan,
            total_work=total_work,
            lanes=self.config.worker_lanes,
            tasks=sum(len(r.tx_costs) for r in results if r is not None),
            context_switches=switches,
        )
        for r in results:
            if r is None:
                continue
            if r.stats is not None:
                stats.worker_faults += r.stats.worker_faults
                stats.exec_retries += r.stats.exec_retries
                stats.serial_fallbacks += r.stats.serial_fallbacks
            else:
                stats.worker_faults += r.worker_faults
                stats.exec_retries += max(r.exec_attempts - 1, 0)
            if r.failure is not None:
                stats.count_failure(r.failure.reason)
        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("pipeline.blocks").inc(n)
            metrics.counter("pipeline.blocks_accepted").inc(
                sum(1 for t in timings if t.accepted)
            )
            metrics.counter("pipeline.blocks_rejected").inc(
                sum(1 for t in timings if not t.accepted)
            )
            metrics.counter("pipeline.context_switches").inc(switches)
            # degradation counters: the seam live telemetry (repro.obs.live)
            # diffs per block to derive retry/fallback/fault events
            metrics.counter("pipeline.exec_retries").inc(stats.exec_retries)
            metrics.counter("pipeline.serial_fallbacks").inc(stats.serial_fallbacks)
            metrics.counter("pipeline.worker_faults").inc(stats.worker_faults)
            metrics.gauge("pipeline.makespan_us").set(makespan)
            metrics.gauge("pipeline.pool_utilization").set(pool.utilization())
            metrics.merge_into(stats.extra)
        return PipelineResult(
            results=[r for r in results],
            timings=timings,
            makespan=makespan,
            serial_time=serial_time,
            context_switches=switches,
            stats=stats,
            lane_group=pool if self.config.record_trace else None,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _topo_order(
        parent_index: List[Optional[int]], arrivals: Sequence[float]
    ) -> List[int]:
        n = len(parent_index)
        indegree = [0] * n
        children: Dict[int, List[int]] = {}
        for i, p in enumerate(parent_index):
            if p is not None:
                indegree[i] += 1
                children.setdefault(p, []).append(i)
        ready = sorted(
            (i for i in range(n) if indegree[i] == 0),
            key=lambda i: (arrivals[i], i),
        )
        order: List[int] = []
        while ready:
            i = ready.pop(0)
            order.append(i)
            for c in children.get(i, []):
                indegree[c] -= 1
                if indegree[c] == 0:
                    ready.append(c)
            ready.sort(key=lambda j: (arrivals[j], j))
        if len(order) != n:
            raise ValueError("parent links form a cycle")
        return order

    def _simulate(
        self,
        blocks: Sequence[Block],
        results: List[Optional[ValidationResult]],
        parent_index: List[Optional[int]],
        arrivals: Sequence[float],
        order: List[int],
    ) -> tuple:
        model = self.cost_model
        tracer = self.tracer
        trace_on = tracer.enabled
        pool = LaneGroup(
            self.config.worker_lanes,
            record_trace=self.config.record_trace,
            tracer=tracer if trace_on else None,
            span_namer=_subgraph_span_name,
        )
        timings: List[Optional[BlockTiming]] = [None] * len(blocks)

        for i in order:
            result = results[i]
            block = blocks[i]
            p = parent_index[i]
            parent_timing = timings[p] if p is not None else None

            if result is None or result.plan is None:
                # rejected before scheduling: charge only the arrival
                t = arrivals[i]
                if trace_on:
                    failure = result.failure if result is not None else None
                    tracer.instant(
                        "validation_failure",
                        t,
                        block=block.hash.hex()[:8],
                        number=block.header.number,
                        reason=failure.reason.value if failure is not None else "?",
                        detail=(result.reason if result is not None else None) or "",
                    )
                timings[i] = BlockTiming(i, arrivals[i], t, t, t, t, accepted=False)
                continue

            # execution may begin once the parent's execution produced its
            # post-state (Figure 5: exec of N'+1 overlaps validation of N')
            ready = arrivals[i]
            if parent_timing is not None:
                ready = max(ready, parent_timing.exec_end)

            prep_end = ready + result.prep_cost

            # communication overhead: every result shipped to this block's
            # applier competes with other in-flight blocks' traffic
            inflight = sum(
                1
                for t in timings
                if t is not None and t.accepted and t.exec_end > ready
            )
            ship = model.result_ship_per_tx * inflight

            block_scope = (
                tracer.scope(
                    "block",
                    arrivals[i],
                    block=block.hash.hex()[:8],
                    number=block.header.number,
                    txs=len(result.tx_costs),
                    accepted=result.accepted,
                )
                if trace_on
                else None
            )
            if block_scope is not None:
                block_scope.__enter__()
                tracer.record("prepare", ready, prep_end)

            # schedule this block's subgraphs onto the shared pool; heaviest
            # first (the validator's LPT plan order), lanes chosen globally
            tx_costs = result.tx_costs
            graph = result.graph
            exec_end: Dict[int, float] = {}
            block_exec_end = prep_end
            plan_order = [
                comp
                for lane_comps in result.plan.lane_components
                for comp in lane_comps
            ]
            # re-derive the LPT order across the *shared* pool: heaviest
            # component first, deterministic tie-break
            plan_order = sorted(
                set(plan_order),
                key=lambda c: (-graph.component_gas(c), c),
            )
            for comp in plan_order:
                tx_indices = graph.components[comp]
                duration = sum(tx_costs[t] + ship for t in tx_indices)
                lane, start, end = pool.run_on_earliest(
                    duration,
                    not_before=prep_end,
                    context=i,
                    switch_penalty=model.context_switch,
                    tag=(i, comp),
                )
                cursor = start
                for t in tx_indices:
                    cursor += tx_costs[t] + ship
                    exec_end[t] = cursor
                block_exec_end = max(block_exec_end, end)

            # applier chain in block order; validation gate on the parent
            gate = prep_end
            if parent_timing is not None:
                gate = max(gate, parent_timing.validate_end)
            applied = gate
            for t in range(len(tx_costs)):
                applied = max(applied, exec_end.get(t, prep_end)) + model.applier_per_tx
            validate_end = applied + model.block_epilogue

            commit_gate = validate_end
            if parent_timing is not None:
                commit_gate = max(commit_gate, parent_timing.commit_end)
            commit_end = commit_gate + model.block_commit

            if block_scope is not None:
                tracer.record("validate", gate, validate_end)
                tracer.record("commit", commit_gate, commit_end)
                if result.used_serial_fallback:
                    tracer.instant(
                        "serial_fallback", prep_end, block=block.hash.hex()[:8]
                    )
                if not result.accepted and result.failure is not None:
                    # scheduled but rejected (e.g. a lying profile caught by
                    # Algorithm 2): surface the typed reason in the trace
                    tracer.instant(
                        "validation_failure",
                        validate_end,
                        block=block.hash.hex()[:8],
                        number=block.header.number,
                        reason=result.failure.reason.value,
                        detail=result.reason or "",
                    )
                block_scope.span.end = commit_end
                block_scope.__exit__(None, None, None)

            timings[i] = BlockTiming(
                index=i,
                arrival=arrivals[i],
                prep_end=prep_end,
                exec_end=block_exec_end,
                validate_end=validate_end,
                commit_end=commit_end,
                accepted=result.accepted,
            )

        return [t for t in timings], pool.total_context_switches, pool


def _subgraph_span_name(tag) -> str:
    """Lane-span name for one scheduled subgraph: ``exec_subgraph``."""
    return "exec_subgraph"


def _skipped(block: Block, reason: str, code: FailureReason) -> ValidationResult:
    return ValidationResult(
        accepted=False,
        reason=reason,
        post_state=None,
        graph=None,
        plan=None,
        tx_costs=[],
        tx_results=[],
        tx_rwsets=[],
        phases=None,
        serial_time=0.0,
        stats=None,
        failure=ValidationFailure(code, detail=reason),
    )


def _rejected_for_parent(block: Block) -> ValidationResult:
    return _skipped(block, "parent block rejected", FailureReason.PARENT_REJECTED)


def _rejected_unknown_parent(block: Block) -> ValidationResult:
    return _skipped(block, "unknown parent state", FailureReason.UNKNOWN_PARENT)


def _abandoned_sibling(block: Block) -> ValidationResult:
    return _skipped(
        block,
        f"abandoned: sibling committed at height {block.header.number}",
        FailureReason.SIBLING_ABANDONED,
    )
