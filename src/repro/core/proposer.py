"""Block sealing: turn an OCC-WSI run into a broadcast-ready block.

The sealed block carries everything Figure 3 shows leaving the proposer:
the ordered transactions (commit order = block order), receipts, the
post-state root, and the **block profile** with each transaction's
read/write sets and gas — "execution details like read and write sets
about their transactions in the block profile" (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.block import (
    Block,
    BlockHeader,
    BlockProfile,
    Receipt,
    TxProfileEntry,
    receipts_root,
    transactions_root,
)
from repro.chain.bloom import bloom_from_logs
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.common.types import Address
from repro.core.occ_wsi import ProposalResult
from repro.state.statedb import StateDB, StateSnapshot

__all__ = ["SealedProposal", "seal_block", "finalize_fees", "finalize_block_state"]


def finalize_block_state(
    snapshot: StateSnapshot,
    *,
    coinbase: Address,
    total_fees: int,
    block_number: int = 0,
    uncles=(),
    params: ChainParams = DEFAULT_CHAIN_PARAMS,
) -> StateSnapshot:
    """Apply end-of-block value flows: deferred fees and rewards.

    Fee payment is aggregated outside per-transaction write sets (see
    :class:`~repro.evm.interpreter.EVMConfig`); block and uncle rewards
    follow :class:`~repro.chain.params.ChainParams`.  Proposers apply this
    when sealing and validators apply the identical update after
    re-execution, so state roots stay comparable.
    """
    proposer_credit = (
        total_fees + params.block_reward + params.nephew_reward(len(uncles))
    )
    uncle_credits = [
        (u.coinbase, params.uncle_reward(block_number, u.number)) for u in uncles
    ]
    if proposer_credit == 0 and not any(r for _, r in uncle_credits):
        return snapshot
    db = StateDB(snapshot)
    if proposer_credit:
        db.add_balance(coinbase, proposer_credit)
    for uncle_coinbase, reward in uncle_credits:
        if reward:
            db.add_balance(uncle_coinbase, reward)
    return db.commit()


def finalize_fees(
    snapshot: StateSnapshot, coinbase: Address, total_fees: int
) -> StateSnapshot:
    """Back-compat shim: fee-only finalization (zero-reward params)."""
    return finalize_block_state(
        snapshot, coinbase=coinbase, total_fees=total_fees
    )


@dataclass(frozen=True)
class SealedProposal:
    """A sealed block plus the proposer's local artifacts."""

    block: Block
    post_state: StateSnapshot
    proposal: ProposalResult


def seal_block(
    proposal: ProposalResult,
    parent: BlockHeader,
    *,
    coinbase: Address,
    timestamp: int,
    gas_limit: int,
    proposer_id: str = "",
    include_profile: bool = True,
    uncles=(),
    params: ChainParams = DEFAULT_CHAIN_PARAMS,
    metrics=None,
) -> SealedProposal:
    """Assemble header, receipts and profile from a proposing run.

    ``include_profile=False`` produces a legacy block without execution
    details (the validator must then fall back to pre-execution in its
    preparation phase — an ablation the benchmarks exercise).

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) observes
    the sealed block's composition — transaction count, gas, and the
    profile bytes the proposer ships to validators.
    """
    committed = proposal.committed
    txs = tuple(c.tx for c in committed)

    receipts = []
    cumulative = 0
    for c in committed:
        cumulative += c.result.gas_used
        receipts.append(
            Receipt(
                tx_hash=c.tx.hash,
                success=c.result.success,
                gas_used=c.result.gas_used,
                cumulative_gas=cumulative,
                log_count=len(c.result.logs),
                logs=tuple(c.result.logs),
            )
        )
    receipts = tuple(receipts)

    profile: Optional[BlockProfile] = None
    if include_profile:
        profile = BlockProfile(
            entries=tuple(
                TxProfileEntry(
                    tx_hash=c.tx.hash,
                    rw=c.rw.freeze(),
                    gas_used=c.result.gas_used,
                    success=c.result.success,
                )
                for c in committed
            )
        )

    if len(uncles) > params.max_uncles:
        raise ValueError(f"too many uncles: {len(uncles)} > {params.max_uncles}")
    block_number = parent.number + 1
    for uncle in uncles:
        if not params.validate_uncle(block_number, uncle.number):
            raise ValueError(
                f"uncle at height {uncle.number} out of range for block {block_number}"
            )
    post_state = finalize_block_state(
        proposal.final_state(),
        coinbase=coinbase,
        total_fees=proposal.total_fees,
        block_number=block_number,
        uncles=uncles,
        params=params,
    )

    logs_bloom = bloom_from_logs(
        log for c in committed for log in c.result.logs
    ).to_bytes()

    header = BlockHeader(
        parent_hash=parent.hash,
        number=block_number,
        state_root=post_state.state_root(),
        transactions_root=transactions_root(txs),
        receipts_root=receipts_root(receipts),
        gas_used=proposal.gas_used,
        gas_limit=gas_limit,
        coinbase=coinbase,
        timestamp=timestamp,
        proposer_id=proposer_id,
        logs_bloom=logs_bloom,
    )
    block = Block(header, txs, receipts, profile, uncles=tuple(uncles))
    if metrics is not None:
        metrics.counter("proposer.blocks_sealed").inc()
        metrics.gauge("proposer.block_txs").set(len(txs))
        metrics.gauge("proposer.block_gas").set(proposal.gas_used)
        if profile is not None:
            metrics.gauge("proposer.profile_entries").set(len(profile.entries))
    return SealedProposal(block=block, post_state=post_state, proposal=proposal)
