"""Subgraph-to-thread scheduling (validator preparation phase, §4.3).

"The scheduler then assigns subgraphs into different threads according to
their gas ... the scheduler assigns conflict-free jobs to threads that
consume less gas" — i.e. Longest-Processing-Time-first over subgraph gas.
Gas is an *estimate* of running time; the actual simulated duration comes
from the executed opcode trace, so LPT's quality degrades exactly where
the paper notes it does (storage-heavy outliers, §5.4).

Alternative policies (``count_lpt``, ``round_robin``, ``random``) exist
for the scheduler ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.depgraph import DependencyGraph

__all__ = ["SchedulePlan", "schedule_components", "SCHEDULER_POLICIES"]


@dataclass(frozen=True)
class SchedulePlan:
    """Assignment of subgraphs to worker threads.

    ``lane_components[t]`` lists subgraph indices thread *t* executes, in
    order; ``lane_txs[t]`` is the flattened transaction order for thread
    *t* (block order within each subgraph, subgraphs in assignment order).
    """

    lanes: int
    lane_components: Tuple[Tuple[int, ...], ...]
    lane_txs: Tuple[Tuple[int, ...], ...]
    policy: str

    def lane_of_tx(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for lane, txs in enumerate(self.lane_txs):
            for tx in txs:
                out[tx] = lane
        return out


def _order_gas_lpt(graph: DependencyGraph, lanes: int, seed: int) -> List[int]:
    """Heaviest subgraph first ("the subgraph with the heaviest path is
    selected first to capture the running time", §5.4)."""
    return sorted(
        range(len(graph.components)),
        key=lambda c: (-graph.component_gas(c), c),
    )


def _order_count_lpt(graph: DependencyGraph, lanes: int, seed: int) -> List[int]:
    """LPT by transaction count — ignores gas, ablation point."""
    return sorted(
        range(len(graph.components)),
        key=lambda c: (-len(graph.components[c]), c),
    )


def _order_block(graph: DependencyGraph, lanes: int, seed: int) -> List[int]:
    """Subgraphs in block order (no size information at all)."""
    return list(range(len(graph.components)))


def _order_random(graph: DependencyGraph, lanes: int, seed: int) -> List[int]:
    order = list(range(len(graph.components)))
    random.Random(seed).shuffle(order)
    return order


_ORDERINGS: Dict[str, Callable] = {
    "gas_lpt": _order_gas_lpt,
    "count_lpt": _order_count_lpt,
    "block_order": _order_block,
    "random": _order_random,
}

SCHEDULER_POLICIES: Tuple[str, ...] = tuple(_ORDERINGS) + ("round_robin",)


#: Fixed buckets for subgraph sizes (transactions per conflict component).
_SUBGRAPH_SIZE_EDGES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 1 << 20)


def schedule_components(
    graph: DependencyGraph,
    lanes: int,
    policy: str = "gas_lpt",
    seed: int = 0,
    metrics=None,
) -> SchedulePlan:
    """Assign subgraphs to ``lanes`` threads under the given policy.

    All policies except ``round_robin`` are greedy list schedulers: take
    subgraphs in the policy's order, place each on the currently
    least-loaded thread (load measured in estimated gas).  ``round_robin``
    ignores load entirely.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) observes
    subgraph sizes and the resulting per-lane gas imbalance — the signal
    behind LPT's quality on storage-heavy outliers (§5.4).
    """
    if lanes < 1:
        raise ValueError("need at least one lane")
    n_components = len(graph.components)
    lane_components: List[List[int]] = [[] for _ in range(lanes)]

    if policy == "round_robin":
        for i in range(n_components):
            lane_components[i % lanes].append(i)
    else:
        ordering_fn = _ORDERINGS.get(policy)
        if ordering_fn is None:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {SCHEDULER_POLICIES}"
            )
        loads = [0] * lanes
        for comp in ordering_fn(graph, lanes, seed):
            # least-loaded lane, lowest index on ties (deterministic)
            target = min(range(lanes), key=lambda l: (loads[l], l))
            lane_components[target].append(comp)
            loads[target] += graph.component_gas(comp)

    lane_txs = tuple(
        tuple(tx for comp in comps for tx in graph.components[comp])
        for comps in lane_components
    )
    if metrics is not None:
        size_hist = metrics.histogram("scheduler.subgraph_size", _SUBGRAPH_SIZE_EDGES)
        for component in graph.components:
            size_hist.observe(len(component))
        metrics.counter("scheduler.plans").inc()
        loads = [
            sum(graph.component_gas(c) for c in comps) for comps in lane_components
        ]
        busiest = max(loads) if loads else 0
        mean_load = sum(loads) / len(loads) if loads else 0
        # imbalance 1.0 = perfectly level; the LPT-vs-actual-time gap
        metrics.gauge("scheduler.load_imbalance").set(
            busiest / mean_load if mean_load else 0.0
        )
    return SchedulePlan(
        lanes=lanes,
        lane_components=tuple(tuple(c) for c in lane_components),
        lane_txs=lane_txs,
        policy=policy,
    )
