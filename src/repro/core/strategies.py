"""Proposer strategy registry plus the two-phase OCC reference engine.

Three intra-block execution strategies share the proposer surface
(``propose(base, pool, ctx) -> ProposalResult``) and are selected by
:attr:`~repro.core.occ_wsi.ProposerConfig.strategy`:

``occ-wsi``
    Algorithm 1 (:class:`~repro.core.occ_wsi.OCCWSIProposer`): continuous
    optimistic lanes, reserve-table validation, abort-and-retry.
``two-phase``
    Saraph & Herlihy's speculative two-phase scheme (this module): a
    parallel phase executes a batch against the *round snapshot*, a
    greedy pass keeps the conflict-free prefix-closure, and everything
    that conflicted (or looked invalid) re-executes serially in phase 2.
``block-stm``
    Multi-version suspend-on-ESTIMATE
    (:class:`~repro.core.blockstm.BlockSTMProposer`).

All three commit through the same :class:`MultiVersionStore`, so sealing
and the conformance oracles treat their proposals uniformly; the
``strategy`` tag on :class:`ProposalResult` is what routes oracle version
semantics and names the engine in violation reports.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.core.blockstm import BlockSTMProposer
from repro.core.occ_wsi import (
    CommittedTx,
    OCCWSIProposer,
    ProposalResult,
    ProposerConfig,
    run_strict_checks,
)
from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction
from repro.exec.tasks import ProposeShared, ProposeTask, ProposeTaskResult, run_propose_task
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.simcore.stats import RunStats
from repro.state.access import ReadWriteSet, RecordingState
from repro.state.statedb import StateSnapshot
from repro.state.versioned import MultiVersionStore, OCCStateView
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = [
    "STRATEGY_CHOICES",
    "TwoPhaseProposer",
    "build_proposer",
]

#: Accepted values for ``ProposerConfig.strategy`` / ``--strategy``.
STRATEGY_CHOICES = ("occ-wsi", "two-phase", "block-stm")


def _lpt_makespan(durations: List[float], lanes: int) -> float:
    """Simulated phase-1 duration: LPT assignment onto ``lanes``."""
    if not durations:
        return 0.0
    finish = [0.0] * max(1, lanes)
    for duration in sorted(durations, reverse=True):
        slot = min(range(len(finish)), key=lambda j: (finish[j], j))
        finish[slot] += duration
    return max(finish)


class TwoPhaseProposer:
    """Two-phase OCC: speculate a batch in parallel, redo conflicts serially.

    Each *round* pops up to ``lanes`` ready transactions:

    1. **Phase 1** executes the whole batch against the round snapshot
       (committed state at round start) — inline in sim mode, via
       ``backend.map`` otherwise; the task inputs are identical either
       way, so block contents never depend on the backend.
    2. A greedy pass in batch order accepts every transaction whose
       read/write set does not conflict (rw, wr or ww) with an
       already-accepted member: the accepted set is pairwise
       independent, so committing it in batch order is serializable with
       all reads witnessed at the round snapshot.
    3. **Phase 2** re-executes the rejects *serially* against live
       committed state (the paper's fallback phase); transactions that
       remain invalid are dropped.

    The round barrier between the phases is the scheme's cost: one
    ``commit_sync_per_lane * lanes`` synchronisation per round plus the
    fully serial phase 2 — exactly the shape the ablation benchmark
    contrasts against OCC-WSI's abort storms and Block-STM's suspensions.
    """

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[ProposerConfig] = None,
        cost_model: Optional[CostModel] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        probe=None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or ProposerConfig(strategy="two-phase")
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.backend = backend
        #: Accepted for constructor parity with the other engines.  The
        #: two-phase driver has no worker races to steer: phase 1 is a
        #: barrier over the whole batch and both the greedy pass and
        #: phase 2 are defined in batch order.
        self.probe = probe

    def propose(
        self,
        base: StateSnapshot,
        pool: TxPool,
        ctx: ExecutionContext,
    ) -> ProposalResult:
        """Run speculative rounds until the gas limit or pool exhaustion."""
        cfg = self.config
        model = self.cost_model
        tracer = self.tracer
        trace_on = tracer.enabled
        metrics = self.metrics
        backend = self.backend

        store = MultiVersionStore(base)
        committed: List[CommittedTx] = []
        cur_gas = 0
        total_fees = 0
        invalid_dropped = 0
        executions = 0
        aborts = 0  # phase-1 results discarded to phase 2
        rounds = 0
        phase2_runs = 0
        total_work = 0.0
        clock = 0.0

        shared = ProposeShared(evm_config=self.evm.config, base=base, ctx=ctx)
        if backend is not None:
            backend.open(shared)
        wall0 = time.perf_counter()

        def block_full() -> bool:
            if cur_gas >= cfg.gas_limit:
                return True
            return cfg.max_txs is not None and len(committed) >= cfg.max_txs

        propose_scope = (
            tracer.scope("propose", 0.0, lanes=cfg.lanes, strategy="two-phase")
            if trace_on
            else None
        )
        if propose_scope is not None:
            propose_scope.__enter__()

        stop = False
        while not stop and not block_full():
            batch: List[Transaction] = []
            while len(batch) < cfg.lanes:
                tx = pool.pop_best()
                if tx is None:
                    break
                batch.append(tx)
            if not batch:
                break
            rounds += 1
            snapshot_version = store.committed_version
            overlay = store.final_values()
            tasks = [ProposeTask(tx, overlay, snapshot_version) for tx in batch]
            if backend is not None:
                outs: List[ProposeTaskResult] = backend.map(run_propose_task, tasks)
            else:
                outs = [run_propose_task(shared, task) for task in tasks]

            durations = []
            for out in outs:
                if out.invalid is not None:
                    durations.append(model.tx_overhead)
                else:
                    assert out.result is not None
                    cost = model.tx_cost(out.result.trace)
                    durations.append(cost)
                    total_work += cost
                    executions += 1
            clock += _lpt_makespan(durations, cfg.lanes)
            # the inter-phase barrier: every lane synchronises once per
            # round before conflicts are resolved
            clock += model.commit_sync_per_lane * cfg.lanes

            # -- greedy conflict-free prefix (batch order) -------------- #
            accepted_sets: List[ReadWriteSet] = []
            retry: List[Transaction] = []
            for tx, out in zip(batch, outs):
                if stop:
                    pool.push_back(tx)
                    continue
                if block_full():
                    stop = True
                    pool.push_back(tx)
                    continue
                if (
                    out.invalid is not None
                    or out.rw is None
                    or any(out.rw.conflicts_with(prev) for prev in accepted_sets)
                ):
                    if out.invalid is None:
                        aborts += 1
                        if trace_on:
                            tracer.instant(
                                "two_phase_conflict", clock, tx=tx.hash.hex()[:8]
                            )
                    retry.append(tx)
                    continue
                assert out.result is not None and out.rw is not None
                accepted_sets.append(out.rw)
                version = store.committed_version + 1
                store.apply(out.writes, version)
                clock += model.commit_overhead
                committed.append(
                    CommittedTx(
                        tx=tx,
                        result=out.result,
                        rw=out.rw,
                        version=version,
                        snapshot_version=snapshot_version,
                        commit_time=clock,
                        cost=model.tx_cost(out.result.trace),
                    )
                )
                cur_gas += out.result.gas_used
                total_fees += out.result.fee
                pool.mark_packed(tx)
                if trace_on:
                    tracer.instant("commit", clock, tx=tx.hash.hex()[:8], version=version)

            # -- phase 2: serial re-execution of the rejects ------------ #
            for tx in retry:
                if stop or block_full():
                    stop = True
                    pool.push_back(tx)
                    continue
                phase2_version = store.committed_version
                view = OCCStateView(store, phase2_version)
                rec = RecordingState(view, version=phase2_version)
                try:
                    result = self.evm.apply_transaction(rec, tx, ctx)
                except InvalidTransaction:
                    pool.drop(tx)
                    invalid_dropped += 1
                    clock += model.tx_overhead
                    if trace_on:
                        tracer.instant("invalid_tx", clock, tx=tx.hash.hex()[:8])
                    continue
                executions += 1
                phase2_runs += 1
                cost = model.tx_cost(result.trace)
                total_work += cost
                clock += cost + model.commit_overhead
                version = store.committed_version + 1
                store.apply(view.buffered_writes, version)
                committed.append(
                    CommittedTx(
                        tx=tx,
                        result=result,
                        rw=rec.rw,
                        version=version,
                        snapshot_version=phase2_version,
                        commit_time=clock,
                        cost=cost,
                    )
                )
                cur_gas += result.gas_used
                total_fees += result.fee
                pool.mark_packed(tx)
                if trace_on:
                    tracer.instant(
                        "commit", clock, tx=tx.hash.hex()[:8], version=version, phase=2
                    )

        makespan = clock if backend is None else (time.perf_counter() - wall0) * 1e6
        if propose_scope is not None:
            propose_scope.span.end = makespan
            propose_scope.span.attrs.update(
                committed=len(committed),
                aborts=aborts,
                executions=executions,
                rounds=rounds,
                phase2=phase2_runs,
            )
            propose_scope.__exit__(None, None, None)

        stats = RunStats(
            makespan=makespan,
            total_work=total_work,
            lanes=cfg.lanes,
            tasks=executions,
            aborts=aborts,
            extra={
                "committed": len(committed),
                "invalid_dropped": invalid_dropped,
                "abort_rate": aborts / executions if executions else 0.0,
                "strategy": "two-phase",
                "rounds": rounds,
                "phase2_serial": phase2_runs,
            },
        )
        if backend is not None:
            stats.extra["backend"] = backend.name
            stats.extra["backend_workers"] = backend.workers
        if metrics is not None:
            metrics.counter("proposer.executions").inc(executions)
            metrics.counter("proposer.aborts").inc(aborts)
            metrics.counter("proposer.commits").inc(len(committed))
            metrics.counter("proposer.invalid_dropped").inc(invalid_dropped)
            metrics.counter("two_phase.rounds").inc(rounds)
            metrics.counter("two_phase.serial_retries").inc(phase2_runs)
            gauge = "proposer.makespan_us" if backend is None else "proposer.wall_us"
            metrics.gauge(gauge).set(makespan)
            metrics.merge_into(stats.extra)
        return run_strict_checks(
            ProposalResult(
                committed=committed,
                stats=stats,
                store=store,
                base=base,
                total_fees=total_fees,
                invalid_dropped=invalid_dropped,
                retries_exhausted=0,
                strategy="two-phase",
            ),
            enabled=cfg.strict_checks,
            metrics=metrics,
        )


_ENGINES = {
    "occ-wsi": OCCWSIProposer,
    "two-phase": TwoPhaseProposer,
    "block-stm": BlockSTMProposer,
}


def build_proposer(
    config: Optional[ProposerConfig] = None,
    *,
    evm: Optional[EVM] = None,
    cost_model: Optional[CostModel] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    backend=None,
    probe=None,
):
    """Instantiate the proposer engine selected by ``config.strategy``.

    Every engine shares the constructor surface, so call sites
    (:class:`~repro.network.node.ProposerNode`, the CLI, the fuzzer)
    switch strategies by configuration alone.
    """
    cfg = config or ProposerConfig()
    try:
        engine = _ENGINES[cfg.strategy]
    except KeyError:
        raise ValueError(
            f"unknown proposer strategy {cfg.strategy!r}; "
            f"expected one of {', '.join(STRATEGY_CHOICES)}"
        ) from None
    return engine(
        evm=evm,
        config=cfg,
        cost_model=cost_model,
        tracer=tracer,
        metrics=metrics,
        backend=backend,
        probe=probe,
    )
