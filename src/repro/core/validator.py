"""Single-block parallel validation (§4.3's four phases, for one block).

Phases and their timing model:

1. **Preparation** — the scheduler builds the dependency graph from the
   block profile and assigns subgraphs to worker threads by gas-LPT.
   Cost: ``schedule_per_tx × n`` on the control lane.
2. **Transaction execution** — each worker lane runs its subgraphs; a
   transaction's duration comes from its *actual* executed opcode trace,
   so gas-based assignment is an estimate, not an oracle (§5.4).
3. **Block validation** — the applier consumes results **in block order**
   (commits must follow the proposer's schedule, §3.3): transaction *i*
   is applied only after it finished executing *and* transaction *i-1*
   was applied.  Each application costs ``applier_per_tx``; the final
   state-root comparison costs ``block_epilogue``.
4. **Block commitment** — constant ``block_commit``.

Correctness is real, not simulated: every transaction re-executes through
the EVM against the parent state, the applier performs Algorithm 2's
rw-set checks against the profile, and the recomputed state root must
match the header.  Because subgraphs are account-disjoint (conservative
account-level conflicts), re-executing in block order yields the identical
state any conflict-respecting parallel interleaving would produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.chain.block import Block, Receipt
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.core.applier import Applier, ProfileMismatch
from repro.core.artifacts import ArtifactCache
from repro.core.depgraph import DependencyGraph, build_dependency_graph
from repro.core.proposer import finalize_block_state
from repro.core.scheduler import SchedulePlan, schedule_components
from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction, TxResult
from repro.faults.errors import FailureReason, ValidationFailure, WorkerFault
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.simcore.stats import RunStats
from repro.state.access import ReadWriteSet, RecordingState
from repro.state.statedb import StateDB, StateSnapshot

__all__ = ["ValidatorConfig", "PhaseTimes", "ValidationResult", "ParallelValidator"]

#: Fixed buckets (simulated µs) for per-phase duration histograms.
PHASE_US_EDGES = (
    0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0,
    6400.0, 12800.0, 25600.0, 51200.0, 102400.0, 1e9,
)


@dataclass(frozen=True)
class ValidatorConfig:
    """Validator knobs."""

    lanes: int = 16
    policy: str = "gas_lpt"
    seed: int = 0
    #: Verify rw-sets against the profile (Algorithm 2).  Disabling this is
    #: an ablation: execution still happens, only the checks are skipped.
    verify_profile: bool = True
    #: When a block arrives without a profile, derive footprints by serial
    #: pre-execution in the preparation phase instead of rejecting.
    preexecute_fallback: bool = False
    #: Consensus constants (rewards, uncle policy) — must equal the
    #: proposer's or state roots diverge, as on a real network.
    params: ChainParams = DEFAULT_CHAIN_PARAMS
    #: Prefetch all storage slots named in the block profile before
    #: execution (geth's prefetcher, §5.4).  When off, every storage read
    #: pays the cold I/O penalty instead.
    prefetch: bool = True
    #: Conflict-detection granularity for the dependency graph.  The paper
    #: uses ``"account"`` (§4.3: balances change in every transaction and
    #: storage writes update the account's MPT node).  ``"key"`` treats
    #: exact state keys as the unit — finer, more parallel, but unsound
    #: for account-root maintenance; provided as an ablation.
    granularity: str = "account"
    #: How many times a block whose execution hit a transient
    #: :class:`~repro.faults.errors.WorkerFault` is re-attempted in
    #: parallel (with exponential ``CostModel.retry_backoff``) before
    #: degrading.
    max_parallel_retries: int = 2
    #: After retry exhaustion, fall back to serial re-execution of the
    #: block (the Block-STM guarantee: correctness preserved, throughput
    #: sacrificed).  When off, the block is rejected with WORKER_FAULT.
    serial_fallback: bool = True
    #: Simulated-time budget (µs) for one block's validation; ``None``
    #: disables the check.  A block whose commit time exceeds it is
    #: rejected with TIMEOUT — stalled workers can push a block over.
    timeout_us: Optional[float] = None


@dataclass(frozen=True)
class PhaseTimes:
    """Completion time of each pipeline phase (µs of simulated time)."""

    prep_end: float
    exec_end: float
    validate_end: float
    commit_end: float


@dataclass
class ValidationResult:
    """Everything a validation run produced.

    ``tx_costs``/``exec_ends`` are exposed so the multi-block pipeline can
    re-simulate timing globally without re-executing transactions.
    """

    accepted: bool
    reason: Optional[str]
    post_state: Optional[StateSnapshot]
    graph: Optional[DependencyGraph]
    plan: Optional[SchedulePlan]
    tx_costs: List[float]
    tx_results: List[TxResult]
    tx_rwsets: List[ReadWriteSet]
    phases: Optional[PhaseTimes]
    serial_time: float
    stats: Optional[RunStats]
    prep_cost: float = 0.0
    #: Typed classification of the rejection (None when accepted or when
    #: the failure is a local misconfiguration rather than the block's).
    failure: Optional[ValidationFailure] = None
    #: Transient worker crashes observed while (re-)executing this block.
    worker_faults: int = 0
    #: Execution attempts consumed (1 = clean first pass).
    exec_attempts: int = 1
    #: Whether validation degraded to serial re-execution.
    used_serial_fallback: bool = False
    #: Whether execution ran sharded across follower nodes
    #: (:mod:`repro.distributed`) rather than on this node alone.
    used_distributed: bool = False

    @property
    def makespan(self) -> float:
        return self.phases.commit_end if self.phases else float("inf")

    @property
    def speedup(self) -> float:
        if not self.phases or self.phases.commit_end <= 0:
            return 1.0
        return self.serial_time / self.phases.commit_end


class ParallelValidator:
    """BlockPilot's validator for a single block."""

    def __init__(
        self,
        evm: Optional[EVM] = None,
        config: Optional[ValidatorConfig] = None,
        cost_model: Optional[CostModel] = None,
        injector: Optional[FaultInjector] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        artifacts: Optional[ArtifactCache] = None,
        check_log=None,
        probe=None,
        distributor=None,
    ) -> None:
        self.evm = evm or EVM()
        self.config = config or ValidatorConfig()
        self.cost_model = cost_model or CostModel()
        self.applier = Applier()
        #: Optional fault source consulted during the execution phase.
        #: ``None`` (production) makes every fault hook a no-op.
        self.injector = injector
        #: Span sink on the simulated clock (NullTracer default: free).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Optional real-parallelism backend (:mod:`repro.exec`): components
        #: execute on actual cores, all anomalies fall back to the serial
        #: reference loop below so results stay backend-independent.
        self.backend = backend
        #: Cached per-session shared object for the backend (see
        #: repro.exec.validating); typed wide so the exec island can swap it.
        self._exec_shared: Optional[object] = None
        #: Optional shared preparation-artifact cache (footprints, dep
        #: graph, schedules).  The pipeline supplies one so validation
        #: phases and exec backends reuse one derivation per block; without
        #: it every phase derives its own (the seed behaviour).
        self.artifacts = artifacts
        #: Optional :class:`~repro.check.report.CheckLog`: the footprint
        #: race detector.  When attached, backend component tasks run in
        #: record mode and every out-of-footprint access becomes a typed
        #: FootprintViolation finding instead of a silent fallback.
        self.check_log = check_log
        #: Optional :class:`~repro.exec.hooks.ScheduleProbe` steering the
        #: component driver's scheduling decisions (conformance fuzzing).
        #: ``None`` means every decision takes its production default.
        self.probe = probe
        #: Optional distributed shard coordinator (:mod:`repro.distributed`):
        #: when attached, execution is sharded across follower nodes first;
        #: a declined/failed distribution falls back to the local paths
        #: below (backend, then the serial reference loop).  Duck-typed —
        #: anything with ``execute(validator, block, parent_state, ctx) ->
        #: (outcome | None, failure | None)`` works; core never imports
        #: repro.distributed.
        self.distributor = distributor

    # ------------------------------------------------------------------ #

    def validate_block(
        self,
        block: Block,
        parent_state: StateSnapshot,
        ctx: Optional[ExecutionContext] = None,
    ) -> ValidationResult:
        """Re-execute and verify one block against its parent state.

        The execution context defaults to the block's own header fields —
        re-execution must happen under the proposer's context or results
        (COINBASE/NUMBER/TIMESTAMP reads) would diverge.
        """
        if ctx is None:
            ctx = ExecutionContext(
                block_number=block.header.number,
                timestamp=block.header.timestamp,
                coinbase=block.header.coinbase,
                gas_limit=block.header.gas_limit,
            )
        model = self.cost_model
        n = len(block.transactions)
        tracer = self.tracer
        trace_on = tracer.enabled
        metrics = self.metrics

        def rejected(reason: str, **kwargs) -> ValidationResult:
            failure = kwargs.get("failure")
            if trace_on:
                # failure spans carry the typed FailureReason so fault
                # injection runs are diffable from the trace alone
                tracer.instant(
                    "validation_failure",
                    0.0,
                    block=block.hash.hex()[:8],
                    number=block.number,
                    reason=failure.reason.value if failure is not None else reason,
                    detail=reason,
                )
            if metrics is not None:
                metrics.counter("validator.blocks_rejected").inc()
                if failure is not None:
                    metrics.counter("validator.failure", failure.reason.value).inc()
            return ValidationResult(
                accepted=False,
                reason=reason,
                post_state=None,
                graph=kwargs.get("graph"),
                plan=kwargs.get("plan"),
                tx_costs=kwargs.get("tx_costs", []),
                tx_results=kwargs.get("tx_results", []),
                tx_rwsets=kwargs.get("tx_rwsets", []),
                phases=None,
                serial_time=kwargs.get("serial_time", 0.0),
                stats=None,
                failure=kwargs.get("failure"),
                worker_faults=kwargs.get("worker_faults", 0),
                exec_attempts=kwargs.get("exec_attempts", 1),
            )

        def malformed(reason: str, tx_index: Optional[int] = None, **kwargs):
            return rejected(
                reason,
                failure=ValidationFailure(
                    FailureReason.MALFORMED_BLOCK, tx_index=tx_index, detail=reason
                ),
                **kwargs,
            )

        try:
            block.validate_structure()
        except ValueError as exc:
            return malformed(f"structure: {exc}")

        params = self.config.params
        if block.header.gas_used > block.header.gas_limit:
            return malformed(
                f"block gas {block.header.gas_used} exceeds limit "
                f"{block.header.gas_limit}"
            )
        if len(block.uncles) > params.max_uncles:
            return malformed(f"too many uncles: {len(block.uncles)}")
        for uncle in block.uncles:
            if not params.validate_uncle(block.number, uncle.number):
                return malformed(
                    f"uncle at height {uncle.number} invalid for block {block.number}"
                )

        # ----- real execution (block order; subgraphs are disjoint) ------ #
        # Transient worker faults abort the attempt — partial results are
        # discarded (the fresh StateDB per attempt is what guarantees "no
        # partial commits leak") and the block is re-attempted after a
        # deterministic backoff.  When parallel retries are exhausted the
        # validator degrades to injector-free serial re-execution (Block-STM's
        # guarantee: a faulty lane costs throughput, never correctness).
        consult = (
            self.injector
            if self.injector is not None and self.injector.injects_execution_faults
            else None
        )
        attempt = 0
        worker_faults = 0
        retry_penalty = 0.0
        used_serial = False
        used_distributed = False
        outcome = None
        if self.distributor is not None:
            outcome, dist_failure = self.distributor.execute(
                self, block, parent_state, ctx
            )
            if outcome is not None:
                used_distributed = True
            elif dist_failure is not None and not self.config.serial_fallback:
                # follower faults exhausted re-assignment and local
                # re-execution is disabled: surface the typed failure
                return rejected(
                    f"distributed validation failed: {dist_failure.detail}",
                    failure=dist_failure,
                )
        if outcome is None and self.backend is not None:
            from repro.exec.validating import execute_block_parallel

            outcome = execute_block_parallel(self, block, parent_state, ctx, self.backend)
        if outcome is not None:
            # component-parallel execution on real cores succeeded; its merge
            # is equivalent to the serial loop (account-disjoint components,
            # commit order enforced in the parent), so everything downstream
            # consumes it unchanged
            db = outcome.db
            tx_results = outcome.tx_results
            tx_rwsets = outcome.tx_rwsets
            tx_costs = [
                model.tx_cost(result.trace) + stall
                for result, stall in zip(tx_results, outcome.stalls)
            ]
            total_fees = outcome.total_fees
            total_gas = outcome.total_gas
            worker_faults = outcome.worker_faults
            attempt = outcome.attempt
            retry_penalty = outcome.retry_penalty
        while outcome is None:
            db = StateDB(parent_state)
            tx_results: List[TxResult] = []
            tx_rwsets: List[ReadWriteSet] = []
            tx_costs: List[float] = []
            total_fees = 0
            total_gas = 0
            crashed: Optional[WorkerFault] = None
            for index, tx in enumerate(block.transactions):
                stall = 0.0
                if consult is not None:
                    fault = consult.execution_fault(block.hash, attempt, index)
                    if fault.crash:
                        crashed = WorkerFault(index, "injected worker crash")
                        break
                    stall = fault.stall_us
                rec = RecordingState(db)
                try:
                    result = self.evm.apply_transaction(rec, tx, ctx)
                except InvalidTransaction as exc:
                    return malformed(
                        f"invalid tx {index}: {exc}",
                        tx_index=index,
                        tx_results=tx_results,
                        tx_rwsets=tx_rwsets,
                        tx_costs=tx_costs,
                        worker_faults=worker_faults,
                        exec_attempts=attempt + 1,
                    )
                tx_results.append(result)
                tx_rwsets.append(rec.rw)
                tx_costs.append(model.tx_cost(result.trace) + stall)
                total_fees += result.fee
                total_gas += result.gas_used
            if crashed is None:
                break
            worker_faults += 1
            if trace_on:
                tracer.instant(
                    "worker_fault",
                    0.0,
                    block=block.hash.hex()[:8],
                    attempt=attempt,
                    tx=crashed.tx_index,
                    reason=FailureReason.WORKER_FAULT.value,
                )
            if metrics is not None:
                metrics.counter("validator.worker_faults").inc()
            retry_penalty += model.abort_overhead + model.retry_backoff * (2**attempt)
            if attempt < self.config.max_parallel_retries:
                attempt += 1
                continue
            if not self.config.serial_fallback:
                return rejected(
                    f"worker fault at tx {crashed.tx_index} persisted through "
                    f"{attempt + 1} parallel attempts",
                    failure=ValidationFailure(
                        FailureReason.WORKER_FAULT,
                        tx_index=crashed.tx_index,
                        detail=crashed.detail,
                    ),
                    worker_faults=worker_faults,
                    exec_attempts=attempt + 1,
                )
            # degrade: one final serial pass, fault hooks disabled
            used_serial = True
            if trace_on:
                tracer.instant(
                    "serial_fallback", 0.0, block=block.hash.hex()[:8], attempts=attempt + 1
                )
            if metrics is not None:
                metrics.counter("validator.serial_fallbacks").inc()
            consult = None
            attempt += 1

        # storage I/O model (§5.4): either the preparation phase prefetches
        # every slot the profile names, or each read pays the cold path
        storage_reads = [
            sum(1 for key in rw.reads if key.kind == "storage")
            for rw in tx_rwsets
        ]
        prefetch_cost = 0.0
        if self.config.prefetch:
            distinct_slots = {
                key
                for rw in tx_rwsets
                for key in rw.reads
                if key.kind == "storage"
            }
            prefetch_cost = model.prefetch_per_slot * len(distinct_slots)
        else:
            tx_costs = [
                cost + model.cold_storage_read * reads
                for cost, reads in zip(tx_costs, storage_reads)
            ]

        # the serial baseline also runs the prefetcher (§5.4: "to ensure a
        # fair comparison"), so it pays the same prefetch cost
        serial_time = (
            prefetch_cost
            + sum(tx_costs)
            + model.applier_per_tx * n
            + model.block_epilogue
            + model.block_commit
        )

        # ----- preparation phase: dependency graph + schedule ------------- #
        profile = block.profile
        prep_cost = model.schedule_per_tx * n + prefetch_cost
        granularity = self.config.granularity
        if granularity not in ("account", "key"):
            return rejected(f"unknown conflict granularity {granularity!r}")

        def footprint_of(read_keys, write_keys, addresses):
            if granularity == "account":
                return addresses
            return frozenset(read_keys) | frozenset(write_keys)

        art = (
            self.artifacts.get(block, granularity)
            if self.artifacts is not None and profile is not None
            else None
        )
        if art is not None:
            # preparation artifacts reused (simulated prep_cost unchanged:
            # the cache saves host CPU, not modelled scheduler time)
            footprints = list(art.footprints)
            gas_estimates = list(art.gas_estimates)
        elif profile is not None:
            footprints = [
                footprint_of(
                    e.rw.read_keys(), e.rw.write_keys(), e.rw.touched_addresses()
                )
                for e in profile.entries
            ]
            gas_estimates = [e.gas_used for e in profile.entries]
        elif self.config.preexecute_fallback:
            # no profile: the validator pays a serial pre-execution to learn
            # the footprints (legacy-block path)
            footprints = [
                footprint_of(rw.reads.keys(), rw.writes.keys(), rw.touched_addresses())
                for rw in tx_rwsets
            ]
            gas_estimates = [r.gas_used for r in tx_results]
            prep_cost += sum(tx_costs)
        else:
            return malformed(
                "missing block profile",
                tx_results=tx_results,
                tx_rwsets=tx_rwsets,
                tx_costs=tx_costs,
                serial_time=serial_time,
            )

        # retry backoff delays everything downstream of preparation; a
        # serial-fallback block runs its whole execution on one lane
        prep_cost += retry_penalty
        lanes = 1 if used_serial else self.config.lanes
        if art is not None:
            graph = art.graph
            plan = art.plan_for(
                lanes, self.config.policy, self.config.seed, metrics=metrics
            )
        else:
            graph = build_dependency_graph(footprints, gas_estimates)
            plan = schedule_components(
                graph, lanes, self.config.policy, self.config.seed, metrics=metrics
            )

        # ----- profile verification (Algorithm 2) -------------------------- #
        if profile is not None and self.config.verify_profile:
            try:
                for index in range(n):
                    self.applier.verify_tx(
                        index, profile.entries[index], tx_rwsets[index], tx_results[index]
                    )
            except ProfileMismatch as exc:
                return rejected(
                    f"profile mismatch: {exc}",
                    failure=exc.failure(),
                    graph=graph,
                    plan=plan,
                    tx_results=tx_results,
                    tx_rwsets=tx_rwsets,
                    tx_costs=tx_costs,
                    serial_time=serial_time,
                    worker_faults=worker_faults,
                    exec_attempts=attempt + 1,
                )

        # ----- block-level checks ------------------------------------------ #
        post_state = finalize_block_state(
            db.commit(),
            coinbase=block.header.coinbase,
            total_fees=total_fees,
            block_number=block.number,
            uncles=block.uncles,
            params=params,
        )
        receipts = _rebuild_receipts(block, tx_results)
        all_logs = [log for r in tx_results for log in r.logs]
        outcome = self.applier.verify_block(
            block, post_state, receipts, total_gas, computed_logs=all_logs
        )
        if not outcome.accepted:
            return rejected(
                outcome.reason or "block verification failed",
                failure=outcome.failure,
                graph=graph,
                plan=plan,
                tx_results=tx_results,
                tx_rwsets=tx_rwsets,
                tx_costs=tx_costs,
                serial_time=serial_time,
                worker_faults=worker_faults,
                exec_attempts=attempt + 1,
            )

        # ----- timing simulation ------------------------------------------- #
        phases, stats = self._simulate_timing(plan, tx_costs, prep_cost)
        stats.worker_faults = worker_faults
        stats.exec_retries = attempt
        stats.serial_fallbacks = 1 if used_serial else 0
        if trace_on:
            self._emit_block_trace(
                block, phases, plan, tx_costs, prep_cost,
                prefetch_cost=prefetch_cost,
                retry_penalty=retry_penalty,
                used_serial=used_serial,
            )
        if metrics is not None:
            metrics.counter("validator.blocks_accepted").inc()
            metrics.histogram("validator.prep_us", PHASE_US_EDGES).observe(
                phases.prep_end
            )
            metrics.histogram("validator.exec_us", PHASE_US_EDGES).observe(
                phases.exec_end - phases.prep_end
            )
            metrics.histogram("validator.validate_us", PHASE_US_EDGES).observe(
                phases.validate_end - phases.exec_end
            )
            metrics.histogram("validator.commit_us", PHASE_US_EDGES).observe(
                phases.commit_end - phases.validate_end
            )
            metrics.merge_into(stats.extra)

        if (
            self.config.timeout_us is not None
            and phases.commit_end > self.config.timeout_us
        ):
            return rejected(
                f"validation timed out: {phases.commit_end:.1f}µs exceeds "
                f"budget {self.config.timeout_us:.1f}µs",
                failure=ValidationFailure(
                    FailureReason.TIMEOUT,
                    detail=f"makespan {phases.commit_end:.1f}µs",
                ),
                graph=graph,
                plan=plan,
                tx_results=tx_results,
                tx_rwsets=tx_rwsets,
                tx_costs=tx_costs,
                serial_time=serial_time,
                worker_faults=worker_faults,
                exec_attempts=attempt + 1,
            )

        return ValidationResult(
            accepted=True,
            reason=None,
            post_state=post_state,
            graph=graph,
            plan=plan,
            tx_costs=tx_costs,
            tx_results=tx_results,
            tx_rwsets=tx_rwsets,
            phases=phases,
            serial_time=serial_time,
            stats=stats,
            prep_cost=prep_cost,
            worker_faults=worker_faults,
            exec_attempts=attempt + 1,
            used_serial_fallback=used_serial,
            used_distributed=used_distributed,
        )

    # ------------------------------------------------------------------ #

    def _simulate_timing(
        self,
        plan: SchedulePlan,
        tx_costs: List[float],
        prep_cost: float,
    ) -> Tuple[PhaseTimes, RunStats]:
        """Derive the four phase-completion times for one standalone block."""
        model = self.cost_model
        n = len(tx_costs)

        # execution phase: each lane runs its tx sequence after preparation
        exec_end = [0.0] * n
        lane_ends = []
        for lane_sequence in plan.lane_txs:
            t = prep_cost
            for tx_index in lane_sequence:
                t += tx_costs[tx_index]
                exec_end[tx_index] = t
            lane_ends.append(t)
        exec_phase_end = max(lane_ends) if lane_ends else prep_cost

        # validation phase: applier consumes results in block order
        applied = prep_cost
        for index in range(n):
            applied = max(applied, exec_end[index]) + model.applier_per_tx
        validate_end = applied + model.block_epilogue
        commit_end = validate_end + model.block_commit

        phases = PhaseTimes(
            prep_end=prep_cost,
            exec_end=exec_phase_end,
            validate_end=validate_end,
            commit_end=commit_end,
        )
        stats = RunStats(
            makespan=commit_end,
            total_work=sum(tx_costs),
            lanes=plan.lanes,
            tasks=n,
        )
        return phases, stats

    def _emit_block_trace(
        self,
        block: Block,
        phases: PhaseTimes,
        plan: SchedulePlan,
        tx_costs: List[float],
        prep_cost: float,
        *,
        prefetch_cost: float = 0.0,
        retry_penalty: float = 0.0,
        used_serial: bool = False,
    ) -> None:
        """Re-walk the timing simulation as a span tree (tracing only).

        Kept separate from :meth:`_simulate_timing` so the untraced path
        stays byte-for-byte the seed loop; this duplicate walk only runs
        when a real tracer is attached.
        """
        tracer = self.tracer
        model = self.cost_model
        n = len(tx_costs)
        attrs = {
            "block": block.hash.hex()[:8],
            "number": block.number,
            "txs": n,
            "lanes": plan.lanes,
            "policy": plan.policy,
        }
        if used_serial:
            attrs["serial_fallback"] = True
        with tracer.scope("validate_block", 0.0, phases.commit_end, **attrs):
            # preparation phase: prefetch + (depgraph, LPT split evenly —
            # the cost model charges scheduling as one lump) + retry backoff
            with tracer.scope("prepare", 0.0, phases.prep_end):
                cursor = 0.0
                if prefetch_cost > 0:
                    tracer.record("prefetch", cursor, cursor + prefetch_cost)
                    cursor += prefetch_cost
                schedule_cost = model.schedule_per_tx * n
                tracer.record("depgraph_build", cursor, cursor + schedule_cost / 2)
                tracer.record(
                    "lpt_assign", cursor + schedule_cost / 2, cursor + schedule_cost
                )
                cursor += schedule_cost
                if retry_penalty > 0:
                    tracer.record(
                        "retry_backoff", cursor, cursor + retry_penalty
                    )
            with tracer.scope("execute", phases.prep_end, phases.exec_end):
                for lane_index, lane_sequence in enumerate(plan.lane_txs):
                    t = prep_cost
                    for tx_index in lane_sequence:
                        tracer.record(
                            "execute_tx",
                            t,
                            t + tx_costs[tx_index],
                            lane=lane_index,
                            tx=tx_index,
                        )
                        t += tx_costs[tx_index]
            with tracer.scope("validate", phases.prep_end, phases.validate_end):
                # applier chain in block order (the phase-3 serial gate)
                exec_end = [0.0] * n
                for lane_sequence in plan.lane_txs:
                    t = prep_cost
                    for tx_index in lane_sequence:
                        t += tx_costs[tx_index]
                        exec_end[tx_index] = t
                applied = prep_cost
                for index in range(n):
                    start = max(applied, exec_end[index])
                    applied = start + model.applier_per_tx
                    tracer.record("apply_tx", start, applied, tx=index)
                tracer.record("block_epilogue", applied, phases.validate_end)
            tracer.record("commit", phases.validate_end, phases.commit_end)


def _rebuild_receipts(block: Block, tx_results: List[TxResult]) -> List[Receipt]:
    receipts = []
    cumulative = 0
    for tx, result in zip(block.transactions, tx_results):
        cumulative += result.gas_used
        receipts.append(
            Receipt(
                tx_hash=tx.hash,
                success=result.success,
                gas_used=result.gas_used,
                cumulative_gas=cumulative,
                log_count=len(result.logs),
                logs=tuple(result.logs),
            )
        )
    return receipts
