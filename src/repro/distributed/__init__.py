"""Distributed sharded validation across follower nodes (DiPETrans-style).

A master validator partitions each received block's dependency-graph
components into gas-weighted shards (greedy LPT bin-packing,
:mod:`repro.distributed.partition`), ships them to follower nodes over the
shard RPC protocol (:mod:`repro.network.shardrpc`), verifies every reply
against the block profile, and aggregates the per-shard outcomes into
exactly what single-node validation would have produced — bit-identical
state roots and receipts by construction, because components are
account-disjoint.

Stragglers past the deadline are re-assigned; follower crashes and
byzantine replies map onto the typed
:class:`~repro.faults.errors.FailureReason` taxonomy with serial
re-execution as the last-resort fallback — follower faults cost
throughput, never correctness.
"""

from repro.distributed.coordinator import (
    DistributedConfig,
    DistributedRecord,
    ShardAttempt,
    ShardCoordinator,
)
from repro.distributed.partition import ShardPlan, partition_components
from repro.distributed.validator import DistributedValidator

__all__ = [
    "DistributedConfig",
    "DistributedRecord",
    "DistributedValidator",
    "ShardAttempt",
    "ShardCoordinator",
    "ShardPlan",
    "partition_components",
]
