"""Master-side shard coordination for distributed block validation.

DiPETrans' master/follower loop over the repro fabric: the master
partitions a received block's dependency-graph components into
gas-weighted shards (:mod:`repro.distributed.partition`), ships each to a
follower (:mod:`repro.network.shardrpc`), verifies and aggregates the
replies into exactly what single-node validation would have produced, and
owns every failure mode:

* **Crash** — no reply; the shard is re-assigned to the next live
  follower.  Exhausting re-assignments maps to ``WORKER_FAULT``.
* **Straggler** — a verified reply past the deadline (``max(min_deadline,
  straggler_factor × median round latency)``) is treated as lost and the
  shard re-assigned; exhaustion maps to ``TIMEOUT``.
* **Byzantine reply** — every reply is structurally checked (component
  set, result counts, overlay ⊆ footprint) and cross-checked per
  transaction against the block profile (Algorithm 2).  A tampered reply
  is discarded and the shard re-assigned; exhaustion maps to
  ``WORKER_FAULT`` with a byzantine detail.  Deliberately *not* a
  ``BYZANTINE_REASONS`` member: those quarantine the block's *proposer*,
  and a lying follower must not get an honest proposer quarantined.

Failures surface as ``(None, ValidationFailure)`` from
:meth:`ShardCoordinator.execute`; the validator then falls back to local
re-execution (serial fallback), so follower faults cost throughput, never
correctness.  The coordinator also *declines* — ``(None, None)`` — blocks
it cannot distribute soundly (no/mismatched profile, non-account
granularity, active local execution-fault injection whose semantics the
local paths own); declined blocks take the local path unchanged.

Merging mirrors :func:`repro.exec.validating.execute_block_parallel`:
components are account-disjoint, so applying per-component overlays in
component-index order reproduces the block-order serial state bit for
bit — the distributed state root is *identical by construction*.

Timing runs on the simulated clock: dispatch/ship/execute/reply times are
derived from the :class:`~repro.simcore.costmodel.CostModel`'s shard
fields plus per-transaction trace costs, giving a deterministic makespan
(`DistributedRecord.makespan_us`) that the scaling bench gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.core.applier import ProfileMismatch
from repro.core.artifacts import artifacts_for
from repro.distributed.partition import ShardPlan, partition_components
from repro.evm.interpreter import ExecutionContext
from repro.exec.sharding import ShardWork, build_shard_work
from repro.exec.tasks import ComponentOutcome
from repro.exec.validating import ParallelExecOutcome
from repro.faults.errors import FailureReason, ValidationFailure
from repro.faults.injector import FaultInjector
from repro.network.shardrpc import FollowerNode, ShardAssignment, ShardReply
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.state.statedb import StateDB, StateSnapshot

__all__ = [
    "DistributedConfig",
    "ShardAttempt",
    "DistributedRecord",
    "ShardCoordinator",
]


@dataclass(frozen=True)
class DistributedConfig:
    """Coordinator knobs."""

    n_followers: int = 4
    #: how many times a failed shard is re-assigned before giving up
    max_reassignments: int = 2
    #: deadline = max(min_deadline_us, straggler_factor × median latency)
    straggler_factor: float = 3.0
    #: deadline floor, µs past the dispatch round's start — keeps tiny
    #: blocks from declaring every follower a straggler
    min_deadline_us: float = 4000.0
    seed: int = 0


@dataclass(frozen=True)
class ShardAttempt:
    """One dispatch of one shard to one follower, and what came back."""

    shard_id: int
    attempt: int
    follower: str
    dispatch_us: float
    #: simulated arrival of the reply at the master; None for a crash
    reply_at_us: Optional[float]
    #: "ok" | "crash" | "byzantine" | "straggler"
    status: str


@dataclass
class DistributedRecord:
    """Everything one distributed validation did (observability + bench)."""

    block_hash_hex: str
    n_txs: int
    n_shards: int
    n_followers: int
    shard_gas: Tuple[int, ...]
    attempts: List[ShardAttempt] = field(default_factory=list)
    makespan_us: float = 0.0
    reassignments: int = 0
    follower_faults: int = 0
    #: set when distribution failed and the block fell back to local
    #: re-execution: the typed reason's value
    fallback: Optional[str] = None


class ShardCoordinator:
    """Master role: shard, ship, verify, aggregate, re-assign, degrade.

    Plugs into :class:`~repro.core.validator.ParallelValidator` as its
    ``distributor`` (duck-typed ``execute(validator, block, parent_state,
    ctx)``).  Follower nodes are built lazily from the validator's EVM
    config so follower execution is configured identically to the master.
    """

    def __init__(
        self,
        config: Optional[DistributedConfig] = None,
        *,
        master_id: str = "master",
        injector: Optional[FaultInjector] = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or DistributedConfig()
        if self.config.n_followers < 1:
            raise ValueError(
                f"n_followers must be >= 1, got {self.config.n_followers}"
            )
        self.master_id = master_id
        self.injector = injector
        self.metrics = metrics
        self._root_tracer = tracer
        self.tracer = (
            tracer.for_process(f"{master_id}/dist")
            if tracer is not None
            else NULL_TRACER
        )
        self.followers: List[FollowerNode] = []
        self._evm_config: Any = None
        #: record of the most recent distributed validation
        self.last_record: Optional[DistributedRecord] = None

    # ------------------------------------------------------------------ #

    def _followers_for(self, validator: Any) -> List[FollowerNode]:
        evm_config = validator.evm.config
        if not self.followers or self._evm_config is not evm_config:
            self._evm_config = evm_config
            self.followers = [
                FollowerNode(
                    f"{self.master_id}/follower-{i}",
                    evm_config=evm_config,
                    injector=self.injector,
                    tracer=self._root_tracer,
                    metrics=self.metrics,
                )
                for i in range(self.config.n_followers)
            ]
        return self.followers

    def execute(
        self,
        validator: Any,
        block: Block,
        parent_state: StateSnapshot,
        ctx: ExecutionContext,
    ) -> Tuple[Optional[ParallelExecOutcome], Optional[ValidationFailure]]:
        """Validate ``block``'s execution across the follower pool.

        Returns ``(outcome, None)`` on success — ``outcome`` is consumed by
        ``validate_block`` exactly like a backend result; ``(None, None)``
        when the block cannot be distributed (the local path owns it); and
        ``(None, failure)`` when follower faults exhausted re-assignment
        (the local path re-executes, or rejects when serial fallback is
        off).
        """
        n = len(block.transactions)
        profile = block.profile
        if n == 0 or profile is None or len(profile.entries) != n:
            return None, None
        if validator.config.granularity != "account":
            return None, None
        if (
            validator.injector is not None
            and validator.injector.injects_execution_faults
        ):
            # local worker crash/stall semantics (retry ladder, serial
            # degradation) are owned by the in-node paths; mixing them with
            # follower scheduling would change observable fault behaviour
            return None, None
        art = artifacts_for(block, "account", cache=validator.artifacts)
        if art is None:
            return None, None

        cfg = self.config
        model = validator.cost_model
        graph = art.graph
        component_footprints = art.component_footprints()
        component_gas = art.component_gas()
        plan: ShardPlan = partition_components(component_gas, cfg.n_followers)
        if plan.n_shards == 0:
            return None, None
        followers = self._followers_for(validator)

        record = DistributedRecord(
            block_hash_hex=block.hash.hex(),
            n_txs=n,
            n_shards=plan.n_shards,
            n_followers=cfg.n_followers,
            shard_gas=plan.gas,
        )
        self.last_record = record

        shard_works: List[Tuple[ShardWork, ...]] = [
            tuple(
                build_shard_work(
                    block,
                    parent_state,
                    comp,
                    graph.components[comp],
                    component_footprints[comp],
                    component_gas[comp],
                )
                for comp in comps
            )
            for comps in plan.shards
        ]
        shard_txs = [sum(len(w.tx_indices) for w in works) for works in shard_works]

        # ---- simulated dispatch/reply timeline --------------------------- #
        t0 = model.schedule_per_tx * n  # partition happens in the prep phase
        busy = [t0] * cfg.n_followers
        dead: set = set()
        assigned = {sid: sid % cfg.n_followers for sid in range(plan.n_shards)}
        pending = list(range(plan.n_shards))
        resolved: Dict[int, ShardReply] = {}
        reply_at_of: Dict[int, float] = {}
        fail_kind: Dict[int, str] = {}

        if self.metrics is not None:
            self.metrics.counter("dist.blocks").inc()

        for attempt in range(cfg.max_reassignments + 1):
            if not pending:
                break
            round_ok: Dict[int, Tuple[float, ShardReply]] = {}
            round_dispatch: Dict[int, float] = {}
            for sid in list(pending):
                f = assigned[sid]
                follower = followers[f]
                assignment = ShardAssignment(
                    block_hash=block.hash,
                    shard_id=sid,
                    attempt=attempt,
                    works=shard_works[sid],
                    ctx=ctx,
                )
                dispatch = max(busy[f], t0)
                round_dispatch[sid] = dispatch
                ship = model.shard_ship_us + model.shard_ship_per_tx * shard_txs[sid]
                if self.metrics is not None:
                    self.metrics.counter("dist.shards_shipped").inc()
                reply = follower.handle(assignment)
                if reply is None:
                    # crash: the follower is gone for this block
                    dead.add(f)
                    busy[f] = float("inf")
                    fail_kind[sid] = "crash"
                    record.follower_faults += 1
                    record.attempts.append(
                        ShardAttempt(
                            sid, attempt, follower.follower_id, dispatch, None, "crash"
                        )
                    )
                    continue
                if self.metrics is not None:
                    self.metrics.counter("dist.replies").inc()
                verdict = self._verify_reply(
                    validator, block, graph, component_footprints,
                    plan.shards[sid], reply,
                )
                if verdict == "anomaly":
                    # the shard itself could not execute cleanly (lying
                    # profile, invalid tx): not a follower fault — decline
                    # and let the local reference path classify the block
                    record.fallback = "undistributable"
                    if self.metrics is not None:
                        self.metrics.counter("dist.declined").inc()
                    return None, None
                exec_us = sum(
                    model.tx_cost(result.trace)
                    for outcome in reply.outcomes
                    for result in outcome.results
                )
                finish = dispatch + ship + exec_us + reply.stall_us
                busy[f] = finish
                reply_at = (
                    finish
                    + model.shard_reply_us
                    + model.shard_reply_per_tx * shard_txs[sid]
                )
                if verdict == "byzantine":
                    fail_kind[sid] = "byzantine"
                    record.follower_faults += 1
                    record.attempts.append(
                        ShardAttempt(
                            sid, attempt, follower.follower_id,
                            dispatch, reply_at, "byzantine",
                        )
                    )
                    continue
                round_ok[sid] = (reply_at, reply)

            # straggler deadline over this round's verified replies
            if round_ok:
                latencies = sorted(at - t0 for at, _ in round_ok.values())
                median = latencies[len(latencies) // 2]
                deadline_at = t0 + max(
                    cfg.min_deadline_us, cfg.straggler_factor * median
                )
            else:
                deadline_at = t0 + cfg.min_deadline_us

            for sid, (reply_at, reply) in round_ok.items():
                follower_id = followers[assigned[sid]].follower_id
                if reply_at > deadline_at and attempt < cfg.max_reassignments:
                    # verified but late: treat as lost, race a re-assignment
                    fail_kind[sid] = "straggler"
                    record.attempts.append(
                        ShardAttempt(
                            sid, attempt, follower_id,
                            round_dispatch[sid], reply_at, "straggler",
                        )
                    )
                    continue
                if reply_at > deadline_at:
                    # out of re-assignment budget: the deadline stands
                    fail_kind[sid] = "straggler"
                    record.attempts.append(
                        ShardAttempt(
                            sid, attempt, follower_id,
                            round_dispatch[sid], reply_at, "straggler",
                        )
                    )
                    continue
                resolved[sid] = reply
                reply_at_of[sid] = reply_at
                pending.remove(sid)
                fail_kind.pop(sid, None)
                record.attempts.append(
                    ShardAttempt(
                        sid, attempt, follower_id,
                        round_dispatch[sid], reply_at, "ok",
                    )
                )
                if self.tracer.enabled:
                    self.tracer.record(
                        "dist.shard",
                        round_dispatch[sid],
                        reply_at,
                        shard=sid,
                        follower=follower_id,
                        attempt=attempt,
                        txs=shard_txs[sid],
                        gas=plan.gas[sid],
                    )

            # re-assign whatever failed this round to the next live follower
            if pending and attempt < cfg.max_reassignments:
                pool_exhausted = False
                for sid in pending:
                    new_f = self._next_live(assigned[sid], dead)
                    if new_f is None:
                        pool_exhausted = True
                        break
                    assigned[sid] = new_f
                    record.reassignments += 1
                    if self.metrics is not None:
                        self.metrics.counter("dist.reassignments").inc()
                if pool_exhausted:
                    break  # every follower crashed: exhaustion below

        if pending:
            failure = self._exhaustion_failure(pending, fail_kind)
            record.fallback = failure.reason.value
            if self.metrics is not None:
                self.metrics.counter("dist.fallbacks").inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    "dist.fallback",
                    0.0,
                    block=block.hash.hex()[:8],
                    reason=failure.reason.value,
                    detail=failure.detail,
                )
            return None, failure

        # ---- aggregate: merge per-shard outcomes in component order ------ #
        outcome = self._merge(validator, block, parent_state, graph, resolved)
        record.makespan_us = (
            max(reply_at_of.values()) + model.dist_merge_per_tx * n
        )
        if self.metrics is not None:
            self.metrics.gauge("dist.makespan_us").set(record.makespan_us)
            self.metrics.counter("dist.blocks_distributed").inc()
        return outcome, None

    # ------------------------------------------------------------------ #

    def _next_live(self, current: int, dead: set) -> Optional[int]:
        """Round-robin to the next non-crashed follower (None if none).

        May return ``current`` itself when it is the only live follower —
        the attempt counter still advances, so the re-dispatch rolls fresh
        faults.
        """
        n = self.config.n_followers
        for step in range(1, n + 1):
            candidate = (current + step) % n
            if candidate not in dead:
                return candidate
        return None

    def _exhaustion_failure(
        self, pending: List[int], fail_kind: Dict[int, str]
    ) -> ValidationFailure:
        """Map the dominant unresolved fault onto the typed taxonomy."""
        kinds = [fail_kind.get(sid, "crash") for sid in pending]
        if "byzantine" in kinds:
            sid = pending[kinds.index("byzantine")]
            return ValidationFailure(
                FailureReason.WORKER_FAULT,
                detail=(
                    f"byzantine shard reply for shard {sid} persisted through "
                    f"{self.config.max_reassignments + 1} assignments"
                ),
            )
        if "crash" in kinds:
            sid = pending[kinds.index("crash")]
            return ValidationFailure(
                FailureReason.WORKER_FAULT,
                detail=(
                    f"follower crash on shard {sid} persisted through "
                    f"{self.config.max_reassignments + 1} assignments"
                ),
            )
        sid = pending[0]
        return ValidationFailure(
            FailureReason.TIMEOUT,
            detail=(
                f"shard {sid} straggled past the deadline on every "
                f"assignment ({self.config.max_reassignments + 1} attempts)"
            ),
        )

    def _verify_reply(
        self,
        validator: Any,
        block: Block,
        graph: Any,
        component_footprints: Tuple[Any, ...],
        expected_components: Tuple[int, ...],
        reply: ShardReply,
    ) -> str:
        """Classify one reply: ``"ok"`` | ``"byzantine"`` | ``"anomaly"``.

        Structural checks catch replies that do not even match the
        assignment; the per-transaction profile cross-check (Algorithm 2,
        the same one that catches lying proposers) catches tampered
        results.  An execution *anomaly* (invalid tx / footprint miss) is
        the block's fault, not the follower's.
        """
        got = {o.component for o in reply.outcomes}
        if got != set(expected_components):
            return "byzantine"
        profile = block.profile
        for outcome in reply.outcomes:
            if outcome.anomaly is not None:
                return "anomaly"
            tx_indices = graph.components[outcome.component]
            if len(outcome.results) != len(tx_indices) or len(
                outcome.rwsets
            ) != len(tx_indices):
                return "byzantine"
            footprint = component_footprints[outcome.component]
            if not set(outcome.overlay) <= set(footprint):
                return "byzantine"
            for position, tx_index in enumerate(tx_indices):
                try:
                    validator.applier.verify_tx(
                        tx_index,
                        profile.entries[tx_index],
                        outcome.rwsets[position],
                        outcome.results[position],
                    )
                except ProfileMismatch:
                    return "byzantine"
        return "ok"

    @staticmethod
    def _merge(
        validator: Any,
        block: Block,
        parent_state: StateSnapshot,
        graph: Any,
        resolved: Dict[int, ShardReply],
    ) -> ParallelExecOutcome:
        """Rebuild the single-node execution outcome from shard replies.

        Identical to the backend merge in
        :func:`repro.exec.validating.execute_block_parallel`: overlays are
        applied in ascending component order (components are
        account-disjoint, so this reproduces block-order serial state),
        and results are re-indexed to block order.
        """
        from repro.exec.tasks import apply_overlay

        n = len(block.transactions)
        by_component: Dict[int, ComponentOutcome] = {}
        for reply in resolved.values():
            for outcome in reply.outcomes:
                by_component[outcome.component] = outcome
        db = StateDB(parent_state)
        by_index: Dict[int, Tuple[Any, Any]] = {}
        for comp_index in range(len(graph.components)):
            outcome = by_component[comp_index]
            apply_overlay(db, outcome.overlay)
            for position, tx_index in enumerate(graph.components[comp_index]):
                by_index[tx_index] = (
                    outcome.results[position],
                    outcome.rwsets[position],
                )
        tx_results = [by_index[i][0] for i in range(n)]
        tx_rwsets = [by_index[i][1] for i in range(n)]
        return ParallelExecOutcome(
            db=db,
            tx_results=tx_results,
            tx_rwsets=tx_rwsets,
            stalls=[0.0] * n,
            total_fees=sum(r.fee for r in tx_results),
            total_gas=sum(r.gas_used for r in tx_results),
            worker_faults=0,
            attempt=0,
            retry_penalty=0.0,
            wall_us=0.0,
        )
