"""Gas-weighted shard partitioning (greedy LPT bin-packing).

The master partitions a block's dependency-graph components into at most
``n_shards`` gas-balanced shards, one per follower node.  Greedy
longest-processing-time: components in descending gas order, each into the
currently lightest shard — the same heuristic the local scheduler uses for
lanes (DiPETrans uses the identical shape for its follower shards).
Deterministic throughout: ties break on the lower component index and the
lower shard index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ShardPlan", "partition_components"]


@dataclass(frozen=True)
class ShardPlan:
    """Component indices and gas load per shard (parallel tuples)."""

    shards: Tuple[Tuple[int, ...], ...]
    gas: Tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def balance(self) -> float:
        """max/mean shard load — 1.0 is a perfect split."""
        loads = [g for g in self.gas if g > 0] or [0]
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0


def partition_components(
    component_gas: Sequence[int], n_shards: int
) -> ShardPlan:
    """LPT-pack components into ``min(n_shards, n_components)`` shards.

    Never produces an empty shard: with fewer components than requested
    shards, each component gets its own.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_components = len(component_gas)
    k = min(n_shards, n_components)
    if k == 0:
        return ShardPlan(shards=(), gas=())
    bins: List[List[int]] = [[] for _ in range(k)]
    loads: List[int] = [0] * k
    order = sorted(
        range(n_components), key=lambda c: (-component_gas[c], c)
    )
    for comp in order:
        target = min(range(k), key=lambda s: (loads[s], s))
        bins[target].append(comp)
        loads[target] += component_gas[comp]
    return ShardPlan(
        shards=tuple(tuple(sorted(b)) for b in bins),
        gas=tuple(loads),
    )
