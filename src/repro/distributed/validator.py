"""One-call facade over the distributed validation stack.

Benchmarks, tests and the CLI want "a validator with N followers" without
wiring the coordinator, follower pool and
:class:`~repro.core.validator.ParallelValidator` by hand.
:class:`DistributedValidator` is that bundle: construct it like a local
validator plus ``n_followers``, call :meth:`validate`, read
``coordinator.last_record`` for the distributed timeline.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chain.block import Block
from repro.core.validator import (
    ParallelValidator,
    ValidationResult,
    ValidatorConfig,
)
from repro.distributed.coordinator import DistributedConfig, ShardCoordinator
from repro.evm.interpreter import EVM, ExecutionContext
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.simcore.costmodel import CostModel
from repro.state.statedb import StateSnapshot

__all__ = ["DistributedValidator"]


class DistributedValidator:
    """A master validator with a pool of follower nodes attached.

    ``injector`` feeds *follower* faults (crash/stall/byzantine) into the
    pool; local worker-fault injection keeps its existing semantics — the
    coordinator declines such blocks and the local paths handle them.
    """

    def __init__(
        self,
        n_followers: int = 4,
        *,
        evm: Optional[EVM] = None,
        config: Optional[ValidatorConfig] = None,
        cost_model: Optional[CostModel] = None,
        dist_config: Optional[DistributedConfig] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        master_id: str = "master",
    ) -> None:
        if dist_config is None:
            dist_config = DistributedConfig(n_followers=n_followers)
        elif dist_config.n_followers != n_followers:
            raise ValueError(
                f"n_followers={n_followers} disagrees with "
                f"dist_config.n_followers={dist_config.n_followers}"
            )
        self.coordinator = ShardCoordinator(
            dist_config,
            master_id=master_id,
            injector=injector,
            tracer=tracer,
            metrics=metrics,
        )
        self.validator = ParallelValidator(
            evm=evm,
            config=config,
            cost_model=cost_model,
            injector=injector,
            tracer=tracer,
            metrics=metrics,
            distributor=self.coordinator,
        )

    def validate(
        self,
        block: Block,
        parent_state: StateSnapshot,
        ctx: Optional[ExecutionContext] = None,
    ) -> ValidationResult:
        """Validate one block, sharded across the follower pool."""
        return self.validator.validate_block(block, parent_state, ctx)

    @property
    def last_record(self) -> Any:
        """The most recent distributed-validation record (or ``None``)."""
        return self.coordinator.last_record
