"""A from-scratch Ethereum-style virtual machine.

The paper's framework is EVM-compatible by design (§4, "Compatibility with
EVM"); every conflict pattern it studies — storage races through
SLOAD/SSTORE, counter races through balances and nonces (§2.3, §3.1) —
arises from real bytecode execution.  This package provides that substrate:

* a 256-bit stack machine with ~70 opcodes, byte-addressed memory,
  journaled storage access and inter-contract ``CALL``;
* an Ethereum-style gas schedule (:mod:`repro.evm.gas`) whose heavy
  storage costs make gas the scheduling proxy §4.3 relies on;
* per-category execution tracing feeding the simulated cost model;
* an assembler DSL (:mod:`repro.evm.asm`) used by the workload layer to
  author the hotspot contracts (ERC-20, AMM, NFT mint, airdrop).

The interpreter executes against any object implementing the StateDB
interface, so the same bytecode runs under serial execution, OCC snapshot
views and validator re-execution.
"""

from repro.evm.opcodes import Op, OPCODES, opcode_by_name
from repro.evm.gas import GasSchedule, DEFAULT_GAS_SCHEDULE, OutOfGas
from repro.evm.interpreter import (
    EVM,
    EVMConfig,
    ExecutionContext,
    Message,
    MessageResult,
    TxResult,
    Log,
    InvalidTransaction,
)
from repro.evm.asm import Assembler, asm

__all__ = [
    "Op",
    "OPCODES",
    "opcode_by_name",
    "GasSchedule",
    "DEFAULT_GAS_SCHEDULE",
    "OutOfGas",
    "EVM",
    "EVMConfig",
    "ExecutionContext",
    "Message",
    "MessageResult",
    "TxResult",
    "Log",
    "InvalidTransaction",
    "Assembler",
    "asm",
]
