"""A small EVM assembler for authoring workload contracts.

The workload layer writes the paper's hotspot contracts (ERC-20 transfers,
AMM swaps, NFT mints — §5.5's DeFi/NFT/token-distribution patterns) in a
readable mnemonic form rather than raw byte strings.  Two-pass assembly:
labels are collected first, then jump targets are patched as fixed-width
``PUSH2`` immediates, so forward references work.

Example::

    a = Assembler()
    a.push(0).op("CALLDATALOAD")
    a.push(4).op("SHR")  # etc.
    a.jumpi_to("transfer")
    a.op("STOP")
    a.label("transfer")
    ...
    code = a.assemble()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.evm.opcodes import opcode_by_name

__all__ = ["Assembler", "asm", "AssemblyError"]


class AssemblyError(ValueError):
    """Malformed assembly program (unknown mnemonic, duplicate label...)."""


class _LabelRef:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Assembler:
    """Two-pass assembler with auto-sized pushes and label resolution."""

    def __init__(self) -> None:
        # each item: bytes (literal code) | _LabelRef (2-byte placeholder
        # preceded by an emitted PUSH2) | ("label", name)
        self._items: List[Union[bytes, _LabelRef, Tuple[str, str]]] = []

    # ------------------------------------------------------------------ #

    def op(self, name: str) -> "Assembler":
        """Emit a plain opcode by mnemonic."""
        try:
            opcode = opcode_by_name(name)
        except KeyError:
            raise AssemblyError(f"unknown mnemonic {name!r}") from None
        if name.upper().startswith("PUSH"):
            raise AssemblyError("use push(value) for PUSH opcodes")
        self._items.append(bytes([opcode.code]))
        return self

    def push(self, value: int, width: Optional[int] = None) -> "Assembler":
        """Emit the narrowest PUSH for ``value`` (or a fixed ``width``)."""
        if value < 0:
            raise AssemblyError("cannot push negative values")
        needed = max(1, (value.bit_length() + 7) // 8)
        width = width or needed
        if width < needed or width > 32:
            raise AssemblyError(f"push width {width} cannot hold {value}")
        opcode = 0x60 + width - 1
        self._items.append(bytes([opcode]) + value.to_bytes(width, "big"))
        return self

    def push_bytes(self, data: bytes) -> "Assembler":
        """PUSH the bytes as a right-aligned word (max 32 bytes)."""
        if not 1 <= len(data) <= 32:
            raise AssemblyError("push_bytes takes 1..32 bytes")
        self._items.append(bytes([0x60 + len(data) - 1]) + data)
        return self

    def label(self, name: str) -> "Assembler":
        """Define a jump destination here (emits JUMPDEST)."""
        self._items.append(("label", name))
        return self

    def push_label(self, name: str) -> "Assembler":
        """PUSH2 the address of a label (resolved at assembly)."""
        self._items.append(_LabelRef(name))
        return self

    def jump_to(self, name: str) -> "Assembler":
        return self.push_label(name).op("JUMP")

    def jumpi_to(self, name: str) -> "Assembler":
        return self.push_label(name).op("JUMPI")

    def raw(self, data: bytes) -> "Assembler":
        """Splice raw bytes (escape hatch for tests)."""
        self._items.append(bytes(data))
        return self

    # ------------------------------------------------------------------ #

    def assemble(self) -> bytes:
        """Resolve labels and produce bytecode."""
        # pass 1: lay out offsets
        offsets: Dict[str, int] = {}
        pos = 0
        for item in self._items:
            if isinstance(item, tuple):
                name = item[1]
                if name in offsets:
                    raise AssemblyError(f"duplicate label {name!r}")
                offsets[name] = pos
                pos += 1  # JUMPDEST byte
            elif isinstance(item, _LabelRef):
                pos += 3  # PUSH2 + 2 bytes
            else:
                pos += len(item)
        # pass 2: emit
        out = bytearray()
        for item in self._items:
            if isinstance(item, tuple):
                out.append(0x5B)  # JUMPDEST
            elif isinstance(item, _LabelRef):
                target = offsets.get(item.name)
                if target is None:
                    raise AssemblyError(f"undefined label {item.name!r}")
                out.append(0x61)  # PUSH2
                out += target.to_bytes(2, "big")
            else:
                out += item
        return bytes(out)


def asm(program: Sequence) -> bytes:
    """Assemble a compact program description.

    Items may be:

    * an ``int`` — auto-sized PUSH;
    * a mnemonic ``str`` — plain opcode;
    * ``(":", name)`` — define a label;
    * ``("@", name)`` — push a label address;
    * ``("jump", name)`` / ``("jumpi", name)`` — push-and-jump;
    * ``bytes`` — raw splice.
    """
    a = Assembler()
    for item in program:
        if isinstance(item, bool):
            raise AssemblyError("booleans are not assembly items")
        if isinstance(item, int):
            a.push(item)
        elif isinstance(item, str):
            a.op(item)
        elif isinstance(item, bytes):
            a.raw(item)
        elif isinstance(item, tuple) and len(item) == 2:
            kind, name = item
            if kind == ":":
                a.label(name)
            elif kind == "@":
                a.push_label(name)
            elif kind == "jump":
                a.jump_to(name)
            elif kind == "jumpi":
                a.jumpi_to(name)
            else:
                raise AssemblyError(f"unknown directive {kind!r}")
        else:
            raise AssemblyError(f"bad assembly item {item!r}")
    return a.assemble()
