"""Bytecode disassembler — debugging/tooling companion to the assembler.

``disassemble`` walks code the same way the interpreter's jump-dest scan
does: PUSH immediates are consumed as data; anything not in the opcode
table is rendered as ``INVALID(0xXX)``.  ``format_disassembly`` renders a
listing with program counters, which the test-suite and docs use to make
contract bytecode inspectable.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.evm.opcodes import OPCODES

__all__ = ["Instruction", "disassemble", "format_disassembly"]


class Instruction(NamedTuple):
    """One decoded instruction."""

    pc: int
    name: str
    immediate: Optional[bytes]  # PUSH payload (possibly truncated at EOF)

    def render(self) -> str:
        if self.immediate is not None:
            return f"{self.name} 0x{self.immediate.hex()}"
        return self.name


def disassemble(code: bytes) -> List[Instruction]:
    """Decode bytecode into a flat instruction list."""
    out: List[Instruction] = []
    i = 0
    n = len(code)
    while i < n:
        byte = code[i]
        op = OPCODES.get(byte)
        if op is None:
            out.append(Instruction(i, f"INVALID(0x{byte:02x})", None))
            i += 1
            continue
        if 0x60 <= byte <= 0x7F:
            width = byte - 0x60 + 1
            immediate = code[i + 1 : i + 1 + width]
            out.append(Instruction(i, op.name, immediate))
            i += 1 + width
        else:
            out.append(Instruction(i, op.name, None))
            i += 1
    return out


def format_disassembly(code: bytes, *, show_jumpdests: bool = True) -> str:
    """Render a listing; jump destinations are marked for readability."""
    lines = []
    for ins in disassemble(code):
        marker = ">" if show_jumpdests and ins.name == "JUMPDEST" else " "
        lines.append(f"{marker}{ins.pc:5d}  {ins.render()}")
    return "\n".join(lines) + ("\n" if lines else "")


def reassembles_identically(code: bytes) -> bool:
    """Check disassemble→reassemble is the identity (tooling sanity)."""
    out = bytearray()
    for ins in disassemble(code):
        if ins.name.startswith("INVALID"):
            out.append(int(ins.name[10:-1], 16))
            continue
        from repro.evm.opcodes import opcode_by_name

        out.append(opcode_by_name(ins.name).code)
        if ins.immediate is not None:
            out += ins.immediate
    return bytes(out) == code
