"""Gas accounting: schedule constants and dynamic cost helpers.

Static per-opcode gas lives in the opcode table; this module holds the
dynamic parts (SSTORE, SHA3 words, memory expansion, copies, calls,
transaction intrinsic gas) and the :class:`GasSchedule` bundle so
experiments can vary the schedule (the validator's scheduler quality
depends on how well gas predicts execution time, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GasSchedule", "DEFAULT_GAS_SCHEDULE", "OutOfGas", "intrinsic_gas"]


class OutOfGas(Exception):
    """Execution ran out of gas; the current frame reverts."""


@dataclass(frozen=True)
class GasSchedule:
    """Gas constants (Geth v1.10-era mainnet values, pre-access-lists)."""

    tx_base: int = 21000
    tx_create: int = 32000
    tx_data_zero: int = 4
    tx_data_nonzero: int = 16

    sstore_set: int = 20000  # zero -> nonzero
    sstore_reset: int = 5000  # nonzero -> anything
    sstore_noop: int = 800  # value unchanged
    sstore_clear_refund: int = 15000  # nonzero -> zero refund
    #: refunds are capped to gas_used / refund_quotient (pre-London: 2)
    refund_quotient: int = 2

    sha3_word: int = 6
    copy_word: int = 3
    exp_byte: int = 50
    log_data_byte: int = 8

    memory_word: int = 3
    memory_quad_divisor: int = 512

    call_value_transfer: int = 9000
    call_new_account: int = 25000
    call_stipend: int = 2300
    call_gas_retention: int = 64  # caller keeps 1/64 of remaining gas

    def memory_cost(self, words: int) -> int:
        """Total cost of having ``words`` 32-byte words of memory."""
        return self.memory_word * words + (words * words) // self.memory_quad_divisor

    def memory_expansion_cost(self, current_words: int, new_words: int) -> int:
        if new_words <= current_words:
            return 0
        return self.memory_cost(new_words) - self.memory_cost(current_words)

    def sha3_cost(self, length: int) -> int:
        """Dynamic part of SHA3 over ``length`` bytes."""
        return self.sha3_word * ((length + 31) // 32)

    def copy_cost(self, length: int) -> int:
        return self.copy_word * ((length + 31) // 32)

    def sstore_cost(self, current: int, new: int) -> int:
        if current == new:
            return self.sstore_noop
        if current == 0:
            return self.sstore_set
        return self.sstore_reset

    def exp_cost(self, exponent: int) -> int:
        if exponent == 0:
            return 0
        return self.exp_byte * ((exponent.bit_length() + 7) // 8)

    def max_call_gas(self, remaining: int) -> int:
        """EIP-150: a call may receive at most 63/64 of remaining gas."""
        return remaining - remaining // self.call_gas_retention


DEFAULT_GAS_SCHEDULE = GasSchedule()


def intrinsic_gas(schedule: GasSchedule, data: bytes, is_create: bool) -> int:
    """Up-front gas charged before any bytecode executes (yellow paper G_tx)."""
    gas = schedule.tx_base
    if is_create:
        gas += schedule.tx_create
    for byte in data:
        gas += schedule.tx_data_nonzero if byte else schedule.tx_data_zero
    return gas
