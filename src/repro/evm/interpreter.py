"""The EVM interpreter: message execution, gas accounting, tracing.

The interpreter executes bytecode against any object implementing the
StateDB interface (``get_balance`` / ``set_storage`` / ``snapshot`` /
``revert_to`` ...), which is what lets the same machine run in every
execution context the paper distinguishes:

* serial baseline execution over a :class:`~repro.state.statedb.StateDB`;
* proposer OCC execution over an
  :class:`~repro.state.versioned.OCCStateView` snapshot;
* validator re-execution over a recording wrapper that captures the
  read/write sets Algorithm 2 verifies.

Failure semantics follow the yellow paper: a failing frame (out of gas,
stack error, invalid jump, write protection) consumes its gas and reverts
its state changes; ``REVERT`` reverts state but returns data and leaves the
remaining gas intact; errors never propagate as Python exceptions past the
frame boundary except :class:`InvalidTransaction` for un-includable
transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.hashing import keccak
from repro.common.rlp import rlp_encode
from repro.common.types import (
    Address,
    U256_MASK,
    signed_to_u256,
    u256_add,
    u256_div,
    u256_exp,
    u256_mod,
    u256_mul,
    u256_sub,
    u256_to_signed,
)
from repro.evm.gas import DEFAULT_GAS_SCHEDULE, GasSchedule, OutOfGas, intrinsic_gas
from repro.evm.memory import Memory
from repro.evm.opcodes import OPCODES
from repro.evm.stack import Stack, StackError
from repro.simcore.costmodel import TraceCosts

__all__ = [
    "EVM",
    "EVMConfig",
    "ExecutionContext",
    "Message",
    "MessageResult",
    "TxResult",
    "Log",
    "InvalidTransaction",
]


class InvalidTransaction(Exception):
    """Transaction cannot be included at all (bad nonce, unaffordable)."""


class _FrameFailure(Exception):
    """Internal: aborts the current frame, consuming its gas."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Revert(Exception):
    """Internal: REVERT opcode — state rolls back, gas is kept."""

    def __init__(self, output: bytes) -> None:
        super().__init__("revert")
        self.output = output


@dataclass(frozen=True)
class ExecutionContext:
    """Block-level execution environment."""

    block_number: int = 0
    timestamp: int = 0
    coinbase: Address = Address(b"\x00" * 20)
    gas_limit: int = 30_000_000
    chain_id: int = 1
    #: hashes of recent ancestor blocks for the BLOCKHASH opcode, keyed by
    #: block number (Ethereum exposes the latest 256)
    recent_block_hashes: Tuple[Tuple[int, bytes], ...] = ()

    def block_hash(self, number: int) -> int:
        for n, h in self.recent_block_hashes:
            if n == number:
                return int.from_bytes(h, "big")
        return 0


@dataclass(frozen=True)
class Message:
    """One message call (top-level transaction or internal CALL)."""

    sender: Address
    to: Optional[Address]  # None => contract creation
    value: int
    data: bytes
    gas: int
    #: CREATE2 salt; None selects nonce-based CREATE addressing
    create2_salt: Optional[int] = None


@dataclass(frozen=True)
class Log:
    address: Address
    topics: Tuple[int, ...]
    data: bytes


@dataclass
class MessageResult:
    success: bool
    output: bytes
    gas_left: int
    logs: List[Log] = field(default_factory=list)
    error: Optional[str] = None
    created: Optional[Address] = None


@dataclass
class TxResult:
    """Outcome of applying one transaction.

    ``trace`` summarises the executed work for the simulated cost model;
    ``success`` is False for transactions that executed but reverted or ran
    out of gas (they are still included in blocks and charged)."""

    success: bool
    gas_used: int
    output: bytes
    logs: List[Log]
    error: Optional[str]
    trace: TraceCosts
    created: Optional[Address] = None
    fee: int = 0


@dataclass(frozen=True)
class EVMConfig:
    """Interpreter policy knobs.

    ``defer_coinbase`` matters for parallelism: crediting the fee to the
    coinbase inside each transaction would make *every* pair of
    transactions conflict on the coinbase balance.  Like other parallel-EVM
    prototypes, fees are aggregated outside the per-transaction write set
    and credited once at block sealing.
    """

    schedule: GasSchedule = DEFAULT_GAS_SCHEDULE
    max_call_depth: int = 16
    defer_coinbase: bool = True


@dataclass
class _TxEnv:
    origin: Address
    gas_price: int
    #: gas-refund ledger (SSTORE clears); entries from reverted frames are
    #: discarded, mirroring geth's journaled refund counter
    refunds: List[int] = field(default_factory=list)


class _Frame:
    __slots__ = (
        "stack",
        "memory",
        "pc",
        "code",
        "msg",
        "address",
        "gas",
        "returndata",
        "output",
        "jumpdests",
        "logs",
        "static",
    )

    def __init__(self, msg: Message, code: bytes, address: Address, static: bool) -> None:
        self.stack = Stack()
        self.memory = Memory()
        self.pc = 0
        self.code = code
        self.msg = msg
        self.address = address
        self.gas = msg.gas
        self.returndata = b""  # output of the most recent child call
        self.output = b""  # this frame's own return value
        self.jumpdests = _valid_jumpdests(code)
        self.logs: List[Log] = []
        self.static = static

    def use_gas(self, amount: int) -> None:
        if amount > self.gas:
            self.gas = 0
            raise OutOfGas(f"need {amount} gas")
        self.gas -= amount


@lru_cache(maxsize=4096)
def _valid_jumpdests(code: bytes) -> frozenset:
    """Positions of JUMPDEST bytes that are not PUSH immediates."""
    dests = set()
    i = 0
    n = len(code)
    while i < n:
        op = code[i]
        if op == 0x5B:
            dests.add(i)
            i += 1
        elif 0x60 <= op <= 0x7F:
            i += 2 + (op - 0x60)
        else:
            i += 1
    return frozenset(dests)


def _address_from_word(word: int) -> Address:
    return Address((word & ((1 << 160) - 1)).to_bytes(20, "big"))


def contract_address(sender: Address, nonce: int) -> Address:
    """CREATE address derivation: keccak(rlp([sender, nonce]))[12:]."""
    return Address(keccak(rlp_encode([bytes(sender), nonce]))[12:])


def contract_address2(sender: Address, salt: int, initcode: bytes) -> Address:
    """CREATE2 (EIP-1014): keccak(0xff ++ sender ++ salt ++ keccak(initcode))[12:].

    The address depends only on the deployer, salt and code — the
    counterfactual-deployment primitive."""
    return Address(
        keccak(
            b"\xff" + bytes(sender) + salt.to_bytes(32, "big") + keccak(initcode)
        )[12:]
    )


class EVM:
    """The virtual machine.  Stateless between calls; all world state lives
    in the state object passed to each entry point."""

    def __init__(self, config: Optional[EVMConfig] = None) -> None:
        self.config = config or EVMConfig()
        self._dispatch = _build_dispatch()

    # ------------------------------------------------------------------ #
    # transaction entry point                                            #
    # ------------------------------------------------------------------ #

    def apply_transaction(self, state, tx, ctx: ExecutionContext) -> TxResult:
        """Validate and execute one transaction against ``state``.

        Raises :class:`InvalidTransaction` for transactions that may not be
        included (wrong nonce, unaffordable, intrinsic gas above limit);
        otherwise always returns a :class:`TxResult` (``success=False`` for
        reverted/out-of-gas executions) with the sender charged.
        """
        schedule = self.config.schedule
        trace: Dict[str, int] = {}
        sender = tx.sender

        if state.get_nonce(sender) != tx.nonce:
            raise InvalidTransaction(
                f"nonce mismatch: tx {tx.nonce}, account {state.get_nonce(sender)}"
            )
        is_create = tx.to is None
        ig = intrinsic_gas(schedule, tx.data, is_create)
        if ig > tx.gas_limit:
            raise InvalidTransaction(f"intrinsic gas {ig} exceeds limit {tx.gas_limit}")
        upfront = tx.gas_limit * tx.gas_price
        if state.get_balance(sender) < upfront + tx.value:
            raise InvalidTransaction("insufficient funds for gas * price + value")

        state.increment_nonce(sender)
        if upfront:
            state.sub_balance(sender, upfront)

        env = _TxEnv(origin=sender, gas_price=tx.gas_price)
        msg = Message(
            sender=sender,
            to=tx.to,
            value=tx.value,
            data=tx.data,
            gas=tx.gas_limit - ig,
        )
        result = self._execute_message(state, msg, env, ctx, trace, depth=0)

        gas_used = tx.gas_limit - result.gas_left
        if result.success and env.refunds:
            # EIP-3529-era semantics predate the paper; we keep the
            # pre-London cap: refund at most half the gas consumed
            gas_refund = min(sum(env.refunds), gas_used // schedule.refund_quotient)
            gas_used -= gas_refund
        refund = (tx.gas_limit - gas_used) * tx.gas_price
        if refund:
            state.add_balance(sender, refund)
        fee = gas_used * tx.gas_price
        if fee and not self.config.defer_coinbase:
            state.add_balance(ctx.coinbase, fee)

        return TxResult(
            success=result.success,
            gas_used=gas_used,
            output=result.output,
            logs=result.logs if result.success else [],
            error=result.error,
            trace=TraceCosts(trace, gas_used=gas_used),
            created=result.created,
            fee=fee,
        )

    def estimate_gas(self, state_snapshot, tx, ctx: ExecutionContext) -> int:
        """Binary-search the lowest gas limit at which ``tx`` succeeds.

        The eth_estimateGas pattern: execution is retried against fresh
        overlays of ``state_snapshot`` (a committed StateSnapshot), so the
        caller's state is never touched.  Raises
        :class:`InvalidTransaction` if the transaction cannot succeed even
        at the block gas limit.
        """
        from repro.state.statedb import StateDB

        import dataclasses

        def succeeds(gas_limit: int) -> bool:
            probe = dataclasses.replace(tx, gas_limit=gas_limit)
            try:
                result = self.apply_transaction(StateDB(state_snapshot), probe, ctx)
            except InvalidTransaction:
                return False
            return result.success

        hi = ctx.gas_limit
        if not succeeds(hi):
            raise InvalidTransaction("transaction fails even at the block gas limit")
        lo = intrinsic_gas(self.config.schedule, tx.data, tx.to is None)
        while lo < hi:
            mid = (lo + hi) // 2
            if succeeds(mid):
                hi = mid
            else:
                lo = mid + 1
        return hi

    # ------------------------------------------------------------------ #
    # message execution                                                  #
    # ------------------------------------------------------------------ #

    def _execute_message(
        self,
        state,
        msg: Message,
        env: _TxEnv,
        ctx: ExecutionContext,
        trace: Dict[str, int],
        depth: int,
        static: bool = False,
    ) -> MessageResult:
        if depth > self.config.max_call_depth:
            return MessageResult(False, b"", 0, error="call depth exceeded")

        mark = state.snapshot()

        if msg.to is None:
            return self._execute_create(state, msg, env, ctx, trace, depth, mark)

        # value transfer (balance checked by callers; defensive check here)
        if msg.value:
            if state.get_balance(msg.sender) < msg.value:
                state.revert_to(mark)
                return MessageResult(False, b"", msg.gas, error="insufficient balance")
            state.sub_balance(msg.sender, msg.value)
            state.add_balance(msg.to, msg.value)
            trace["transfer"] = trace.get("transfer", 0) + 1

        code = state.get_code(msg.to)
        if not code:
            return MessageResult(True, b"", msg.gas)

        frame = _Frame(msg, code, msg.to, static)
        return self._run_frame(state, frame, env, ctx, trace, depth, mark)

    def _execute_create(
        self, state, msg: Message, env, ctx, trace, depth: int, mark: int
    ) -> MessageResult:
        if msg.create2_salt is not None:
            new_address = contract_address2(msg.sender, msg.create2_salt, msg.data)
            if depth > 0:
                state.increment_nonce(msg.sender)
        elif depth == 0:
            # the transaction-level nonce increment already happened, and the
            # address derives from the pre-increment nonce (yellow paper)
            new_address = contract_address(msg.sender, state.get_nonce(msg.sender) - 1)
        else:
            new_address = contract_address(msg.sender, state.get_nonce(msg.sender))
            state.increment_nonce(msg.sender)
        if state.get_code(new_address):
            state.revert_to(mark)
            return MessageResult(False, b"", 0, error="address collision")
        trace["create"] = trace.get("create", 0) + 1
        state.create_account(new_address)
        if msg.value:
            if state.get_balance(msg.sender) < msg.value:
                state.revert_to(mark)
                return MessageResult(False, b"", msg.gas, error="insufficient balance")
            state.sub_balance(msg.sender, msg.value)
            state.add_balance(new_address, msg.value)
            trace["transfer"] = trace.get("transfer", 0) + 1

        init_msg = Message(msg.sender, new_address, 0, b"", msg.gas)
        frame = _Frame(init_msg, msg.data, new_address, static=False)
        # initcode reads calldata of the outer message per convention: we
        # pass empty data; deployment parameters are baked into initcode.
        result = self._run_frame(state, frame, env, ctx, trace, depth, mark)
        if not result.success:
            return MessageResult(
                False, result.output, result.gas_left, error=result.error
            )
        deposit_gas = 200 * len(result.output)
        if deposit_gas > result.gas_left:
            state.revert_to(mark)
            return MessageResult(False, b"", 0, error="code deposit out of gas")
        state.set_code(new_address, result.output)
        return MessageResult(
            True,
            b"",
            result.gas_left - deposit_gas,
            logs=result.logs,
            created=new_address,
        )

    def _run_frame(
        self, state, frame: _Frame, env, ctx, trace, depth: int, mark: int
    ) -> MessageResult:
        schedule = self.config.schedule
        dispatch = self._dispatch
        code = frame.code
        code_len = len(code)
        refund_mark = len(env.refunds)
        try:
            while True:
                if frame.pc >= code_len:
                    break  # implicit STOP
                opbyte = code[frame.pc]
                op = OPCODES.get(opbyte)
                if op is None:
                    raise _FrameFailure(f"invalid opcode 0x{opbyte:02x}")
                trace[op.category] = trace.get(op.category, 0) + 1
                if op.gas:
                    frame.use_gas(op.gas)
                frame.pc += 1
                handler = dispatch.get(opbyte)
                if handler is None:
                    # data-less simple ops handled inline below
                    raise AssertionError(f"no handler for {op.name}")
                stop = handler(self, state, frame, env, ctx, trace, depth, schedule)
                if stop is not None:
                    if stop == "stop":
                        break
                    if stop == "return":
                        break
            return MessageResult(True, frame.output, frame.gas, logs=frame.logs)
        except _Revert as rv:
            state.revert_to(mark)
            del env.refunds[refund_mark:]
            return MessageResult(False, rv.output, frame.gas, error="revert")
        except (OutOfGas, StackError, _FrameFailure, MemoryError, ValueError) as exc:
            state.revert_to(mark)
            del env.refunds[refund_mark:]
            return MessageResult(False, b"", 0, error=str(exc) or type(exc).__name__)


# ---------------------------------------------------------------------- #
# opcode handlers                                                        #
# ---------------------------------------------------------------------- #

Handler = Callable


def _build_dispatch() -> Dict[int, Handler]:
    d: Dict[int, Handler] = {}

    def h(name: str):
        code = next(op.code for op in OPCODES.values() if op.name == name)

        def register(fn):
            d[code] = fn
            return fn

        return register

    # --- halt ---------------------------------------------------------- #

    @h("STOP")
    def stop(evm, state, f, env, ctx, trace, depth, sch):
        f.output = b""
        return "stop"

    @h("RETURN")
    def ret(evm, state, f, env, ctx, trace, depth, sch):
        offset, size = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, size)))
        f.output = f.memory.read(offset, size)
        return "return"

    @h("REVERT")
    def revert(evm, state, f, env, ctx, trace, depth, sch):
        offset, size = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, size)))
        raise _Revert(f.memory.read(offset, size))

    # --- arithmetic ----------------------------------------------------- #

    @h("ADD")
    def add(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(u256_add(f.stack.pop(), f.stack.pop()))

    @h("MUL")
    def mul(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(u256_mul(f.stack.pop(), f.stack.pop()))

    @h("SUB")
    def sub(evm, state, f, env, ctx, trace, depth, sch):
        a, b = f.stack.pop(), f.stack.pop()
        f.stack.push(u256_sub(a, b))

    @h("DIV")
    def div(evm, state, f, env, ctx, trace, depth, sch):
        a, b = f.stack.pop(), f.stack.pop()
        f.stack.push(u256_div(a, b))

    @h("SDIV")
    def sdiv(evm, state, f, env, ctx, trace, depth, sch):
        a, b = u256_to_signed(f.stack.pop()), u256_to_signed(f.stack.pop())
        if b == 0:
            f.stack.push(0)
        else:
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            f.stack.push(signed_to_u256(q))

    @h("MOD")
    def mod(evm, state, f, env, ctx, trace, depth, sch):
        a, b = f.stack.pop(), f.stack.pop()
        f.stack.push(u256_mod(a, b))

    @h("SMOD")
    def smod(evm, state, f, env, ctx, trace, depth, sch):
        a, b = u256_to_signed(f.stack.pop()), u256_to_signed(f.stack.pop())
        if b == 0:
            f.stack.push(0)
        else:
            r = abs(a) % abs(b)
            if a < 0:
                r = -r
            f.stack.push(signed_to_u256(r))

    @h("ADDMOD")
    def addmod(evm, state, f, env, ctx, trace, depth, sch):
        a, b, n = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.stack.push(0 if n == 0 else (a + b) % n)

    @h("MULMOD")
    def mulmod(evm, state, f, env, ctx, trace, depth, sch):
        a, b, n = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.stack.push(0 if n == 0 else (a * b) % n)

    @h("EXP")
    def exp(evm, state, f, env, ctx, trace, depth, sch):
        base, exponent = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.exp_cost(exponent))
        f.stack.push(u256_exp(base, exponent))

    @h("SIGNEXTEND")
    def signextend(evm, state, f, env, ctx, trace, depth, sch):
        b, x = f.stack.pop(), f.stack.pop()
        if b >= 31:
            f.stack.push(x)
        else:
            bit = 8 * b + 7
            mask = (1 << (bit + 1)) - 1
            if x & (1 << bit):
                f.stack.push(x | (U256_MASK ^ mask))
            else:
                f.stack.push(x & mask)

    # --- comparison / bitwise -------------------------------------------- #

    @h("LT")
    def lt(evm, state, f, env, ctx, trace, depth, sch):
        a, b = f.stack.pop(), f.stack.pop()
        f.stack.push(1 if a < b else 0)

    @h("GT")
    def gt(evm, state, f, env, ctx, trace, depth, sch):
        a, b = f.stack.pop(), f.stack.pop()
        f.stack.push(1 if a > b else 0)

    @h("SLT")
    def slt(evm, state, f, env, ctx, trace, depth, sch):
        a, b = u256_to_signed(f.stack.pop()), u256_to_signed(f.stack.pop())
        f.stack.push(1 if a < b else 0)

    @h("SGT")
    def sgt(evm, state, f, env, ctx, trace, depth, sch):
        a, b = u256_to_signed(f.stack.pop()), u256_to_signed(f.stack.pop())
        f.stack.push(1 if a > b else 0)

    @h("EQ")
    def eq(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(1 if f.stack.pop() == f.stack.pop() else 0)

    @h("ISZERO")
    def iszero(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(1 if f.stack.pop() == 0 else 0)

    @h("AND")
    def and_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.stack.pop() & f.stack.pop())

    @h("OR")
    def or_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.stack.pop() | f.stack.pop())

    @h("XOR")
    def xor(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.stack.pop() ^ f.stack.pop())

    @h("NOT")
    def not_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push((~f.stack.pop()) & U256_MASK)

    @h("BYTE")
    def byte_(evm, state, f, env, ctx, trace, depth, sch):
        i, x = f.stack.pop(), f.stack.pop()
        f.stack.push((x >> (8 * (31 - i))) & 0xFF if i < 32 else 0)

    @h("SHL")
    def shl(evm, state, f, env, ctx, trace, depth, sch):
        shift, value = f.stack.pop(), f.stack.pop()
        f.stack.push((value << shift) & U256_MASK if shift < 256 else 0)

    @h("SHR")
    def shr(evm, state, f, env, ctx, trace, depth, sch):
        shift, value = f.stack.pop(), f.stack.pop()
        f.stack.push(value >> shift if shift < 256 else 0)

    @h("SAR")
    def sar(evm, state, f, env, ctx, trace, depth, sch):
        shift, value = f.stack.pop(), u256_to_signed(f.stack.pop())
        if shift >= 256:
            f.stack.push(0 if value >= 0 else U256_MASK)
        else:
            f.stack.push(signed_to_u256(value >> shift))

    # --- hashing ---------------------------------------------------------- #

    @h("SHA3")
    def sha3(evm, state, f, env, ctx, trace, depth, sch):
        offset, size = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.sha3_cost(size))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, size)))
        trace["sha3_word"] = trace.get("sha3_word", 0) + (size + 31) // 32
        f.stack.push(int.from_bytes(keccak(f.memory.read(offset, size)), "big"))

    # --- environment -------------------------------------------------------- #

    @h("ADDRESS")
    def address(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.address.to_int())

    @h("BALANCE")
    def balance(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(state.get_balance(_address_from_word(f.stack.pop())))

    @h("SELFBALANCE")
    def selfbalance(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(state.get_balance(f.address))

    @h("EXTCODEHASH")
    def extcodehash(evm, state, f, env, ctx, trace, depth, sch):
        code = state.get_code(_address_from_word(f.stack.pop()))
        f.stack.push(int.from_bytes(keccak(code), "big") if code else 0)

    @h("ORIGIN")
    def origin(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(env.origin.to_int())

    @h("CALLER")
    def caller(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.msg.sender.to_int())

    @h("CALLVALUE")
    def callvalue(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.msg.value)

    @h("CALLDATALOAD")
    def calldataload(evm, state, f, env, ctx, trace, depth, sch):
        offset = f.stack.pop()
        data = f.msg.data[offset : offset + 32]
        f.stack.push(int.from_bytes(data.ljust(32, b"\x00"), "big"))

    @h("CALLDATASIZE")
    def calldatasize(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(len(f.msg.data))

    @h("CALLDATACOPY")
    def calldatacopy(evm, state, f, env, ctx, trace, depth, sch):
        dst, src, size = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.use_gas(sch.copy_cost(size))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(dst, size)))
        data = f.msg.data[src : src + size].ljust(size, b"\x00")
        f.memory.write(dst, data)

    @h("CODESIZE")
    def codesize(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(len(f.code))

    @h("CODECOPY")
    def codecopy(evm, state, f, env, ctx, trace, depth, sch):
        dst, src, size = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.use_gas(sch.copy_cost(size))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(dst, size)))
        data = f.code[src : src + size].ljust(size, b"\x00")
        f.memory.write(dst, data)

    @h("GASPRICE")
    def gasprice(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(env.gas_price)

    @h("EXTCODESIZE")
    def extcodesize(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(len(state.get_code(_address_from_word(f.stack.pop()))))

    @h("EXTCODECOPY")
    def extcodecopy(evm, state, f, env, ctx, trace, depth, sch):
        addr = _address_from_word(f.stack.pop())
        dst, src, size = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.use_gas(sch.copy_cost(size))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(dst, size)))
        code = state.get_code(addr)
        f.memory.write(dst, code[src : src + size].ljust(size, b"\x00"))

    @h("BLOCKHASH")
    def blockhash(evm, state, f, env, ctx, trace, depth, sch):
        number = f.stack.pop()
        if number >= ctx.block_number or ctx.block_number - number > 256:
            f.stack.push(0)
        else:
            f.stack.push(ctx.block_hash(number))

    @h("RETURNDATASIZE")
    def returndatasize(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(len(f.returndata))

    @h("RETURNDATACOPY")
    def returndatacopy(evm, state, f, env, ctx, trace, depth, sch):
        dst, src, size = f.stack.pop(), f.stack.pop(), f.stack.pop()
        if src + size > len(f.returndata):
            raise _FrameFailure("returndata out of bounds")
        f.use_gas(sch.copy_cost(size))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(dst, size)))
        f.memory.write(dst, f.returndata[src : src + size])

    @h("COINBASE")
    def coinbase(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(ctx.coinbase.to_int())

    @h("TIMESTAMP")
    def timestamp(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(ctx.timestamp)

    @h("NUMBER")
    def number(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(ctx.block_number)

    @h("GASLIMIT")
    def gaslimit(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(ctx.gas_limit)

    @h("CHAINID")
    def chainid(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(ctx.chain_id)

    # --- stack / memory / storage ------------------------------------------ #

    @h("POP")
    def pop_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.pop()

    @h("MLOAD")
    def mload(evm, state, f, env, ctx, trace, depth, sch):
        offset = f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, 32)))
        f.stack.push(f.memory.read_word(offset))

    @h("MSTORE")
    def mstore(evm, state, f, env, ctx, trace, depth, sch):
        offset, value = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, 32)))
        f.memory.write_word(offset, value)

    @h("MSTORE8")
    def mstore8(evm, state, f, env, ctx, trace, depth, sch):
        offset, value = f.stack.pop(), f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, 1)))
        f.memory.write_byte(offset, value)

    @h("SLOAD")
    def sload(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(state.get_storage(f.address, f.stack.pop()))

    @h("SSTORE")
    def sstore(evm, state, f, env, ctx, trace, depth, sch):
        if f.static:
            raise _FrameFailure("write protection: SSTORE in static call")
        slot, value = f.stack.pop(), f.stack.pop()
        current = state.get_storage(f.address, slot)
        f.use_gas(sch.sstore_cost(current, value))
        if current != 0 and value == 0:
            env.refunds.append(sch.sstore_clear_refund)
        state.set_storage(f.address, slot, value)

    @h("JUMP")
    def jump(evm, state, f, env, ctx, trace, depth, sch):
        dest = f.stack.pop()
        if dest not in f.jumpdests:
            raise _FrameFailure(f"invalid jump destination {dest}")
        f.pc = dest

    @h("JUMPI")
    def jumpi(evm, state, f, env, ctx, trace, depth, sch):
        dest, cond = f.stack.pop(), f.stack.pop()
        if cond:
            if dest not in f.jumpdests:
                raise _FrameFailure(f"invalid jump destination {dest}")
            f.pc = dest

    @h("PC")
    def pc_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.pc - 1)

    @h("MSIZE")
    def msize(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(len(f.memory))

    @h("GAS")
    def gas_(evm, state, f, env, ctx, trace, depth, sch):
        f.stack.push(f.gas)

    @h("JUMPDEST")
    def jumpdest(evm, state, f, env, ctx, trace, depth, sch):
        return None

    # --- calls / create ------------------------------------------------------ #

    def _do_create(evm, state, f, env, ctx, trace, depth, sch, salt):
        if f.static:
            raise _FrameFailure("write protection: CREATE in static call")
        value, offset, size = f.stack.pop(), f.stack.pop(), f.stack.pop()
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, size)))
        initcode = f.memory.read(offset, size)
        if salt is not None:
            f.use_gas(sch.sha3_cost(len(initcode)))  # address-derivation hash
        gas_for_child = sch.max_call_gas(f.gas)
        f.use_gas(gas_for_child)
        msg = Message(
            f.address, None, value, initcode, gas_for_child, create2_salt=salt
        )
        result = evm._execute_message(state, msg, env, ctx, trace, depth + 1)
        f.gas += result.gas_left
        f.returndata = b"" if result.success else result.output
        f.logs.extend(result.logs)
        f.stack.push(result.created.to_int() if result.created else 0)

    @h("CREATE")
    def create(evm, state, f, env, ctx, trace, depth, sch):
        _do_create(evm, state, f, env, ctx, trace, depth, sch, salt=None)

    @h("CREATE2")
    def create2(evm, state, f, env, ctx, trace, depth, sch):
        # stack: value, offset, size, salt  (salt deepest of the four)
        # pop order per spec: value, offset, size, salt — but _do_create
        # pops value/offset/size itself, so lift the salt out first by
        # reordering: CREATE2 pops value, offset, size, salt
        value, offset, size, salt = (
            f.stack.pop(),
            f.stack.pop(),
            f.stack.pop(),
            f.stack.pop(),
        )
        # re-push in _do_create's expected order
        f.stack.push(size)
        f.stack.push(offset)
        f.stack.push(value)
        _do_create(evm, state, f, env, ctx, trace, depth, sch, salt=salt)

    def _do_call(evm, state, f, env, ctx, trace, depth, sch, *, kind: str):
        stack = f.stack
        gas_req = stack.pop()
        to = _address_from_word(stack.pop())
        value = stack.pop() if kind == "call" else 0
        in_off, in_size = stack.pop(), stack.pop()
        out_off, out_size = stack.pop(), stack.pop()

        if value and f.static:
            raise _FrameFailure("write protection: value transfer in static call")

        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(in_off, in_size)))
        f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(out_off, out_size)))
        extra = 0
        if value:
            extra += sch.call_value_transfer
            if not state.account_exists(to):
                extra += sch.call_new_account
        f.use_gas(extra)

        gas_for_child = min(gas_req, sch.max_call_gas(f.gas))
        f.use_gas(gas_for_child)
        if value:
            gas_for_child += sch.call_stipend

        data = f.memory.read(in_off, in_size)

        if value and state.get_balance(f.address) < value:
            f.gas += gas_for_child
            f.returndata = b""
            stack.push(0)
            return

        if kind == "delegatecall":
            # runs callee code in *this* contract's storage context
            child_msg = Message(f.msg.sender, f.address, f.msg.value, data, gas_for_child)
            code = state.get_code(to)
            if not code:
                f.gas += gas_for_child
                f.returndata = b""
                stack.push(1)
                return
            child_frame = _Frame(child_msg, code, f.address, f.static)
            mark = state.snapshot()
            result = evm._run_frame(state, child_frame, env, ctx, trace, depth + 1, mark)
        else:
            sender = f.address
            child_msg = Message(sender, to, value, data, gas_for_child)
            result = evm._execute_message(
                state,
                child_msg,
                env,
                ctx,
                trace,
                depth + 1,
                static=f.static or kind == "staticcall",
            )

        f.gas += result.gas_left
        f.returndata = result.output
        if result.success:
            f.logs.extend(result.logs)
        if out_size and result.output:
            f.memory.write(out_off, result.output[:out_size])
        stack.push(1 if result.success else 0)

    @h("CALL")
    def call(evm, state, f, env, ctx, trace, depth, sch):
        _do_call(evm, state, f, env, ctx, trace, depth, sch, kind="call")

    @h("STATICCALL")
    def staticcall(evm, state, f, env, ctx, trace, depth, sch):
        _do_call(evm, state, f, env, ctx, trace, depth, sch, kind="staticcall")

    @h("DELEGATECALL")
    def delegatecall(evm, state, f, env, ctx, trace, depth, sch):
        _do_call(evm, state, f, env, ctx, trace, depth, sch, kind="delegatecall")

    # --- push / dup / swap / log --------------------------------------------- #

    def make_push(n: int):
        def push_n(evm, state, f, env, ctx, trace, depth, sch):
            data = f.code[f.pc : f.pc + n]
            f.pc += n
            f.stack.push(int.from_bytes(data.ljust(n, b"\x00"), "big"))

        return push_n

    for n in range(1, 33):
        d[0x60 + n - 1] = make_push(n)

    def make_dup(n: int):
        def dup_n(evm, state, f, env, ctx, trace, depth, sch):
            f.stack.dup(n)

        return dup_n

    for n in range(1, 17):
        d[0x80 + n - 1] = make_dup(n)

    def make_swap(n: int):
        def swap_n(evm, state, f, env, ctx, trace, depth, sch):
            f.stack.swap(n)

        return swap_n

    for n in range(1, 17):
        d[0x90 + n - 1] = make_swap(n)

    def make_log(n: int):
        def log_n(evm, state, f, env, ctx, trace, depth, sch):
            if f.static:
                raise _FrameFailure("write protection: LOG in static call")
            offset, size = f.stack.pop(), f.stack.pop()
            topics = tuple(f.stack.pop() for _ in range(n))
            f.use_gas(sch.log_data_byte * size)
            f.use_gas(sch.memory_expansion_cost(f.memory.words, _words(offset, size)))
            f.logs.append(Log(f.address, topics, f.memory.read(offset, size)))

        return log_n

    for n in range(5):
        d[0xA0 + n] = make_log(n)

    return d


def _words(offset: int, size: int) -> int:
    """Word count needed to cover a memory access (0 when size is 0)."""
    if size == 0:
        return 0
    return (offset + size + 31) // 32
