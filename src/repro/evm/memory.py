"""Byte-addressed, word-expanded EVM memory."""

from __future__ import annotations

__all__ = ["Memory"]

#: Hard cap on memory size so buggy bytecode cannot swallow the host's RAM;
#: quadratic gas makes anything near this unaffordable anyway.
MAX_MEMORY_BYTES = 1 << 24


class Memory:
    """Zero-initialised memory that grows in 32-byte words.

    ``touch`` returns the number of words after expansion so callers can
    charge the quadratic expansion gas *before* the access happens.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def words(self) -> int:
        return len(self._data) // 32

    def touch(self, offset: int, size: int) -> int:
        """Expand to cover ``[offset, offset+size)``; return new word count."""
        if size == 0:
            return self.words
        if offset < 0 or size < 0:
            raise ValueError("negative memory access")
        end = offset + size
        if end > MAX_MEMORY_BYTES:
            raise MemoryError(f"memory access beyond cap: {end} bytes")
        if end > len(self._data):
            new_len = ((end + 31) // 32) * 32
            self._data.extend(b"\x00" * (new_len - len(self._data)))
        return self.words

    def read(self, offset: int, size: int) -> bytes:
        if size == 0:
            return b""
        self.touch(offset, size)
        return bytes(self._data[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self.touch(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 32), "big")

    def write_word(self, offset: int, value: int) -> None:
        self.write(offset, value.to_bytes(32, "big"))

    def write_byte(self, offset: int, value: int) -> None:
        self.write(offset, bytes([value & 0xFF]))
