"""Opcode table: byte values, base gas, trace categories.

Gas values follow the Ethereum mainnet schedule circa the paper's
evaluation window (Geth v1.10, pre-Berlin access lists): VERYLOW=3, LOW=5,
SLOAD=800, SSTORE handled dynamically, CALL=700, SHA3=30+6/word.  The
``category`` drives the simulated cost model — storage ops are the
expensive classes (paper §4.3: "the most time-consuming operations, namely
SLOAD and SSTORE, have very high gas costs").
"""

from __future__ import annotations

from typing import Dict, NamedTuple

__all__ = ["Op", "OPCODES", "opcode_by_name", "PUSH1", "DUP1", "SWAP1", "LOG0"]


class Op(NamedTuple):
    code: int
    name: str
    gas: int
    pops: int
    pushes: int
    category: str


def _ops() -> Dict[int, Op]:
    table: Dict[int, Op] = {}

    def op(code: int, name: str, gas: int, pops: int, pushes: int, category: str):
        if code in table:
            raise ValueError(f"duplicate opcode 0x{code:02x}")
        table[code] = Op(code, name, gas, pops, pushes, category)

    # 0x00s: stop & arithmetic
    op(0x00, "STOP", 0, 0, 0, "base")
    op(0x01, "ADD", 3, 2, 1, "base")
    op(0x02, "MUL", 5, 2, 1, "arith")
    op(0x03, "SUB", 3, 2, 1, "base")
    op(0x04, "DIV", 5, 2, 1, "arith")
    op(0x05, "SDIV", 5, 2, 1, "arith")
    op(0x06, "MOD", 5, 2, 1, "arith")
    op(0x07, "SMOD", 5, 2, 1, "arith")
    op(0x08, "ADDMOD", 8, 3, 1, "arith")
    op(0x09, "MULMOD", 8, 3, 1, "arith")
    op(0x0A, "EXP", 10, 2, 1, "arith")  # + 50/byte dynamic
    op(0x0B, "SIGNEXTEND", 5, 2, 1, "arith")

    # 0x10s: comparison & bitwise
    op(0x10, "LT", 3, 2, 1, "base")
    op(0x11, "GT", 3, 2, 1, "base")
    op(0x12, "SLT", 3, 2, 1, "base")
    op(0x13, "SGT", 3, 2, 1, "base")
    op(0x14, "EQ", 3, 2, 1, "base")
    op(0x15, "ISZERO", 3, 1, 1, "base")
    op(0x16, "AND", 3, 2, 1, "base")
    op(0x17, "OR", 3, 2, 1, "base")
    op(0x18, "XOR", 3, 2, 1, "base")
    op(0x19, "NOT", 3, 1, 1, "base")
    op(0x1A, "BYTE", 3, 2, 1, "base")
    op(0x1B, "SHL", 3, 2, 1, "base")
    op(0x1C, "SHR", 3, 2, 1, "base")
    op(0x1D, "SAR", 3, 2, 1, "base")

    # 0x20s: hashing
    op(0x20, "SHA3", 30, 2, 1, "sha3")  # + 6/word dynamic

    # 0x30s: environment
    op(0x30, "ADDRESS", 2, 0, 1, "env")
    op(0x31, "BALANCE", 400, 1, 1, "balance")
    op(0x32, "ORIGIN", 2, 0, 1, "env")
    op(0x33, "CALLER", 2, 0, 1, "env")
    op(0x34, "CALLVALUE", 2, 0, 1, "env")
    op(0x35, "CALLDATALOAD", 3, 1, 1, "env")
    op(0x36, "CALLDATASIZE", 2, 0, 1, "env")
    op(0x37, "CALLDATACOPY", 3, 3, 0, "memory")  # + copy dynamic
    op(0x38, "CODESIZE", 2, 0, 1, "env")
    op(0x39, "CODECOPY", 3, 3, 0, "memory")  # + copy dynamic
    op(0x3A, "GASPRICE", 2, 0, 1, "env")
    op(0x3B, "EXTCODESIZE", 400, 1, 1, "balance")
    op(0x3C, "EXTCODECOPY", 400, 4, 0, "balance")  # + copy dynamic
    op(0x3D, "RETURNDATASIZE", 2, 0, 1, "env")
    op(0x3E, "RETURNDATACOPY", 3, 3, 0, "memory")
    op(0x3F, "EXTCODEHASH", 400, 1, 1, "balance")

    # 0x40s: block context
    op(0x40, "BLOCKHASH", 20, 1, 1, "env")
    op(0x41, "COINBASE", 2, 0, 1, "env")
    op(0x42, "TIMESTAMP", 2, 0, 1, "env")
    op(0x43, "NUMBER", 2, 0, 1, "env")
    op(0x45, "GASLIMIT", 2, 0, 1, "env")
    op(0x46, "CHAINID", 2, 0, 1, "env")
    op(0x47, "SELFBALANCE", 5, 0, 1, "balance")

    # 0x50s: stack/memory/storage/control
    op(0x50, "POP", 2, 1, 0, "base")
    op(0x51, "MLOAD", 3, 1, 1, "memory")
    op(0x52, "MSTORE", 3, 2, 0, "memory")
    op(0x53, "MSTORE8", 3, 2, 0, "memory")
    op(0x54, "SLOAD", 800, 1, 1, "storage_read")
    op(0x55, "SSTORE", 0, 2, 0, "storage_write")  # fully dynamic
    op(0x56, "JUMP", 8, 1, 0, "base")
    op(0x57, "JUMPI", 10, 2, 0, "base")
    op(0x58, "PC", 2, 0, 1, "base")
    op(0x59, "MSIZE", 2, 0, 1, "base")
    op(0x5A, "GAS", 2, 0, 1, "base")
    op(0x5B, "JUMPDEST", 1, 0, 0, "base")

    # 0x60-0x7f: PUSH1..PUSH32
    for n in range(1, 33):
        op(0x60 + n - 1, f"PUSH{n}", 3, 0, 1, "base")
    # 0x80-0x8f: DUP1..DUP16
    for n in range(1, 17):
        op(0x80 + n - 1, f"DUP{n}", 3, n, n + 1, "base")
    # 0x90-0x9f: SWAP1..SWAP16
    for n in range(1, 17):
        op(0x90 + n - 1, f"SWAP{n}", 3, n + 1, n + 1, "base")
    # 0xa0-0xa4: LOG0..LOG4
    for n in range(5):
        op(0xA0 + n, f"LOG{n}", 375 + 375 * n, 2 + n, 0, "log")

    # 0xf0s: system
    op(0xF0, "CREATE", 32000, 3, 1, "create")
    op(0xF1, "CALL", 700, 7, 1, "call")
    op(0xF3, "RETURN", 0, 2, 0, "base")
    op(0xF4, "DELEGATECALL", 700, 6, 1, "call")
    op(0xF5, "CREATE2", 32000, 4, 1, "create")
    op(0xFA, "STATICCALL", 700, 6, 1, "call")
    op(0xFD, "REVERT", 0, 2, 0, "base")

    return table


OPCODES: Dict[int, Op] = _ops()

_BY_NAME: Dict[str, Op] = {op.name: op for op in OPCODES.values()}

PUSH1 = _BY_NAME["PUSH1"].code
DUP1 = _BY_NAME["DUP1"].code
SWAP1 = _BY_NAME["SWAP1"].code
LOG0 = _BY_NAME["LOG0"].code


def opcode_by_name(name: str) -> Op:
    """Look up an opcode by mnemonic; raises KeyError for unknown names."""
    return _BY_NAME[name.upper()]
