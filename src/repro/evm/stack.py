"""The 256-bit operand stack (max depth 1024, yellow-paper limits)."""

from __future__ import annotations

from repro.common.types import U256_MASK

__all__ = ["Stack", "StackError"]

MAX_DEPTH = 1024


class StackError(Exception):
    """Underflow or overflow; the executing frame fails."""


class Stack:
    """Operand stack of u256 words.

    Values are plain ints already reduced into ``[0, 2**256)``; ``push``
    masks defensively so handler bugs cannot leak wide integers.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def push(self, value: int) -> None:
        if len(self._items) >= MAX_DEPTH:
            raise StackError("stack overflow")
        self._items.append(value & U256_MASK)

    def pop(self) -> int:
        if not self._items:
            raise StackError("stack underflow")
        return self._items.pop()

    def pop_n(self, n: int) -> list[int]:
        """Pop ``n`` items; result[0] is the top of stack."""
        if len(self._items) < n:
            raise StackError(f"stack underflow: need {n}, have {len(self._items)}")
        out = self._items[-n:][::-1]
        del self._items[-n:]
        return out

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top without popping."""
        if depth >= len(self._items):
            raise StackError("peek beyond stack depth")
        return self._items[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: push a copy of the n-th item (1-based from the top)."""
        if n > len(self._items):
            raise StackError(f"DUP{n} underflow")
        self.push(self._items[-n])

    def swap(self, n: int) -> None:
        """SWAPn: exchange the top with the (n+1)-th item."""
        if n + 1 > len(self._items):
            raise StackError(f"SWAP{n} underflow")
        items = self._items
        items[-1], items[-1 - n] = items[-1 - n], items[-1]
