"""Real-parallelism execution backends (serial | thread | process).

The simulator models lanes on a discrete-event clock; this package runs
the same Algorithm 1 / Algorithm 2 work on actual cores behind a small
:class:`~repro.exec.backend.ExecutionBackend` protocol, with commit
decisions kept deterministic (and therefore backend-independent) by
resolving all conflicts in the parent, in a fixed order.  See
ARCHITECTURE.md §"Real-parallelism execution backends".
"""

from repro.exec.backend import (
    BACKEND_CHOICES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_workers,
    get_backend,
)
from repro.exec.hooks import IdentityProbe, ScheduleProbe
from repro.exec.tasks import FootprintMiss, GuardedSnapshot, SliceSnapshot

__all__ = [
    "BACKEND_CHOICES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "default_workers",
    "FootprintMiss",
    "GuardedSnapshot",
    "SliceSnapshot",
    "ScheduleProbe",
    "IdentityProbe",
]
