"""Pluggable real-parallelism execution backends.

The discrete-event simulator (:mod:`repro.simcore`) *models* lanes; the
backends here run worker tasks on actual cores.  All three share one tiny
contract so the proposer/validator drivers in :mod:`repro.exec.proposing`
and :mod:`repro.exec.validating` are backend-agnostic:

* :meth:`ExecutionBackend.open` installs an immutable *shared* object that
  every task of the session may read (EVM config, base snapshot, context).
* :meth:`ExecutionBackend.map` runs ``fn(shared, payload)`` for each
  payload and returns the results **in payload order** — the drivers turn
  that ordering guarantee into deterministic, backend-independent commit
  decisions (conflict resolution always happens in the parent, in batch
  order, regardless of which worker finished first).

``SerialBackend`` is the reference implementation (plain loop),
``ThreadBackend`` shares the parent's snapshot read-only across a
``ThreadPoolExecutor`` (sound because OCC-WSI workers only *read* shared
state and buffer their writes locally; the GIL limits speedup for the
pure-Python EVM), and ``ProcessBackend`` ships pickled state to a
``ProcessPoolExecutor`` — the shared object travels once per worker via
the pool initializer, per-task payloads carry only small slices.

The sim-clock path is "just another backend": ``get_backend("sim")``
returns ``None`` and callers fall back to the event-loop simulation.
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "default_workers",
    "BACKEND_CHOICES",
]

#: CLI / config vocabulary; ``"sim"`` selects the simulated-clock path.
BACKEND_CHOICES: Tuple[str, ...] = ("sim", "serial", "thread", "process")

TaskFn = Callable[[Any, Any], Any]


def default_workers() -> int:
    """Worker count when the caller does not choose one."""
    return max(1, os.cpu_count() or 1)


class ExecutionBackend:
    """Common shape of the three real-parallelism backends.

    A backend is reusable across blocks.  ``open(shared)`` is idempotent
    while the shared object's identity is unchanged; installing a *new*
    shared object re-provisions workers (for ``ProcessBackend`` that means
    a new pool, because the old workers hold the old pickled state).
    """

    name: str = "?"
    #: Whether workers can dereference parent-process objects directly.
    #: Drivers use this to decide between passing references (cheap) and
    #: building pickle-able state slices (the process boundary).
    shares_memory: bool = True

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = max(1, int(workers if workers is not None else default_workers()))
        self._shared: Any = None

    # -- lifecycle ------------------------------------------------------- #

    def open(self, shared: Any) -> None:
        """Install the session's shared object (identity-checked, cheap)."""
        self._shared = shared

    def close(self) -> None:
        """Release worker resources (pools); safe to call repeatedly."""
        self._shared = None

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"

    # -- work ------------------------------------------------------------ #

    def map(self, fn: TaskFn, payloads: Sequence[Any]) -> List[Any]:
        """Run ``fn(shared, payload)`` per payload; results in payload order."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Reference semantics: the parent runs every task itself, in order."""

    name = "serial"
    shares_memory = True

    def __init__(self, workers: Optional[int] = None) -> None:
        # a serial backend has exactly one (the calling) worker; the
        # argument is accepted so sweeps can treat backends uniformly
        super().__init__(1)

    def map(self, fn: TaskFn, payloads: Sequence[Any]) -> List[Any]:
        shared = self._shared
        return [fn(shared, payload) for payload in payloads]


class ThreadBackend(ExecutionBackend):
    """``ThreadPoolExecutor`` over the parent's memory.

    Workers read the shared base snapshot directly (immutable during a
    ``map``) and buffer writes in task-local views, so no locking is
    needed.  The GIL serialises pure-Python bytecode, so this backend
    mostly helps when execution releases the GIL (I/O, C extensions); it
    exists as the cheap-to-adopt middle step and as a concurrency-safety
    testbed for the shared-snapshot discipline.
    """

    name = "thread"
    shares_memory = True

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def map(self, fn: TaskFn, payloads: Sequence[Any]) -> List[Any]:
        pool = self._ensure_pool()
        shared = self._shared
        return list(pool.map(functools.partial(fn, shared), payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


class ProcessBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` with pickled per-worker state.

    The shared object is shipped **once per worker** through the pool
    initializer (see :func:`repro.exec.tasks.install_shared`); task
    payloads must be small and pickle-able.  The EVM itself is *not*
    pickle-able (its dispatch table holds local closures) — workers
    rebuild it locally from the pickled :class:`~repro.evm.interpreter.
    EVMConfig` and cache it per process.

    Installing a different shared object tears the pool down: the old
    workers hold the old state, and re-initialising live workers is not
    something ``concurrent.futures`` supports.
    """

    name = "process"
    shares_memory = False

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def open(self, shared: Any) -> None:
        if self._pool is not None and self._shared is shared:
            return
        self.close()
        # imported here (not at module top) to keep backend.py importable
        # without dragging the whole execution stack in
        from repro.exec.tasks import install_shared

        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=install_shared,
            initargs=(shared,),
        )
        self._shared = shared

    def map(self, fn: TaskFn, payloads: Sequence[Any]) -> List[Any]:
        if self._pool is None:
            raise RuntimeError("ProcessBackend.map called before open()")
        from repro.exec.tasks import call_with_shared

        return list(self._pool.map(functools.partial(call_with_shared, fn), payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def get_backend(
    name: Optional[str], workers: Optional[int] = None
) -> Optional[ExecutionBackend]:
    """Factory: backend by name; ``None``/``"sim"`` selects the simulator."""
    if name is None or name == "sim":
        return None
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {', '.join(BACKEND_CHOICES)}"
        ) from None
    return cls(workers)
