"""Injectable yield points for the real-parallelism drivers.

The wave driver (:mod:`repro.exec.proposing`) and the component driver
(:mod:`repro.exec.validating`) make a small number of *scheduling
decisions* per run: how many transactions a wave pops, in which order a
wave's speculative results enter the commit section, how worker lanes are
ordered, and in which order a lane walks its components.  In production
every decision takes its deterministic default, which is what keeps
blocks bit-identical across backends.

A :class:`ScheduleProbe` turns each decision into a yield point the
concurrency-conformance fuzzer (:mod:`repro.check.fuzzer`) can steer:
the probe observes the decision's index and legal range and returns a
(possibly permuted) choice.  Any choice a probe can make corresponds to
a real interleaving some OS schedule could have produced — commit-order
permutations within a wave are exactly the outcomes of workers racing to
the critical section, and lane/component permutations are exactly the
outcomes of the pool handing tasks to differently-loaded threads.  The
conformance suite then asserts that *every* reachable interleaving
produces a block the serializability and differential oracles accept.

Probes must be deterministic functions of their constructor arguments:
the fuzzer replays and shrinks schedules by re-running them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["ScheduleProbe", "IdentityProbe", "apply_order"]


class ScheduleProbe:
    """Base schedule probe: every yield point takes its default.

    Subclasses override individual decisions.  The default implementations
    ARE the production behaviour — a driver running with an
    ``IdentityProbe`` must be byte-identical to one running with no probe
    at all (the determinism suite checks this).
    """

    def wave_width(self, wave_index: int, max_width: int) -> int:
        """How many ready transactions wave ``wave_index`` may pop (>=1)."""
        return max_width

    def wave_commit_order(self, wave_index: int, n: int) -> Sequence[int]:
        """Order in which a wave's ``n`` slots enter the commit section."""
        return range(n)

    def lane_order(self, n_lanes: int) -> Sequence[int]:
        """Order in which validator worker lanes are submitted to the pool."""
        return range(n_lanes)

    def component_order(self, lane_index: int, n: int) -> Sequence[int]:
        """Order in which one lane executes its ``n`` assigned components."""
        return range(n)

    # -- Block-STM collaborative scheduler (repro.core.blockstm) -------- #

    def blockstm_wave_width(self, wave_index: int, max_width: int) -> int:
        """How many runnable transactions a Block-STM wave may execute.

        A narrower wave models workers that were still busy (or had not
        yet been spawned) when the scheduler handed out this round of
        execution tasks.
        """
        return max_width

    def blockstm_exec_order(self, wave_index: int, n: int) -> Sequence[int]:
        """Order in which a wave considers its ``n`` runnable candidates.

        Block-STM workers grab (re-)execution tasks from a shared counter;
        any permutation of the runnable set corresponds to workers racing
        that counter in a different order.  Results are still applied and
        validated in preset serialization order, so every permutation must
        converge to the identical block (the conformance suite's claim).
        """
        return range(n)


#: Alias kept separate so call sites read as intent, not mechanism.
IdentityProbe = ScheduleProbe


def apply_order(order: Sequence[int], n: int) -> Optional[List[int]]:
    """Validate a probe-returned order as a permutation of ``range(n)``.

    Returns the order as a list, or ``None`` when the probe's answer is
    not a legal permutation (wrong length, duplicates, out of range) — the
    caller then falls back to the identity order rather than corrupting
    the driver's bookkeeping.  Tolerating malformed answers keeps shrunken
    fuzz schedules (whose recorded permutations may no longer match the
    replayed run's shape) replayable.
    """
    ordered = list(order)
    if len(ordered) != n or sorted(ordered) != list(range(n)):
        return None
    return ordered
