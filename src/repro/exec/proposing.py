"""Wave-based OCC-WSI proposing on real execution backends.

The simulated proposer (:mod:`repro.core.occ_wsi`) interleaves execution
and commit on a discrete-event clock; on real cores the same interleaving
would depend on OS scheduling and the block contents would differ run to
run.  This driver restructures Algorithm 1 into deterministic **waves**:

1. Pop up to ``config.lanes`` ready transactions (the *logical* wave
   width — deliberately independent of ``backend.workers``, which is a
   purely physical pool size, so every backend takes identical decisions).
2. Snapshot the committed state once (``snapshot_version`` + the
   committed-writes overlay) and execute the whole wave speculatively in
   parallel — each task is a pure function of (base, overlay, tx, ctx).
3. Back in the parent, walk the wave **in batch order** and apply
   Algorithm 1's commit rule per transaction: drop invalid, abort on a
   stale read (some earlier wave member wrote a key this one read —
   first-committer-wins), else commit and advance the reserve table.

Only intra-wave commits can conflict (the reserve table never exceeds the
wave-start version otherwise) and the first valid wave member always
commits, so the pool drains — same progress guarantee as the simulator.
The result is bit-identical block contents, state roots and abort/commit
decisions across serial, thread and process backends.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List

from repro.evm.interpreter import ExecutionContext
from repro.simcore.stats import RunStats
from repro.state.access import StateKey
from repro.state.statedb import StateSnapshot
from repro.state.versioned import MultiVersionStore
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

from repro.exec.backend import ExecutionBackend
from repro.exec.hooks import apply_order
from repro.exec.tasks import ProposeShared, ProposeTask, run_propose_task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.occ_wsi import OCCWSIProposer, ProposalResult

__all__ = ["propose_with_backend"]


def propose_with_backend(
    proposer: "OCCWSIProposer",
    base: StateSnapshot,
    pool: TxPool,
    ctx: ExecutionContext,
    backend: ExecutionBackend,
) -> "ProposalResult":
    """Run one block-building session on a real backend.

    Returns the same :class:`~repro.core.occ_wsi.ProposalResult` shape as
    the simulated path; timing fields (``commit_time``, ``makespan``) are
    real wall-clock microseconds instead of simulated ones.
    """
    from repro.core.occ_wsi import CommittedTx, ProposalResult

    cfg = proposer.config
    model = proposer.cost_model
    tracer = proposer.tracer
    trace_on = tracer.enabled
    metrics = proposer.metrics
    # conformance yield points (repro.exec.hooks); None = production defaults
    probe = proposer.probe

    store = MultiVersionStore(base)
    reserve: Dict[StateKey, int] = {}
    committed: List[CommittedTx] = []
    retry_counts: Dict[bytes, int] = {}

    cur_gas = 0
    total_fees = 0
    invalid_dropped = 0
    retries_exhausted = 0
    aborts = 0
    executions = 0
    total_work = 0.0
    waves = 0

    def block_full() -> bool:
        if cur_gas >= cfg.gas_limit:
            return True
        return cfg.max_txs is not None and len(committed) >= cfg.max_txs

    shared = ProposeShared(evm_config=proposer.evm.config, base=base, ctx=ctx)
    backend.open(shared)
    wall0 = time.perf_counter()

    def now_us() -> float:
        return (time.perf_counter() - wall0) * 1e6

    propose_scope = (
        tracer.scope(
            "propose", 0.0, lanes=cfg.lanes, backend=backend.name, workers=backend.workers
        )
        if trace_on
        else None
    )
    if propose_scope is not None:
        propose_scope.__enter__()

    while not block_full():
        # -- wave selection: logical width, backend-independent ---------- #
        # yield point: a narrower wave models workers that started late and
        # popped nothing before the wave's snapshot was taken
        width = cfg.lanes
        if probe is not None:
            width = max(1, min(cfg.lanes, probe.wave_width(waves, cfg.lanes)))
        batch: List[Transaction] = []
        while len(batch) < width:
            tx = pool.pop_best()
            if tx is None:
                break
            batch.append(tx)
        if not batch:
            break
        waves += 1
        snapshot_version = store.committed_version
        overlay = store.final_values()
        wave_start = now_us()

        outs = backend.map(
            run_propose_task,
            [ProposeTask(tx, overlay, snapshot_version) for tx in batch],
        )

        # -- deterministic commit section (parent only, batch order) ----- #
        # yield point: any permutation of the wave's slots models workers
        # racing into Algorithm 1's critical section in a different order
        slot_order: List[int] = list(range(len(batch)))
        if probe is not None:
            permuted = apply_order(
                probe.wave_commit_order(waves - 1, len(batch)), len(batch)
            )
            if permuted is not None:
                slot_order = permuted
        for slot in slot_order:
            tx, out = batch[slot], outs[slot]
            if out.invalid is not None:
                pool.drop(tx)
                invalid_dropped += 1
                if trace_on:
                    tracer.instant(
                        "invalid_tx", wave_start, lane=slot, tx=tx.hash.hex()[:8]
                    )
                continue
            executions += 1
            cost = model.tx_cost(out.result.trace)
            total_work += cost
            if trace_on:
                # workers report elapsed wall time; spans are placed at the
                # wave start (process workers have no shared clock origin)
                tracer.record(
                    "execute",
                    wave_start,
                    wave_start + out.elapsed_us,
                    lane=slot,
                    tx=tx.hash.hex()[:8],
                    snapshot=snapshot_version,
                )
            if block_full():
                # block sealed earlier in this wave: speculative work is
                # wasted, the transaction returns to the pool
                pool.push_back(tx)
                continue
            conflict = any(
                reserve.get(key, 0) > snapshot_version for key in out.rw.reads
            )
            if conflict:
                aborts += 1
                retry_counts[tx.hash] = retry_counts.get(tx.hash, 0) + 1
                if trace_on:
                    tracer.instant(
                        "abort",
                        now_us(),
                        lane=slot,
                        tx=tx.hash.hex()[:8],
                        retries=retry_counts[tx.hash],
                        snapshot=snapshot_version,
                    )
                if retry_counts[tx.hash] >= cfg.max_retries:
                    pool.drop(tx)
                    retries_exhausted += 1
                else:
                    pool.push_back(tx)
                continue
            commit_time = now_us()
            version = store.committed_version + 1
            store.apply(out.writes, version)
            for key in out.rw.writes:
                reserve[key] = version
            committed.append(
                CommittedTx(
                    tx=tx,
                    result=out.result,
                    rw=out.rw,
                    version=version,
                    snapshot_version=snapshot_version,
                    commit_time=commit_time,
                    cost=cost,
                )
            )
            cur_gas += out.result.gas_used
            total_fees += out.result.fee
            pool.mark_packed(tx)
            if trace_on:
                tracer.instant(
                    "commit",
                    commit_time,
                    lane=slot,
                    tx=tx.hash.hex()[:8],
                    version=version,
                )

    makespan = now_us()
    if propose_scope is not None:
        propose_scope.span.end = makespan
        propose_scope.span.attrs.update(
            committed=len(committed), aborts=aborts, executions=executions, waves=waves
        )
        propose_scope.__exit__(None, None, None)

    stats = RunStats(
        makespan=makespan,
        total_work=total_work,
        lanes=cfg.lanes,
        tasks=executions,
        aborts=aborts,
        extra={
            "committed": len(committed),
            "invalid_dropped": invalid_dropped,
            "abort_rate": aborts / executions if executions else 0.0,
            "backend": backend.name,
            "backend_workers": backend.workers,
            "waves": waves,
        },
    )
    if metrics is not None:
        metrics.counter("proposer.executions").inc(executions)
        metrics.counter("proposer.aborts").inc(aborts)
        metrics.counter("proposer.commits").inc(len(committed))
        metrics.counter("proposer.invalid_dropped").inc(invalid_dropped)
        metrics.counter("proposer.retries_exhausted").inc(retries_exhausted)
        metrics.counter("proposer.waves").inc(waves)
        metrics.gauge("proposer.wall_us").set(makespan)
        metrics.merge_into(stats.extra)
    return ProposalResult(
        committed=committed,
        stats=stats,
        store=store,
        base=base,
        total_fees=total_fees,
        invalid_dropped=invalid_dropped,
        retries_exhausted=retries_exhausted,
    )
