"""Shard work units for distributed validation (repro.distributed).

A *shard* is a set of dependency-graph components shipped to one follower
node.  Components are account-disjoint, so a follower can execute its
shard against a state slice containing exactly the accounts its
components' profile footprints name — the same isolation contract the
process backend uses (:class:`~repro.exec.tasks.SliceSnapshot`), which is
what makes shard payloads realistic network messages: everything is
pickle-able and self-contained, nothing references the master's memory.

Execution reuses the validator task bodies verbatim
(:func:`~repro.exec.tasks.run_validate_lane`), so a shard outcome is
bit-identical to what the single-node backend would have produced for the
same components.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from repro.chain.block import Block
from repro.common.types import Address
from repro.evm.interpreter import ExecutionContext
from repro.exec.tasks import (
    ComponentOutcome,
    ComponentTask,
    ValidateShared,
    build_state_slice,
    run_validate_lane,
)
from repro.state.account import AccountData
from repro.state.statedb import StateSnapshot
from repro.txpool.transaction import Transaction

__all__ = ["ShardWork", "build_shard_work", "execute_shard", "shard_gas"]


class ShardWork(NamedTuple):
    """One component's work unit inside a shard assignment.

    Self-contained and pickle-able: the transactions, the account
    footprint that bounds them, and the parent-state slice for exactly
    those accounts.  A follower needs nothing else to execute it.
    """

    component: int
    tx_indices: Tuple[int, ...]
    txs: Tuple[Transaction, ...]
    allowed: FrozenSet[Address]
    slice_accounts: Dict[Address, Optional[AccountData]]
    #: profile gas total of the component — the LPT bin-packing weight
    gas: int


def build_shard_work(
    block: Block,
    parent_state: StateSnapshot,
    component: int,
    tx_indices: Sequence[int],
    footprint: FrozenSet[Address],
    gas: int,
) -> ShardWork:
    """Package one dependency-graph component for shipping to a follower."""
    txs = tuple(block.transactions[i] for i in tx_indices)
    return ShardWork(
        component=component,
        tx_indices=tuple(tx_indices),
        txs=txs,
        allowed=footprint,
        slice_accounts=build_state_slice(parent_state, footprint),
        gas=gas,
    )


def shard_gas(works: Sequence[ShardWork]) -> int:
    """Total gas weight of a shard (sum of its components' weights)."""
    return sum(w.gas for w in works)


def execute_shard(
    shared: ValidateShared,
    works: Sequence[ShardWork],
    ctx: ExecutionContext,
) -> Tuple[ComponentOutcome, ...]:
    """Execute a shard's components exactly as a validator worker lane.

    Each component runs against its shipped state slice (``base=None``:
    the follower never sees the master's snapshot), so any access outside
    the declared footprint surfaces as a ``footprint_miss`` anomaly in the
    outcome — the lying-profile signal the coordinator needs to fall back.
    """
    lane: List[ComponentTask] = [
        ComponentTask(
            component=work.component,
            tx_indices=work.tx_indices,
            txs=work.txs,
            ctx=ctx,
            allowed=work.allowed,
            base=None,
            slice_accounts=work.slice_accounts,
        )
        for work in works
    ]
    return run_validate_lane(shared, tuple(lane))
