"""Worker-side task bodies for the real-parallelism backends.

Everything here must be importable by name from a fresh process: the
``ProcessBackend`` pickles functions *by reference* and payloads *by
value*, so task functions are module-level, payloads are small NamedTuples
of pickle-able pieces, and the EVM (whose dispatch table holds local
closures and therefore cannot be pickled) is rebuilt inside each worker
from its pickled :class:`~repro.evm.interpreter.EVMConfig` and cached per
process.

Two task families:

* :func:`run_propose_task` — one speculative OCC-WSI execution: read the
  base snapshot through the committed-writes overlay at the transaction's
  snapshot version, buffer writes locally, return the rw-set and buffered
  writes for the parent to conflict-check and commit deterministically.
* :func:`run_validate_lane` — one validator worker lane: execute each
  assigned dependency-graph component against an isolated view of the
  parent state, guarded so any access outside the component's
  profile-derived account footprint raises :class:`FootprintMiss` (the
  signal that a lying profile broke component isolation and the block
  must be re-executed serially).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.common.types import Address
from repro.evm.interpreter import (
    EVM,
    EVMConfig,
    ExecutionContext,
    InvalidTransaction,
    TxResult,
)
from repro.state.access import ReadWriteSet, RecordingState, StateKey
from repro.state.account import AccountData
from repro.state.statedb import StateDB, StateSnapshot
from repro.state.versioned import OCCStateView, read_base_value
from repro.txpool.transaction import Transaction

__all__ = [
    "FootprintMiss",
    "GuardedSnapshot",
    "SliceSnapshot",
    "build_state_slice",
    "export_overlay",
    "apply_overlay",
    "ProposeShared",
    "ProposeTask",
    "ProposeTaskResult",
    "run_propose_task",
    "ValidateShared",
    "ComponentTask",
    "ComponentOutcome",
    "run_validate_lane",
    "install_shared",
    "call_with_shared",
]


class FootprintMiss(Exception):
    """A worker touched state outside its component's declared footprint.

    Deliberately **not** a ``ValueError``/``MemoryError`` subclass: the EVM
    frame loop swallows those as in-frame failures, and this condition must
    instead abort the whole parallel attempt (the profile lied about the
    component partition, so component-isolated execution is no longer
    equivalent to block-order serial execution).
    """

    def __init__(self, address: Address) -> None:
        super().__init__(f"access outside component footprint: {address.hex()}")
        self.address = address


class GuardedSnapshot:
    """Read-only snapshot view restricted to an account footprint.

    Used by the in-memory backends (serial/thread): workers share the one
    parent :class:`StateSnapshot`, and the guard turns any access that
    would break component isolation into a :class:`FootprintMiss`.

    ``recorder`` (when set) observes every out-of-footprint address; with
    ``strict=False`` the guard *records instead of raising* and serves the
    true base value, so the race detector can enumerate the complete
    violation set of a lying profile rather than stopping at the first
    miss.  Non-strict results are still discarded by the caller — the
    guard only ever relaxes reporting, never commitment.
    """

    __slots__ = ("_base", "_allowed", "_recorder", "_strict")

    def __init__(
        self,
        base: StateSnapshot,
        allowed: FrozenSet[Address],
        recorder: Optional[Callable[[Address], None]] = None,
        strict: bool = True,
    ) -> None:
        self._base = base
        self._allowed = allowed
        self._recorder = recorder
        self._strict = strict

    def account(self, address: Address) -> Optional[AccountData]:
        if address not in self._allowed:
            if self._recorder is not None:
                self._recorder(address)
            if self._strict:
                raise FootprintMiss(address)
        return self._base.account(address)


class SliceSnapshot:
    """Pickle-able state slice for process workers.

    Holds exactly the accounts named by the component's profile footprint
    (present-but-``None`` marks an account that does not exist in the
    parent state); anything else raises :class:`FootprintMiss`, mirroring
    :class:`GuardedSnapshot` semantics across the pickling boundary.
    Unlike the guarded view, a slice cannot serve an out-of-footprint
    value (it was never shipped), so misses always raise even when a
    ``recorder`` observes them first.
    """

    __slots__ = ("_accounts", "_recorder")

    def __init__(
        self,
        accounts: Dict[Address, Optional[AccountData]],
        recorder: Optional[Callable[[Address], None]] = None,
    ) -> None:
        self._accounts = accounts
        self._recorder = recorder

    def account(self, address: Address) -> Optional[AccountData]:
        try:
            return self._accounts[address]
        except KeyError:
            if self._recorder is not None:
                self._recorder(address)
            raise FootprintMiss(address) from None


def build_state_slice(
    base: StateSnapshot, addresses: FrozenSet[Address]
) -> Dict[Address, Optional[AccountData]]:
    """Extract the pickle-able per-component account slice from a snapshot."""
    return {address: base.account(address) for address in sorted(addresses)}


# --------------------------------------------------------------------- #
# StateDB overlay transport (validator merge path)                      #
# --------------------------------------------------------------------- #

#: ``(exists, nonce, balance, code, changed_storage)`` per dirty account.
OverlayEntry = Tuple[bool, int, int, bytes, Dict[int, int]]


def export_overlay(db: StateDB) -> Dict[Address, OverlayEntry]:
    """Flatten a StateDB's dirty accounts into a pickle-able mapping."""
    out: Dict[Address, OverlayEntry] = {}
    for address, ov in db._overlays.items():
        out[address] = (ov.exists, ov.nonce, ov.balance, ov.code, dict(ov.storage))
    return out


def apply_overlay(db: StateDB, overlay: Dict[Address, OverlayEntry]) -> None:
    """Replay an exported overlay onto another StateDB.

    Components are account-disjoint, so replaying each component's final
    per-account values (in any order) reproduces exactly the overlay the
    block-order serial loop would have built.
    """
    for address, (exists, nonce, balance, code, storage) in overlay.items():
        if not exists:
            continue  # touched (read) but never written: no state change
        db.create_account(address)
        db.set_nonce(address, nonce)
        db.set_balance(address, balance)
        db.set_code(address, code)
        for slot, value in storage.items():
            db.set_storage(address, slot, value)


# --------------------------------------------------------------------- #
# per-process EVM cache                                                 #
# --------------------------------------------------------------------- #

_EVM_CACHE: List[Any] = [None, None]  # [config identity, EVM instance]


def _evm_for(config: Optional[EVMConfig]) -> EVM:
    """EVM for this worker, rebuilt only when the config object changes.

    Identity-keyed: the shared object (and thus its config) is stable for
    the lifetime of a backend session, so each worker builds one EVM.  The
    EVM is stateless across transactions (config + dispatch table only),
    which also makes one instance safe to share between threads.
    """
    if _EVM_CACHE[0] is config:
        return _EVM_CACHE[1]
    evm = EVM(config)
    _EVM_CACHE[0] = config
    _EVM_CACHE[1] = evm
    return evm


# --------------------------------------------------------------------- #
# process-pool shared-state plumbing                                    #
# --------------------------------------------------------------------- #

_PROCESS_SHARED: Any = None


def install_shared(shared: Any) -> None:
    """Pool initializer: stash the session's shared object in this worker."""
    global _PROCESS_SHARED
    _PROCESS_SHARED = shared


def call_with_shared(fn: Callable[[Any, Any], Any], payload: Any) -> Any:
    """Trampoline run inside process workers: inject the installed shared."""
    return fn(_PROCESS_SHARED, payload)


# --------------------------------------------------------------------- #
# proposer tasks (OCC-WSI speculative execution)                        #
# --------------------------------------------------------------------- #


class ProposeShared(NamedTuple):
    """Per-proposal session state, shipped once per worker.

    The base snapshot rides here (not in payloads) — for the process
    backend that is the one big pickle, paid per worker per block.
    """

    evm_config: Optional[EVMConfig]
    base: StateSnapshot
    ctx: ExecutionContext


class ProposeTask(NamedTuple):
    """One speculative execution: a transaction plus its read snapshot."""

    tx: Transaction
    #: Latest committed value per written key as of the wave start —
    #: exactly ``MultiVersionStore.final_values()`` at ``snapshot_version``.
    overlay: Dict[StateKey, Any]
    snapshot_version: int


class ProposeTaskResult(NamedTuple):
    """What the parent needs to conflict-check and commit one execution."""

    invalid: Optional[str]
    result: Optional[TxResult]
    rw: Optional[ReadWriteSet]
    writes: Dict[StateKey, Any]
    elapsed_us: float


class _WaveOverlayStore:
    """Duck-typed ``MultiVersionStore`` over (base snapshot, overlay dict).

    The wave driver snapshots the committed writes *once* per wave; every
    worker of the wave reads through the same immutable overlay, so all
    backends observe the identical snapshot regardless of scheduling.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: StateSnapshot, overlay: Dict[StateKey, Any]) -> None:
        self._base = base
        self._overlay = overlay

    def read_at(self, key: StateKey, version: int) -> Any:
        if key in self._overlay:
            return self._overlay[key]
        return read_base_value(self._base, key)


def run_propose_task(shared: ProposeShared, task: ProposeTask) -> ProposeTaskResult:
    """Execute one transaction speculatively against the wave snapshot."""
    evm = _evm_for(shared.evm_config)
    store = _WaveOverlayStore(shared.base, task.overlay)
    view = OCCStateView(store, task.snapshot_version)
    rec = RecordingState(view, version=task.snapshot_version)
    start = time.perf_counter()
    try:
        result = evm.apply_transaction(rec, task.tx, shared.ctx)
    except InvalidTransaction as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return ProposeTaskResult(str(exc), None, None, {}, elapsed_us)
    elapsed_us = (time.perf_counter() - start) * 1e6
    return ProposeTaskResult(None, result, rec.rw, view.buffered_writes, elapsed_us)


# --------------------------------------------------------------------- #
# validator tasks (component execution)                                 #
# --------------------------------------------------------------------- #


class ValidateShared(NamedTuple):
    """Validator session state: stable across blocks, so the process pool
    survives a whole pipeline run (only the EVM config crosses once)."""

    evm_config: Optional[EVMConfig]


class ComponentTask(NamedTuple):
    """One dependency-graph component, self-contained for any backend."""

    component: int
    tx_indices: Tuple[int, ...]
    txs: Tuple[Transaction, ...]
    ctx: ExecutionContext
    #: account footprint (in-memory backends guard the shared snapshot)
    allowed: FrozenSet[Address]
    #: in-memory backends: the parent snapshot by reference; process
    #: workers get ``None`` here and read ``slice_accounts`` instead
    base: Optional[StateSnapshot]
    #: pickle-able account slice (process backend only)
    slice_accounts: Optional[Dict[Address, Optional[AccountData]]]
    #: race-detector mode: enumerate every out-of-footprint access (the
    #: in-memory guard then serves true values past the first miss)
    record_misses: bool = False


class ComponentOutcome(NamedTuple):
    """Result of executing one component in isolation."""

    component: int
    #: ``None`` on success; ``("invalid"|"footprint_miss", detail)`` when
    #: the attempt must fall back to the serial reference path
    anomaly: Optional[Tuple[str, str]]
    results: Tuple[TxResult, ...]
    rwsets: Tuple[ReadWriteSet, ...]
    overlay: Dict[Address, OverlayEntry]
    elapsed_us: float
    #: out-of-footprint addresses observed (deduplicated, access order);
    #: non-empty exactly when a footprint guard fired or recorded
    misses: Tuple[Address, ...] = ()


def _dedup_addresses(addresses: List[Address]) -> Tuple[Address, ...]:
    seen: Dict[Address, None] = {}
    for address in addresses:
        seen.setdefault(address)
    return tuple(seen)


def _run_component(evm: EVM, task: ComponentTask) -> ComponentOutcome:
    misses: List[Address] = []
    recorder: Optional[Callable[[Address], None]] = (
        misses.append if task.record_misses else None
    )
    if task.base is not None:
        base: Any = GuardedSnapshot(
            task.base, task.allowed, recorder=recorder, strict=not task.record_misses
        )
    else:
        base = SliceSnapshot(task.slice_accounts or {}, recorder=recorder)
    db = StateDB(base)
    results: List[TxResult] = []
    rwsets: List[ReadWriteSet] = []
    start = time.perf_counter()
    try:
        for tx in task.txs:
            rec = RecordingState(db)
            results.append(evm.apply_transaction(rec, tx, task.ctx))
            rwsets.append(rec.rw)
    except InvalidTransaction as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return ComponentOutcome(
            task.component,
            ("invalid", str(exc)),
            (),
            (),
            {},
            elapsed_us,
            _dedup_addresses(misses),
        )
    except FootprintMiss as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        misses.append(exc.address)
        return ComponentOutcome(
            task.component,
            ("footprint_miss", str(exc)),
            (),
            (),
            {},
            elapsed_us,
            _dedup_addresses(misses),
        )
    elapsed_us = (time.perf_counter() - start) * 1e6
    # recorded misses without an exception (record_misses mode): the
    # attempt is tainted — report it as a footprint anomaly so the caller
    # falls back exactly as the strict guard would have
    anomaly: Optional[Tuple[str, str]] = None
    if misses:
        anomaly = (
            "footprint_miss",
            f"access outside component footprint: {misses[0].hex()}",
        )
    return ComponentOutcome(
        task.component,
        anomaly,
        tuple(results),
        tuple(rwsets),
        export_overlay(db),
        elapsed_us,
        _dedup_addresses(misses),
    )


def run_validate_lane(
    shared: ValidateShared, lane: Tuple[ComponentTask, ...]
) -> Tuple[ComponentOutcome, ...]:
    """Execute one worker lane's components sequentially (gas-LPT batch)."""
    evm = _evm_for(shared.evm_config)
    return tuple(_run_component(evm, task) for task in lane)
