"""Worker-side task bodies for the real-parallelism backends.

Everything here must be importable by name from a fresh process: the
``ProcessBackend`` pickles functions *by reference* and payloads *by
value*, so task functions are module-level, payloads are small NamedTuples
of pickle-able pieces, and the EVM (whose dispatch table holds local
closures and therefore cannot be pickled) is rebuilt inside each worker
from its pickled :class:`~repro.evm.interpreter.EVMConfig` and cached per
process.

Two task families:

* :func:`run_propose_task` — one speculative OCC-WSI execution: read the
  base snapshot through the committed-writes overlay at the transaction's
  snapshot version, buffer writes locally, return the rw-set and buffered
  writes for the parent to conflict-check and commit deterministically.
* :func:`run_validate_lane` — one validator worker lane: execute each
  assigned dependency-graph component against an isolated view of the
  parent state, guarded so any access outside the component's
  profile-derived account footprint raises :class:`FootprintMiss` (the
  signal that a lying profile broke component isolation and the block
  must be re-executed serially).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.common.types import Address
from repro.evm.interpreter import (
    EVM,
    EVMConfig,
    ExecutionContext,
    InvalidTransaction,
    TxResult,
)
from repro.state.access import (
    ReadWriteSet,
    RecordingState,
    StateKey,
    balance_key,
    code_key,
    nonce_key,
    storage_key,
)
from repro.state.account import AccountData
from repro.state.statedb import StateDB, StateSnapshot
from repro.state.versioned import OCCStateView, read_base_value
from repro.txpool.transaction import Transaction

__all__ = [
    "FootprintMiss",
    "GuardedSnapshot",
    "SliceSnapshot",
    "build_state_slice",
    "export_overlay",
    "apply_overlay",
    "ProposeShared",
    "ProposeTask",
    "ProposeTaskResult",
    "run_propose_task",
    "EstimateRead",
    "MVEntry",
    "BlockSTMView",
    "BlockSTMTask",
    "BlockSTMTaskResult",
    "run_blockstm_task",
    "ValidateShared",
    "ComponentTask",
    "ComponentOutcome",
    "run_validate_lane",
    "install_shared",
    "call_with_shared",
]


class FootprintMiss(Exception):
    """A worker touched state outside its component's declared footprint.

    Deliberately **not** a ``ValueError``/``MemoryError`` subclass: the EVM
    frame loop swallows those as in-frame failures, and this condition must
    instead abort the whole parallel attempt (the profile lied about the
    component partition, so component-isolated execution is no longer
    equivalent to block-order serial execution).
    """

    def __init__(self, address: Address) -> None:
        super().__init__(f"access outside component footprint: {address.hex()}")
        self.address = address


class GuardedSnapshot:
    """Read-only snapshot view restricted to an account footprint.

    Used by the in-memory backends (serial/thread): workers share the one
    parent :class:`StateSnapshot`, and the guard turns any access that
    would break component isolation into a :class:`FootprintMiss`.

    ``recorder`` (when set) observes every out-of-footprint address; with
    ``strict=False`` the guard *records instead of raising* and serves the
    true base value, so the race detector can enumerate the complete
    violation set of a lying profile rather than stopping at the first
    miss.  Non-strict results are still discarded by the caller — the
    guard only ever relaxes reporting, never commitment.
    """

    __slots__ = ("_base", "_allowed", "_recorder", "_strict")

    def __init__(
        self,
        base: StateSnapshot,
        allowed: FrozenSet[Address],
        recorder: Optional[Callable[[Address], None]] = None,
        strict: bool = True,
    ) -> None:
        self._base = base
        self._allowed = allowed
        self._recorder = recorder
        self._strict = strict

    def account(self, address: Address) -> Optional[AccountData]:
        if address not in self._allowed:
            if self._recorder is not None:
                self._recorder(address)
            if self._strict:
                raise FootprintMiss(address)
        return self._base.account(address)


class SliceSnapshot:
    """Pickle-able state slice for process workers.

    Holds exactly the accounts named by the component's profile footprint
    (present-but-``None`` marks an account that does not exist in the
    parent state); anything else raises :class:`FootprintMiss`, mirroring
    :class:`GuardedSnapshot` semantics across the pickling boundary.
    Unlike the guarded view, a slice cannot serve an out-of-footprint
    value (it was never shipped), so misses always raise even when a
    ``recorder`` observes them first.
    """

    __slots__ = ("_accounts", "_recorder")

    def __init__(
        self,
        accounts: Dict[Address, Optional[AccountData]],
        recorder: Optional[Callable[[Address], None]] = None,
    ) -> None:
        self._accounts = accounts
        self._recorder = recorder

    def account(self, address: Address) -> Optional[AccountData]:
        try:
            return self._accounts[address]
        except KeyError:
            if self._recorder is not None:
                self._recorder(address)
            raise FootprintMiss(address) from None


def build_state_slice(
    base: StateSnapshot, addresses: FrozenSet[Address]
) -> Dict[Address, Optional[AccountData]]:
    """Extract the pickle-able per-component account slice from a snapshot."""
    return {address: base.account(address) for address in sorted(addresses)}


# --------------------------------------------------------------------- #
# StateDB overlay transport (validator merge path)                      #
# --------------------------------------------------------------------- #

#: ``(exists, nonce, balance, code, changed_storage)`` per dirty account.
OverlayEntry = Tuple[bool, int, int, bytes, Dict[int, int]]


def export_overlay(db: StateDB) -> Dict[Address, OverlayEntry]:
    """Flatten a StateDB's dirty accounts into a pickle-able mapping."""
    out: Dict[Address, OverlayEntry] = {}
    for address, ov in db._overlays.items():
        out[address] = (ov.exists, ov.nonce, ov.balance, ov.code, dict(ov.storage))
    return out


def apply_overlay(db: StateDB, overlay: Dict[Address, OverlayEntry]) -> None:
    """Replay an exported overlay onto another StateDB.

    Components are account-disjoint, so replaying each component's final
    per-account values (in any order) reproduces exactly the overlay the
    block-order serial loop would have built.
    """
    for address, (exists, nonce, balance, code, storage) in overlay.items():
        if not exists:
            continue  # touched (read) but never written: no state change
        db.create_account(address)
        db.set_nonce(address, nonce)
        db.set_balance(address, balance)
        db.set_code(address, code)
        for slot, value in storage.items():
            db.set_storage(address, slot, value)


# --------------------------------------------------------------------- #
# per-process EVM cache                                                 #
# --------------------------------------------------------------------- #

#: [config identity, EVM instance].  The sentinel is a private object, not
#: None: ``None`` is a *valid* config (EVM defaults), and using it as the
#: empty marker would make ``_evm_for(None)`` return the uninitialised slot.
_EVM_UNSET = object()
_EVM_CACHE: List[Any] = [_EVM_UNSET, None]


def _evm_for(config: Optional[EVMConfig]) -> EVM:
    """EVM for this worker, rebuilt only when the config object changes.

    Identity-keyed: the shared object (and thus its config) is stable for
    the lifetime of a backend session, so each worker builds one EVM.  The
    EVM is stateless across transactions (config + dispatch table only),
    which also makes one instance safe to share between threads.
    """
    if _EVM_CACHE[0] is config:
        return _EVM_CACHE[1]
    evm = EVM(config)
    _EVM_CACHE[0] = config
    _EVM_CACHE[1] = evm
    return evm


# --------------------------------------------------------------------- #
# process-pool shared-state plumbing                                    #
# --------------------------------------------------------------------- #

_PROCESS_SHARED: Any = None


def install_shared(shared: Any) -> None:
    """Pool initializer: stash the session's shared object in this worker."""
    global _PROCESS_SHARED
    _PROCESS_SHARED = shared


def call_with_shared(fn: Callable[[Any, Any], Any], payload: Any) -> Any:
    """Trampoline run inside process workers: inject the installed shared."""
    return fn(_PROCESS_SHARED, payload)


# --------------------------------------------------------------------- #
# proposer tasks (OCC-WSI speculative execution)                        #
# --------------------------------------------------------------------- #


class ProposeShared(NamedTuple):
    """Per-proposal session state, shipped once per worker.

    The base snapshot rides here (not in payloads) — for the process
    backend that is the one big pickle, paid per worker per block.
    """

    evm_config: Optional[EVMConfig]
    base: StateSnapshot
    ctx: ExecutionContext


class ProposeTask(NamedTuple):
    """One speculative execution: a transaction plus its read snapshot."""

    tx: Transaction
    #: Latest committed value per written key as of the wave start —
    #: exactly ``MultiVersionStore.final_values()`` at ``snapshot_version``.
    overlay: Dict[StateKey, Any]
    snapshot_version: int


class ProposeTaskResult(NamedTuple):
    """What the parent needs to conflict-check and commit one execution."""

    invalid: Optional[str]
    result: Optional[TxResult]
    rw: Optional[ReadWriteSet]
    writes: Dict[StateKey, Any]
    elapsed_us: float


class _WaveOverlayStore:
    """Duck-typed ``MultiVersionStore`` over (base snapshot, overlay dict).

    The wave driver snapshots the committed writes *once* per wave; every
    worker of the wave reads through the same immutable overlay, so all
    backends observe the identical snapshot regardless of scheduling.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: StateSnapshot, overlay: Dict[StateKey, Any]) -> None:
        self._base = base
        self._overlay = overlay

    def read_at(self, key: StateKey, version: int) -> Any:
        if key in self._overlay:
            return self._overlay[key]
        return read_base_value(self._base, key)


def run_propose_task(shared: ProposeShared, task: ProposeTask) -> ProposeTaskResult:
    """Execute one transaction speculatively against the wave snapshot."""
    evm = _evm_for(shared.evm_config)
    store = _WaveOverlayStore(shared.base, task.overlay)
    view = OCCStateView(store, task.snapshot_version)
    rec = RecordingState(view, version=task.snapshot_version)
    start = time.perf_counter()
    try:
        result = evm.apply_transaction(rec, task.tx, shared.ctx)
    except InvalidTransaction as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return ProposeTaskResult(str(exc), None, None, {}, elapsed_us)
    elapsed_us = (time.perf_counter() - start) * 1e6
    return ProposeTaskResult(None, result, rec.rw, view.buffered_writes, elapsed_us)


# --------------------------------------------------------------------- #
# Block-STM tasks (multi-version speculative execution)                 #
# --------------------------------------------------------------------- #


class EstimateRead(Exception):
    """A Block-STM read hit an ESTIMATE marker: suspend on that writer.

    Deliberately **not** a ``ValueError``/``MemoryError`` subclass (the EVM
    frame loop swallows those as in-frame failures): hitting an estimate
    means this incarnation cannot produce a meaningful result until the
    dependency re-executes, so the whole attempt unwinds to the scheduler.
    """

    def __init__(self, dep: int) -> None:
        super().__init__(f"read of an ESTIMATE written by txn {dep}")
        #: chunk-local index of the aborted writer this reader depends on
        self.dep = dep


#: One multi-version memory entry for a key, as shipped to workers:
#: ``(writer_index, incarnation, value, is_estimate)``.  Entries per key
#: are sorted by ascending writer index (the preset serialization order).
MVEntry = Tuple[int, int, Any, bool]


class BlockSTMView:
    """StateDB-compatible multi-version read view for one Block-STM task.

    Reads resolve in Block-STM order: the task's own write buffer
    (read-your-own-write), then the highest-indexed multi-version entry
    below the task's preset position (raising :class:`EstimateRead` when
    that entry is an ESTIMATE left by an aborted incarnation), then the
    committed-prefix overlay, then the base snapshot.  Every external read
    records its source ``(writer_index, incarnation)`` — the read set the
    parent's cooperative re-validation checks against current memory.

    Write/record semantics deliberately mirror
    :class:`~repro.state.access.RecordingState` over
    :class:`~repro.state.versioned.OCCStateView` (first-read-wins, reads
    of self-written keys unrecorded even after a revert, rw-set writes
    retained across reverts, code values hashed to ints) so Block-STM
    profiles diff cleanly against the serial replay's recorded sets.
    """

    def __init__(
        self,
        base: StateSnapshot,
        overlay: Dict[StateKey, Any],
        mv: Dict[StateKey, Tuple[MVEntry, ...]],
        index: int,
    ) -> None:
        self._base = base
        self._overlay = overlay
        self._mv = mv
        self._index = index
        self._buffer: Dict[StateKey, Any] = {}
        self._journal: List[Tuple[StateKey, Any, bool]] = []
        #: key -> (writer_index, incarnation) of the first external read
        self.reads: Dict[StateKey, Tuple[int, int]] = {}
        #: rw-set writes (encoded like RecordingState; never rolled back)
        self.rw_writes: Dict[StateKey, int] = {}

    # -- read/write plumbing -------------------------------------------- #

    def _read(self, key: StateKey, record: bool = True) -> Any:
        if key in self._buffer:
            return self._buffer[key]
        entries = self._mv.get(key)
        if entries:
            source: Optional[MVEntry] = None
            for entry in entries:
                if entry[0] < self._index:
                    source = entry
                else:
                    break
            if source is not None:
                writer, incarnation, value, is_estimate = source
                if is_estimate:
                    raise EstimateRead(writer)
                if record:
                    self._note_read(key, writer, incarnation)
                return value
        if record:
            self._note_read(key, -1, 0)
        if key in self._overlay:
            return self._overlay[key]
        return read_base_value(self._base, key)

    def _note_read(self, key: StateKey, writer: int, incarnation: int) -> None:
        if key not in self.rw_writes and key not in self.reads:
            self.reads[key] = (writer, incarnation)

    def _write(self, key: StateKey, value: Any, encoded: int) -> None:
        self.rw_writes[key] = encoded
        had = key in self._buffer
        old = self._buffer.get(key)
        self._journal.append((key, old, had))
        self._buffer[key] = value

    def reads_tuple(self) -> Tuple[Tuple[StateKey, int, int], ...]:
        """Recorded reads as ``(key, writer_index, incarnation)`` triples."""
        return tuple(
            (key, src[0], src[1]) for key, src in self.reads.items()
        )

    # -- StateDB interface ---------------------------------------------- #

    def account_exists(self, address: Address) -> bool:
        # mirror RecordingState.account_exists: only the nonce read is
        # recorded as the external dependency
        return (
            self._read(nonce_key(address)) != 0
            or self._read(balance_key(address), record=False) != 0
            or self._read(code_key(address), record=False) != b""
        )

    def get_balance(self, address: Address) -> int:
        return int(self._read(balance_key(address)))

    def get_nonce(self, address: Address) -> int:
        return int(self._read(nonce_key(address)))

    def get_code(self, address: Address) -> bytes:
        value = self._read(code_key(address))
        return bytes(value)

    def get_storage(self, address: Address, slot: int) -> int:
        return int(self._read(storage_key(address, slot)))

    def set_balance(self, address: Address, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative balance for {address.hex()}")
        self._write(balance_key(address), value, value)

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def sub_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) - amount)

    def set_nonce(self, address: Address, value: int) -> None:
        self._write(nonce_key(address), value, value)

    def increment_nonce(self, address: Address) -> None:
        self.set_nonce(address, self.get_nonce(address) + 1)

    def set_code(self, address: Address, code: bytes) -> None:
        encoded = int.from_bytes(code[:8].ljust(8, b"\0"), "big")
        self._write(code_key(address), code, encoded)

    def set_storage(self, address: Address, slot: int, value: int) -> None:
        self._write(storage_key(address, slot), value, value)

    def create_account(self, address: Address) -> None:
        # existence is implied by the first write, as in OCCStateView
        return None

    def snapshot(self) -> int:
        return len(self._journal)

    def revert_to(self, mark: int) -> None:
        if mark < 0 or mark > len(self._journal):
            raise ValueError(f"invalid journal mark {mark}")
        while len(self._journal) > mark:
            key, old, had = self._journal.pop()
            if had:
                self._buffer[key] = old
            else:
                self._buffer.pop(key, None)

    @property
    def buffered_writes(self) -> Dict[StateKey, Any]:
        return dict(self._buffer)


class BlockSTMTask(NamedTuple):
    """One (re-)execution of a chunk transaction at a given incarnation."""

    tx: Transaction
    #: chunk-local preset-order index of the transaction
    index: int
    incarnation: int
    #: multi-version memory snapshot at wave start (shared per wave; the
    #: in-memory backends pass it by reference, the process backend once
    #: per task by value)
    mv: Dict[StateKey, Tuple[MVEntry, ...]]
    #: committed values from earlier chunks of this block
    overlay: Dict[StateKey, Any]


class BlockSTMTaskResult(NamedTuple):
    """Everything the parent scheduler needs from one incarnation."""

    index: int
    incarnation: int
    #: InvalidTransaction detail (the execution outcome "invalid at this
    #: position"; its reads still participate in re-validation)
    invalid: Optional[str]
    #: set when the execution suspended on an ESTIMATE: the chunk-local
    #: index of the aborted writer to wait for
    dep: Optional[int]
    result: Optional[TxResult]
    #: external reads as ``(key, writer_index, incarnation)``; -1 marks a
    #: committed-prefix/base read
    reads: Tuple[Tuple[StateKey, int, int], ...]
    #: journal-correct buffered writes (actual values, applied at commit)
    writes: Dict[StateKey, Any]
    #: rw-set writes (RecordingState encoding, kept across reverts)
    rw_writes: Dict[StateKey, int]
    elapsed_us: float


def run_blockstm_task(shared: ProposeShared, task: BlockSTMTask) -> BlockSTMTaskResult:
    """Execute one incarnation against the wave's multi-version snapshot."""
    evm = _evm_for(shared.evm_config)
    view = BlockSTMView(shared.base, task.overlay, task.mv, task.index)
    start = time.perf_counter()
    try:
        result = evm.apply_transaction(view, task.tx, shared.ctx)
    except EstimateRead as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return BlockSTMTaskResult(
            task.index, task.incarnation, None, exc.dep, None, (), {}, {}, elapsed_us
        )
    except InvalidTransaction as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return BlockSTMTaskResult(
            task.index,
            task.incarnation,
            str(exc),
            None,
            None,
            view.reads_tuple(),
            {},
            {},
            elapsed_us,
        )
    elapsed_us = (time.perf_counter() - start) * 1e6
    return BlockSTMTaskResult(
        task.index,
        task.incarnation,
        None,
        None,
        result,
        view.reads_tuple(),
        view.buffered_writes,
        dict(view.rw_writes),
        elapsed_us,
    )


# --------------------------------------------------------------------- #
# validator tasks (component execution)                                 #
# --------------------------------------------------------------------- #


class ValidateShared(NamedTuple):
    """Validator session state: stable across blocks, so the process pool
    survives a whole pipeline run (only the EVM config crosses once)."""

    evm_config: Optional[EVMConfig]


class ComponentTask(NamedTuple):
    """One dependency-graph component, self-contained for any backend."""

    component: int
    tx_indices: Tuple[int, ...]
    txs: Tuple[Transaction, ...]
    ctx: ExecutionContext
    #: account footprint (in-memory backends guard the shared snapshot)
    allowed: FrozenSet[Address]
    #: in-memory backends: the parent snapshot by reference; process
    #: workers get ``None`` here and read ``slice_accounts`` instead
    base: Optional[StateSnapshot]
    #: pickle-able account slice (process backend only)
    slice_accounts: Optional[Dict[Address, Optional[AccountData]]]
    #: race-detector mode: enumerate every out-of-footprint access (the
    #: in-memory guard then serves true values past the first miss)
    record_misses: bool = False


class ComponentOutcome(NamedTuple):
    """Result of executing one component in isolation."""

    component: int
    #: ``None`` on success; ``("invalid"|"footprint_miss", detail)`` when
    #: the attempt must fall back to the serial reference path
    anomaly: Optional[Tuple[str, str]]
    results: Tuple[TxResult, ...]
    rwsets: Tuple[ReadWriteSet, ...]
    overlay: Dict[Address, OverlayEntry]
    elapsed_us: float
    #: out-of-footprint addresses observed (deduplicated, access order);
    #: non-empty exactly when a footprint guard fired or recorded
    misses: Tuple[Address, ...] = ()


def _dedup_addresses(addresses: List[Address]) -> Tuple[Address, ...]:
    seen: Dict[Address, None] = {}
    for address in addresses:
        seen.setdefault(address)
    return tuple(seen)


def _run_component(evm: EVM, task: ComponentTask) -> ComponentOutcome:
    misses: List[Address] = []
    recorder: Optional[Callable[[Address], None]] = (
        misses.append if task.record_misses else None
    )
    if task.base is not None:
        base: Any = GuardedSnapshot(
            task.base, task.allowed, recorder=recorder, strict=not task.record_misses
        )
    else:
        base = SliceSnapshot(task.slice_accounts or {}, recorder=recorder)
    db = StateDB(base)
    results: List[TxResult] = []
    rwsets: List[ReadWriteSet] = []
    start = time.perf_counter()
    try:
        for tx in task.txs:
            rec = RecordingState(db)
            results.append(evm.apply_transaction(rec, tx, task.ctx))
            rwsets.append(rec.rw)
    except InvalidTransaction as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        return ComponentOutcome(
            task.component,
            ("invalid", str(exc)),
            (),
            (),
            {},
            elapsed_us,
            _dedup_addresses(misses),
        )
    except FootprintMiss as exc:
        elapsed_us = (time.perf_counter() - start) * 1e6
        misses.append(exc.address)
        return ComponentOutcome(
            task.component,
            ("footprint_miss", str(exc)),
            (),
            (),
            {},
            elapsed_us,
            _dedup_addresses(misses),
        )
    elapsed_us = (time.perf_counter() - start) * 1e6
    # recorded misses without an exception (record_misses mode): the
    # attempt is tainted — report it as a footprint anomaly so the caller
    # falls back exactly as the strict guard would have
    anomaly: Optional[Tuple[str, str]] = None
    if misses:
        anomaly = (
            "footprint_miss",
            f"access outside component footprint: {misses[0].hex()}",
        )
    return ComponentOutcome(
        task.component,
        anomaly,
        tuple(results),
        tuple(rwsets),
        export_overlay(db),
        elapsed_us,
        _dedup_addresses(misses),
    )


def run_validate_lane(
    shared: ValidateShared, lane: Tuple[ComponentTask, ...]
) -> Tuple[ComponentOutcome, ...]:
    """Execute one worker lane's components sequentially (gas-LPT batch)."""
    evm = _evm_for(shared.evm_config)
    return tuple(_run_component(evm, task) for task in lane)
