"""Component-parallel block validation on real execution backends.

The validator's dependency graph (§4.3) partitions a block into
account-disjoint connected components; inside a component transactions
run serially in block order, across components nothing is shared.  That
makes each component an independently submittable unit: executing every
component against an isolated view of the parent state and merging the
(disjoint) write overlays reproduces exactly the state of the block-order
serial loop — the commit order is enforced at the applier/merge step in
the parent, not by the workers.

The partition comes from the **block profile**, which a byzantine
proposer can fake.  Every component view is therefore guarded: a read or
write outside the component's profile-derived account footprint raises
:class:`~repro.exec.tasks.FootprintMiss`, the parallel attempt is
discarded, and the caller falls back to the authoritative serial
reference loop (same funnel as ``InvalidTransaction``).  Anomalies,
injected worker faults that exhaust retries, missing profiles and
non-account conflict granularity all take that same fallback — which is
what keeps the three backends (and the simulator) byte-identical on every
input, honest or hostile.

Fault injection composes deterministically: the injector's keyed RNG is
call-order-free, so crash/stall decisions are precomputed per attempt in
block order — identical to the serial loop's interleaved consults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.chain.block import Block
from repro.core.depgraph import build_dependency_graph
from repro.core.scheduler import schedule_components
from repro.evm.interpreter import ExecutionContext, TxResult
from repro.state.access import ReadWriteSet
from repro.state.statedb import StateDB, StateSnapshot

from repro.exec.backend import ExecutionBackend
from repro.exec.hooks import apply_order
from repro.exec.tasks import (
    ComponentOutcome,
    ComponentTask,
    ValidateShared,
    apply_overlay,
    build_state_slice,
    run_validate_lane,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.validator import ParallelValidator

__all__ = ["ParallelExecOutcome", "execute_block_parallel"]


@dataclass
class ParallelExecOutcome:
    """Everything the serial reference loop would have produced.

    ``validate_block`` consumes this in place of its inline re-execution
    loop; all downstream phases (storage model, Algorithm 2, state root,
    timing simulation) run unchanged.
    """

    db: StateDB
    tx_results: List[TxResult]
    tx_rwsets: List[ReadWriteSet]
    stalls: List[float]
    total_fees: int
    total_gas: int
    worker_faults: int
    attempt: int
    retry_penalty: float
    wall_us: float


def execute_block_parallel(
    validator: "ParallelValidator",
    block: Block,
    parent_state: StateSnapshot,
    ctx: ExecutionContext,
    backend: ExecutionBackend,
) -> Optional[ParallelExecOutcome]:
    """Execute one block's transactions component-parallel on ``backend``.

    Returns ``None`` whenever the parallel path cannot guarantee
    equivalence with the serial reference loop — the caller then runs the
    inline loop, whose decisions are deterministic and injector-keyed, so
    every backend (and the simulator) converges on the identical result.
    """
    profile = block.profile
    n = len(block.transactions)
    if n == 0 or profile is None or len(profile.entries) != n:
        return None
    if validator.config.granularity != "account":
        # key-granular components may share accounts; component isolation
        # is only sound for the account-level partition the paper uses
        return None

    model = validator.cost_model
    consult = (
        validator.injector
        if validator.injector is not None
        and validator.injector.injects_execution_faults
        else None
    )

    # ----- fault pre-pass: replay the retry ladder without executing ----- #
    # The keyed RNG makes consult calls order-free, so the first crash per
    # attempt (in block order) matches what the serial loop would observe.
    attempt = 0
    worker_faults = 0
    retry_penalty = 0.0
    stalls = [0.0] * n
    if consult is not None:
        while True:
            crashed = any(
                consult.execution_fault(block.hash, attempt, index).crash
                for index in range(n)
            )
            if not crashed:
                break
            worker_faults += 1
            if validator.metrics is not None:
                validator.metrics.counter("validator.worker_faults").inc()
            retry_penalty += model.abort_overhead + model.retry_backoff * (2**attempt)
            if attempt < validator.config.max_parallel_retries:
                attempt += 1
                continue
            # retries exhausted: rejection or serial degradation — either
            # way the reference loop owns the decision
            return None
        stalls = [
            consult.execution_fault(block.hash, attempt, index).stall_us
            for index in range(n)
        ]

    # ----- partition from the (unverified) profile ----------------------- #
    # The pipeline's artifact cache (when attached) owns this derivation:
    # the same footprints/graph serve the preparation phase afterwards, so
    # the partition is computed once per block instead of once per phase.
    art = (
        validator.artifacts.get(block, "account")
        if validator.artifacts is not None
        else None
    )
    if art is not None:
        graph = art.graph
        plan = art.plan_for(
            max(1, backend.workers),
            validator.config.policy,
            validator.config.seed,
        )
        component_addresses = list(art.component_footprints())
    else:
        footprints = [entry.rw.touched_addresses() for entry in profile.entries]
        gas_estimates = [entry.gas_used for entry in profile.entries]
        graph = build_dependency_graph(footprints, gas_estimates)
        plan = schedule_components(
            graph,
            max(1, backend.workers),
            validator.config.policy,
            validator.config.seed,
        )
        component_addresses = [
            frozenset().union(*(footprints[i] for i in component))
            for component in graph.components
        ]

    shared = getattr(validator, "_exec_shared", None)
    if shared is None or shared.evm_config is not validator.evm.config:
        shared = ValidateShared(evm_config=validator.evm.config)
        validator._exec_shared = shared
    backend.open(shared)

    check_log = validator.check_log
    lane_payloads: List[Tuple[ComponentTask, ...]] = []
    for lane_components in plan.lane_components:
        if not lane_components:
            continue
        lane: List[ComponentTask] = []
        for comp in lane_components:
            tx_indices = graph.components[comp]
            allowed = component_addresses[comp]
            lane.append(
                ComponentTask(
                    component=comp,
                    tx_indices=tx_indices,
                    txs=tuple(block.transactions[i] for i in tx_indices),
                    ctx=ctx,
                    allowed=allowed,
                    base=parent_state if backend.shares_memory else None,
                    slice_accounts=(
                        None
                        if backend.shares_memory
                        else build_state_slice(parent_state, allowed)
                    ),
                    # race-detector mode: enumerate every out-of-footprint
                    # access instead of stopping at the first miss
                    record_misses=check_log is not None,
                )
            )
        lane_payloads.append(tuple(lane))

    # conformance yield points: lane submission order and per-lane component
    # order model the pool handing tasks to differently-loaded workers.
    # Components are account-disjoint and the merge below walks component
    # indices, so any permutation here must reproduce the identical state —
    # the property the fuzzer (repro.check.fuzzer) exercises.
    probe = validator.probe
    if probe is not None:
        lane_order = apply_order(probe.lane_order(len(lane_payloads)), len(lane_payloads))
        if lane_order is not None:
            lane_payloads = [lane_payloads[i] for i in lane_order]
        for lane_index, lane_tasks in enumerate(lane_payloads):
            comp_order = apply_order(
                probe.component_order(lane_index, len(lane_tasks)), len(lane_tasks)
            )
            if comp_order is not None:
                lane_payloads[lane_index] = tuple(lane_tasks[i] for i in comp_order)

    wall0 = time.perf_counter()
    lane_outcomes = backend.map(run_validate_lane, lane_payloads)
    wall_us = (time.perf_counter() - wall0) * 1e6

    anomalous = False
    outcomes: Dict[int, ComponentOutcome] = {}
    for lane_result in lane_outcomes:
        for outcome in lane_result:
            if outcome.misses and check_log is not None:
                # typed findings: which component, which txs, which account
                # escaped the declared footprint (local import — repro.check
                # re-enters the core pipeline, so top-level would cycle)
                from repro.check.report import FootprintViolation

                for address in outcome.misses:
                    check_log.record_footprint(
                        FootprintViolation(
                            block=block.hash.hex()[:8],
                            component=outcome.component,
                            tx_indices=tuple(graph.components[outcome.component]),
                            address=address,
                            declared=len(component_addresses[outcome.component]),
                        )
                    )
                if validator.metrics is not None:
                    validator.metrics.counter("check.footprint_violations").inc(
                        len(outcome.misses)
                    )
            if outcome.anomaly is not None:
                # lying profile (footprint miss) or an invalid transaction:
                # discard the attempt, let the serial reference loop decide
                if validator.metrics is not None:
                    validator.metrics.counter(
                        f"validator.backend_{outcome.anomaly[0]}"
                    ).inc()
                if check_log is None:
                    return None
                anomalous = True
                continue
            outcomes[outcome.component] = outcome
    if anomalous:
        # with a check log attached every lane is drained first so the
        # violation report is complete; the fallback decision is unchanged
        return None

    # ----- merge: commit order enforced here, in the parent -------------- #
    db = StateDB(parent_state)
    by_index: Dict[int, Tuple[TxResult, ReadWriteSet]] = {}
    for comp_index in range(len(graph.components)):
        outcome = outcomes[comp_index]
        apply_overlay(db, outcome.overlay)
        for position, tx_index in enumerate(graph.components[comp_index]):
            by_index[tx_index] = (outcome.results[position], outcome.rwsets[position])

    tx_results = [by_index[i][0] for i in range(n)]
    tx_rwsets = [by_index[i][1] for i in range(n)]
    total_fees = sum(result.fee for result in tx_results)
    total_gas = sum(result.gas_used for result in tx_results)

    tracer = validator.tracer
    if tracer.enabled:
        with tracer.scope(
            "backend_execute",
            0.0,
            wall_us,
            block=block.hash.hex()[:8],
            backend=backend.name,
            workers=backend.workers,
            components=len(graph.components),
        ):
            for lane_index, lane_result in enumerate(lane_outcomes):
                cursor = 0.0
                for outcome in lane_result:
                    tracer.record(
                        "exec_component",
                        cursor,
                        cursor + outcome.elapsed_us,
                        lane=lane_index,
                        component=outcome.component,
                        txs=len(outcome.results),
                    )
                    cursor += outcome.elapsed_us
    if validator.metrics is not None:
        validator.metrics.counter("validator.backend_blocks").inc()
        validator.metrics.counter("validator.backend_components").inc(
            len(graph.components)
        )
        validator.metrics.gauge("validator.backend_wall_us").set(wall_us)

    return ParallelExecOutcome(
        db=db,
        tx_results=tx_results,
        tx_rwsets=tx_rwsets,
        stalls=stalls,
        total_fees=total_fees,
        total_gas=total_gas,
        worker_faults=worker_faults,
        attempt=attempt,
        retry_penalty=retry_penalty,
        wall_us=wall_us,
    )
