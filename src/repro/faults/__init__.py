"""Byzantine fault injection and the typed validation-failure taxonomy.

The paper's applier (Algorithm 2) assumes honest blocks; this package
exercises the *other* path: lying profiles, corrupted blocks, crashing
workers and flaky channels.  The design target is Block-STM's guarantee —
an adversarial proposer can at worst degrade performance, never
correctness (see PAPERS.md).

Layout:

* :mod:`repro.faults.errors` — :class:`FailureReason`/:class:`ValidationFailure`,
  the structured rejection taxonomy threaded through the validator stack;
* :mod:`repro.faults.injector` — the seeded :class:`FaultInjector` (block
  corruption, worker crashes/stalls) and :class:`FaultyChannel` (drop,
  duplicate, reorder, bounded delay);
* :mod:`repro.faults.scenarios` — a named scenario per failure variant,
  each driving the fault through the *public* validator/pipeline/node API;
* :mod:`repro.faults.storage` — deterministic storage faults for the
  durability engine: :class:`CrashPlan` crash points fired inside the
  :mod:`repro.store` commit path, plus tamper helpers (torn tails, byte
  flips, lost fsync windows) for recovery-detection tests.
"""

from repro.faults.errors import FailureReason, ValidationFailure, WorkerFault
from repro.faults.injector import FaultConfig, FaultInjector, FaultyChannel
from repro.faults.storage import CrashPlan

__all__ = [
    "FailureReason",
    "ValidationFailure",
    "WorkerFault",
    "FaultConfig",
    "FaultInjector",
    "FaultyChannel",
    "CrashPlan",
]
