"""The typed validation-failure taxonomy.

Every way a block can fail validation gets one :class:`FailureReason`
variant; the validator, pipeline and node attach a
:class:`ValidationFailure` to each rejection so benchmarks can count
*why* blocks were thrown out, not just that they were.  The string
``reason`` fields on ``ValidationResult``/``ValidationOutcome`` are kept
for human consumption and backward compatibility; the enum is the
machine-readable channel.

This module is imported by ``repro.core`` — it must stay dependency-free
(stdlib only) to avoid layering cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FailureReason",
    "ValidationFailure",
    "WorkerFault",
    "BYZANTINE_REASONS",
]


class FailureReason(enum.Enum):
    """Why a block was rejected (or abandoned) by the validator stack."""

    #: Structural violation: tx/receipt root mismatch, profile misaligned,
    #: gas-limit overflow, bad uncles, invalid transaction, missing profile.
    MALFORMED_BLOCK = "malformed_block"
    #: Re-executed read key set disagrees with the block profile.
    PROFILE_READ_MISMATCH = "profile_read_mismatch"
    #: Re-executed write set (keys or values) disagrees with the profile.
    PROFILE_WRITE_MISMATCH = "profile_write_mismatch"
    #: Per-transaction gas or success flag disagrees with the profile.
    PROFILE_GAS_MISMATCH = "profile_gas_mismatch"
    #: Recomputed receipts/bloom/total-gas disagree with the header.
    RECEIPT_MISMATCH = "receipt_mismatch"
    #: Recomputed state root disagrees with the header.
    STATE_ROOT_MISMATCH = "state_root_mismatch"
    #: A worker lane crashed and parallel retries were exhausted (with
    #: serial fallback disabled — otherwise the block degrades, not fails).
    WORKER_FAULT = "worker_fault"
    #: Simulated validation time exceeded the configured budget.
    TIMEOUT = "timeout"
    #: The block's parent state is not known to the pipeline.
    UNKNOWN_PARENT = "unknown_parent"
    #: The block's parent was itself rejected in the same batch.
    PARENT_REJECTED = "parent_rejected"
    #: A same-height sibling committed first and this block was abandoned
    #: to free worker lanes (``PipelineConfig.abandon_siblings``).
    SIBLING_ABANDONED = "sibling_abandoned"
    #: The proposer was quarantined after repeated profile-check failures.
    PROPOSER_QUARANTINED = "proposer_quarantined"

    def __str__(self) -> str:  # stable, compact (used in reports/counters)
        return self.value


#: Reasons that indicate a *lying proposer* (profile or header claims that
#: execution disproved) — the strikes that drive proposer quarantine.
BYZANTINE_REASONS = frozenset(
    {
        FailureReason.PROFILE_READ_MISMATCH,
        FailureReason.PROFILE_WRITE_MISMATCH,
        FailureReason.PROFILE_GAS_MISMATCH,
        FailureReason.RECEIPT_MISMATCH,
        FailureReason.STATE_ROOT_MISMATCH,
        FailureReason.MALFORMED_BLOCK,
    }
)


@dataclass(frozen=True)
class ValidationFailure:
    """One structured rejection: what failed, where, and the evidence."""

    reason: FailureReason
    tx_index: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f" @tx {self.tx_index}" if self.tx_index is not None else ""
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.reason.value}{where}{suffix}"


class WorkerFault(Exception):
    """A worker lane crashed mid-execution (transient unless it recurs).

    Raised from inside the validator's execution phase — by the fault
    injector in tests/benchmarks, or by any future real worker backend.
    The validator catches it, discards the attempt's partial state, and
    retries with deterministic backoff.
    """

    def __init__(self, tx_index: int, detail: str = "") -> None:
        super().__init__(f"worker fault at tx {tx_index}" + (f": {detail}" if detail else ""))
        self.tx_index = tx_index
        self.detail = detail
