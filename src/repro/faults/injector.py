"""Deterministic, seeded fault injection.

One seed drives every fault decision, and each decision is keyed by
*where* it applies (block hash, transaction index, attempt, round,
endpoint) rather than by call order — so a scenario replays bit-identically
no matter how the caller interleaves queries, and two validators fed the
same faulty traffic observe the same faults.

Three fault families:

* **Proposal corruption** — :meth:`FaultInjector.corrupt_block` tampers a
  sealed block the way a byzantine proposer would: lying profile rs/ws
  entries (add/remove/swap accounts, wrong values), a mutated claimed
  state root, a truncated or reordered transaction list.
* **Execution faults** — :meth:`FaultInjector.execution_fault` makes a
  worker lane crash (:class:`~repro.faults.errors.WorkerFault`) on a
  chosen transaction for its first ``worker_fault_attempts`` attempts
  (transient), or stall for a configurable simulated delay.
* **Network faults** — :class:`FaultyChannel` wraps block delivery with
  message drop, duplication, reordering and bounded delay, replacing the
  zero-latency logical-round model when enabled.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.chain.block import Block, BlockProfile, TxProfileEntry
from repro.common.hashing import Hash32
from repro.common.types import Address
from repro.state.access import FrozenRWSet, balance_key, storage_key

__all__ = [
    "FaultConfig",
    "ExecutionFault",
    "FollowerFault",
    "FaultInjector",
    "FaultyChannel",
    "CORRUPTION_KINDS",
    "PROFILE_CORRUPTION_KINDS",
]


def _keyed_rng(seed: int, *key) -> random.Random:
    """An RNG whose stream depends only on (seed, key) — call-order free.

    Seeding :class:`random.Random` with a string hashes it through SHA-512
    (CPython's ``init_by_array`` path), so this is stable across processes
    and independent of ``PYTHONHASHSEED``.
    """
    return random.Random(f"{seed}|" + "|".join(str(k) for k in key))


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for every injectable fault family (all off by default)."""

    seed: int = 0
    # --- execution faults (validator worker lanes) -------------------- #
    #: Probability that a given transaction's worker crashes per block.
    worker_fault_rate: float = 0.0
    #: The crash fires on attempts ``0 .. worker_fault_attempts-1`` and
    #: then heals (transient).  Set it above the validator's
    #: ``max_parallel_retries`` to make the fault effectively permanent.
    worker_fault_attempts: int = 1
    #: Probability that a transaction's worker stalls (slow disk, GC pause).
    stall_rate: float = 0.0
    #: Simulated duration of one stall, in µs (charged to the tx's cost).
    stall_delay_us: float = 400.0
    # --- network faults (FaultyChannel) ------------------------------- #
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    #: Upper bound on per-message delivery delay, in µs (0 = no delay).
    max_delay_us: float = 0.0
    # --- follower faults (distributed shard validation) --------------- #
    #: Probability a follower crashes on a given shard assignment (the
    #: reply never arrives; the coordinator re-assigns after the deadline).
    follower_crash_rate: float = 0.0
    #: Probability a follower stalls (slow node) before replying.
    follower_stall_rate: float = 0.0
    #: Simulated duration of one follower stall, in µs — sized to blow the
    #: coordinator's straggler deadline, not just pad the makespan.
    follower_stall_us: float = 50_000.0
    #: Probability a follower returns a tampered (byzantine) shard reply.
    follower_byzantine_rate: float = 0.0


@dataclass(frozen=True)
class ExecutionFault:
    """What the injector decided for one (block, attempt, tx) execution."""

    crash: bool = False
    stall_us: float = 0.0


@dataclass(frozen=True)
class FollowerFault:
    """What the injector decided for one shard assignment to a follower."""

    crash: bool = False
    stall_us: float = 0.0
    byzantine: bool = False


#: Corruption kinds that tamper the block profile (lying proposer).
PROFILE_CORRUPTION_KINDS = (
    "profile_read_add",
    "profile_read_drop",
    "profile_write_swap",
    "profile_write_value",
    "profile_gas",
    "profile_status",
)

#: Every corruption `corrupt_block` understands.
CORRUPTION_KINDS = PROFILE_CORRUPTION_KINDS + (
    "state_root",
    "header_gas",
    "truncate_txs",
    "reorder_txs",
    "drop_profile",
)


class FaultInjector:
    """Seeded source of proposal corruption and execution faults."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config or FaultConfig()

    # --- execution faults --------------------------------------------- #

    @property
    def injects_execution_faults(self) -> bool:
        """Whether any execution-fault family is active.

        The validator uses this to skip the per-transaction consult
        entirely when it cannot fire — a zero-rate injector must cost the
        same as no injector.
        """
        return self.config.worker_fault_rate > 0.0 or self.config.stall_rate > 0.0

    def execution_fault(
        self, block_hash: Hash32, attempt: int, tx_index: int
    ) -> ExecutionFault:
        """Decide crash/stall for one transaction execution.

        Crash selection is keyed by (block, tx) only, so a faulted
        transaction crashes on *every* attempt below
        ``worker_fault_attempts`` — the transient-then-healed shape — and
        never re-rolls between attempts.
        """
        cfg = self.config
        crash = False
        if cfg.worker_fault_rate > 0.0 and attempt < cfg.worker_fault_attempts:
            roll = _keyed_rng(cfg.seed, "crash", bytes(block_hash).hex(), tx_index)
            crash = roll.random() < cfg.worker_fault_rate
        stall = 0.0
        if cfg.stall_rate > 0.0:
            roll = _keyed_rng(cfg.seed, "stall", bytes(block_hash).hex(), tx_index)
            if roll.random() < cfg.stall_rate:
                stall = cfg.stall_delay_us
        return ExecutionFault(crash=crash, stall_us=stall)

    # --- follower faults ---------------------------------------------- #

    @property
    def injects_follower_faults(self) -> bool:
        """Whether any follower-fault family is active."""
        cfg = self.config
        return (
            cfg.follower_crash_rate > 0.0
            or cfg.follower_stall_rate > 0.0
            or cfg.follower_byzantine_rate > 0.0
        )

    def follower_fault(
        self, block_hash: Hash32, shard_id: int, follower_id: str, attempt: int
    ) -> FollowerFault:
        """Decide crash/stall/byzantine for one shard assignment.

        Keyed by (block, shard, follower, attempt): a crashing follower
        crashes for that shard regardless of when it is asked, and a
        re-assignment of the same shard to a *different* follower rolls
        fresh faults — so re-assignment genuinely routes around a bad node
        rather than replaying its fate.
        """
        cfg = self.config
        key = (bytes(block_hash).hex(), shard_id, follower_id, attempt)
        crash = False
        if cfg.follower_crash_rate > 0.0:
            roll = _keyed_rng(cfg.seed, "follower_crash", *key)
            crash = roll.random() < cfg.follower_crash_rate
        stall = 0.0
        if cfg.follower_stall_rate > 0.0:
            roll = _keyed_rng(cfg.seed, "follower_stall", *key)
            if roll.random() < cfg.follower_stall_rate:
                stall = cfg.follower_stall_us
        byzantine = False
        if cfg.follower_byzantine_rate > 0.0:
            roll = _keyed_rng(cfg.seed, "follower_byz", *key)
            byzantine = roll.random() < cfg.follower_byzantine_rate
        return FollowerFault(crash=crash, stall_us=stall, byzantine=byzantine)

    # --- proposal corruption ------------------------------------------ #

    def corrupt_block(self, block: Block, kind: str) -> Block:
        """Return a tampered copy of ``block`` (the original is untouched).

        ``kind`` is one of :data:`CORRUPTION_KINDS`.  Which entry/key gets
        tampered is drawn from the seeded keyed RNG, so the same (seed,
        block, kind) always produces the identical corruption.
        """
        if kind not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {kind!r}")
        rng = _keyed_rng(self.config.seed, "corrupt", kind, bytes(block.hash).hex())

        if kind == "drop_profile":
            return dataclasses.replace(block, profile=None)
        if kind == "state_root":
            bad_root = Hash32(bytes(rng.randrange(256) for _ in range(32)))
            header = dataclasses.replace(block.header, state_root=bad_root)
            return dataclasses.replace(block, header=header)
        if kind == "header_gas":
            header = dataclasses.replace(
                block.header, gas_used=block.header.gas_used + 1 + rng.randrange(1000)
            )
            return dataclasses.replace(block, header=header)
        if kind == "truncate_txs":
            if not block.transactions:
                raise ValueError("cannot truncate an empty block")
            return dataclasses.replace(block, transactions=block.transactions[:-1])
        if kind == "reorder_txs":
            if len(block.transactions) < 2:
                raise ValueError("need at least two transactions to reorder")
            txs = list(block.transactions)
            i = rng.randrange(len(txs) - 1)
            txs[i], txs[i + 1] = txs[i + 1], txs[i]
            return dataclasses.replace(block, transactions=tuple(txs))

        # profile tampering
        if block.profile is None:
            raise ValueError("block has no profile to corrupt")
        entries = list(block.profile.entries)
        index, entry = self._pick_entry(entries, kind, rng)
        entries[index] = self._tamper_entry(entry, kind, rng)
        return dataclasses.replace(block, profile=BlockProfile(tuple(entries)))

    @staticmethod
    def _pick_entry(
        entries: Sequence[TxProfileEntry], kind: str, rng: random.Random
    ) -> Tuple[int, TxProfileEntry]:
        if kind == "profile_read_drop":
            candidates = [i for i, e in enumerate(entries) if e.rw.reads]
        elif kind in ("profile_write_swap", "profile_write_value"):
            candidates = [i for i, e in enumerate(entries) if e.rw.writes]
        else:
            candidates = list(range(len(entries)))
        if not candidates:
            raise ValueError(f"no profile entry eligible for {kind!r}")
        index = rng.choice(candidates)
        return index, entries[index]

    @staticmethod
    def _tamper_entry(
        entry: TxProfileEntry, kind: str, rng: random.Random
    ) -> TxProfileEntry:
        reads, writes = list(entry.rw.reads), list(entry.rw.writes)
        if kind == "profile_read_add":
            ghost = balance_key(Address.from_int(0xBAD0_0000 + rng.randrange(1 << 16)))
            reads.append((ghost, 0))
        elif kind == "profile_read_drop":
            reads.pop(rng.randrange(len(reads)))
        elif kind == "profile_write_swap":
            i = rng.randrange(len(writes))
            key, value = writes[i]
            swapped = Address.from_int(0xBAD1_0000 + rng.randrange(1 << 16))
            new_key = (
                storage_key(swapped, key.slot)
                if key.kind == "storage"
                else key._replace(address=swapped)
            )
            writes[i] = (new_key, value)
        elif kind == "profile_write_value":
            i = rng.randrange(len(writes))
            key, value = writes[i]
            writes[i] = (key, value + 1 + rng.randrange(1000))
        elif kind == "profile_gas":
            return dataclasses.replace(
                entry, gas_used=entry.gas_used + 1 + rng.randrange(1000)
            )
        elif kind == "profile_status":
            return dataclasses.replace(entry, success=not entry.success)
        return dataclasses.replace(
            entry, rw=FrozenRWSet(reads=tuple(reads), writes=tuple(writes))
        )


class FaultyChannel:
    """Unreliable block delivery to one endpoint (drop/dup/reorder/delay).

    A dropped block lands in a backlog and is retransmitted with the next
    round's batch; retransmissions are never dropped again (retry-until-ack
    collapsed to one guaranteed retry), so delivery is eventual and the
    drain in :meth:`flush` bounds how far behind an endpoint can fall.
    """

    def __init__(self, config: FaultConfig, endpoint: str) -> None:
        self.config = config
        self.endpoint = endpoint
        self.backlog: List[Block] = []
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def deliver(
        self, round_no: int, blocks: Sequence[Block]
    ) -> List[Tuple[Block, float]]:
        """Pass one round's blocks through the channel.

        Returns ``(block, arrival_time_us)`` pairs — backlog
        retransmissions first, then this round's survivors, optionally
        reordered as one batch.
        """
        cfg = self.config
        out: List[Tuple[Block, float]] = []
        for block in self.backlog:  # guaranteed retransmissions
            out.append((block, cfg.max_delay_us))
        self.backlog = []

        for block in blocks:
            key = (self.endpoint, round_no, bytes(block.hash).hex())
            if cfg.drop_rate > 0.0:
                if _keyed_rng(cfg.seed, "drop", *key).random() < cfg.drop_rate:
                    self.dropped += 1
                    self.backlog.append(block)
                    continue
            delay = 0.0
            if cfg.max_delay_us > 0.0:
                delay = _keyed_rng(cfg.seed, "delay", *key).random() * cfg.max_delay_us
                if delay > 0.0:
                    self.delayed += 1
            out.append((block, delay))
            if cfg.duplicate_rate > 0.0:
                if _keyed_rng(cfg.seed, "dup", *key).random() < cfg.duplicate_rate:
                    self.duplicated += 1
                    out.append((block, max(delay, cfg.max_delay_us)))

        if cfg.reorder_rate > 0.0 and len(out) > 1:
            roll = _keyed_rng(cfg.seed, "reorder", self.endpoint, round_no)
            if roll.random() < cfg.reorder_rate:
                roll.shuffle(out)
        self.delivered += len(out)
        return out

    def flush(self) -> List[Tuple[Block, float]]:
        """Drain the backlog (end-of-run retransmission sweep)."""
        out = [(block, self.config.max_delay_us) for block in self.backlog]
        self.backlog = []
        self.delivered += len(out)
        return out

    def counters(self) -> dict:
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }
