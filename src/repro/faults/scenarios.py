"""Runnable fault scenarios — one per :class:`FailureReason` variant.

Each scenario builds a small honest world, applies exactly one fault
through the injector, and drives the result through the *public* validator
surface (``ParallelValidator.validate_block``,
``ValidatorPipeline.process_blocks`` or ``ValidatorNode.receive_blocks``)
— never by constructing failures directly.  The registry doubles as the
taxonomy's executable specification: ``run_scenario(name)`` reproduces a
failure deterministically from its seed, and the test suite asserts every
enum variant is reachable this way.

Degradation scenarios (``degrade_serial_fallback``, ``degrade_transient``)
end in *acceptance*: they demonstrate the Block-STM guarantee that worker
faults cost throughput, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chain.blockchain import Blockchain
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.core.proposer import SealedProposal
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.faults.errors import FailureReason, ValidationFailure
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode, ValidatorNode
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import UniverseConfig, build_universe

__all__ = [
    "ScenarioEnv",
    "ScenarioOutcome",
    "FaultScenario",
    "SCENARIOS",
    "SCENARIO_FOR_REASON",
    "build_env",
    "run_scenario",
]

#: Worker lanes used by every scenario validator (small => fast tests).
_LANES = 4


@dataclass
class ScenarioEnv:
    """The honest starting point every scenario perturbs."""

    universe: object
    generator: BlockWorkloadGenerator
    proposer: ProposerNode
    honest: SealedProposal  # sealed block #1 over genesis
    parent_header: object
    parent_state: object
    injector: FaultInjector
    seed: int

    @property
    def genesis_hash(self):
        return self.parent_header.hash

    def fresh_validator(self, **config) -> ParallelValidator:
        config.setdefault("lanes", _LANES)
        injector = config.pop("injector", None)
        return ParallelValidator(
            config=ValidatorConfig(**config), injector=injector
        )


@dataclass
class ScenarioOutcome:
    """What a scenario observed through the public API."""

    name: str
    expected: Optional[FailureReason]
    #: per examined block: the typed failure (None = accepted)
    failures: List[Optional[ValidationFailure]]
    accepted: List[bool]
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def observed(self) -> List[FailureReason]:
        return [f.reason for f in self.failures if f is not None]

    @property
    def triggered(self) -> bool:
        """Did the scenario produce its expected reason (or, for a
        degradation scenario, end in acceptance)?"""
        if self.expected is None:
            return bool(self.accepted) and all(self.accepted)
        return self.expected in self.observed


@dataclass(frozen=True)
class FaultScenario:
    name: str
    reason: Optional[FailureReason]
    description: str
    run: Callable[[ScenarioEnv], ScenarioOutcome]


# --------------------------------------------------------------------- #
# environment


def build_env(seed: int = 0, txs_per_block: int = 24) -> ScenarioEnv:
    """A compact universe, one proposer, one honest sealed block."""
    universe = build_universe(
        UniverseConfig(
            n_eoas=120,
            n_tokens=4,
            n_amms=2,
            n_nfts=1,
            n_airdrops=1,
            seed=11 + seed,
        )
    )
    generator = BlockWorkloadGenerator(
        universe,
        WorkloadConfig(txs_per_block=txs_per_block, tx_count_jitter=0.0, seed=5 + seed),
    )
    chain = Blockchain(universe.genesis)
    proposer = ProposerNode("proposer-0")
    txs = generator.generate_block_txs()
    honest = proposer.build_block(chain.head.header, chain.head_state, txs)
    return ScenarioEnv(
        universe=universe,
        generator=generator,
        proposer=proposer,
        honest=honest,
        parent_header=chain.head.header,
        parent_state=chain.head_state,
        injector=FaultInjector(FaultConfig(seed=seed)),
        seed=seed,
    )


def _single(env: ScenarioEnv, name, expected, result, **extra) -> ScenarioOutcome:
    return ScenarioOutcome(
        name=name,
        expected=expected,
        failures=[result.failure],
        accepted=[result.accepted],
        extra=extra,
    )


def _corruption_scenario(name: str, kind: str, expected: FailureReason):
    def run(env: ScenarioEnv) -> ScenarioOutcome:
        bad = env.injector.corrupt_block(env.honest.block, kind)
        result = env.fresh_validator().validate_block(bad, env.parent_state)
        return _single(env, name, expected, result, corruption=kind)

    return FaultScenario(
        name,
        expected,
        f"byzantine proposer applies {kind!r}; validator must reject",
        run,
    )


# --------------------------------------------------------------------- #
# per-reason scenarios


def _run_worker_fault(env: ScenarioEnv) -> ScenarioOutcome:
    # permanent crash, no serial fallback: retries exhaust, block rejected
    injector = FaultInjector(
        FaultConfig(seed=env.seed, worker_fault_rate=1.0, worker_fault_attempts=10**6)
    )
    validator = env.fresh_validator(
        injector=injector, max_parallel_retries=1, serial_fallback=False
    )
    result = validator.validate_block(env.honest.block, env.parent_state)
    return _single(
        env,
        "worker_fault",
        FailureReason.WORKER_FAULT,
        result,
        worker_faults=result.worker_faults,
    )


def _run_timeout(env: ScenarioEnv) -> ScenarioOutcome:
    # an honest block against an impossible simulated-time budget
    validator = env.fresh_validator(timeout_us=0.5)
    result = validator.validate_block(env.honest.block, env.parent_state)
    return _single(env, "timeout", FailureReason.TIMEOUT, result)


def _run_unknown_parent(env: ScenarioEnv) -> ScenarioOutcome:
    pipeline = ValidatorPipeline(config=PipelineConfig(worker_lanes=_LANES))
    result = pipeline.process_blocks([env.honest.block], parent_states={})
    return ScenarioOutcome(
        name="unknown_parent",
        expected=FailureReason.UNKNOWN_PARENT,
        failures=list(result.failures),
        accepted=[r is not None and r.accepted for r in result.results],
    )


def _run_parent_rejected(env: ScenarioEnv) -> ScenarioOutcome:
    # corrupt block #1's profile (hash unchanged, so #2 still links to it),
    # then submit the pair: #1 rejected for lying, #2 for its parent
    child_txs = env.generator.generate_block_txs()
    child = env.proposer.build_block(
        env.honest.block.header, env.honest.post_state, child_txs
    ).block
    bad_parent = env.injector.corrupt_block(env.honest.block, "profile_write_value")
    assert bad_parent.hash == env.honest.block.hash  # profile is not sealed
    pipeline = ValidatorPipeline(config=PipelineConfig(worker_lanes=_LANES))
    result = pipeline.process_blocks(
        [bad_parent, child], parent_states={env.genesis_hash: env.parent_state}
    )
    return ScenarioOutcome(
        name="parent_rejected",
        expected=FailureReason.PARENT_REJECTED,
        failures=list(result.failures),
        accepted=[r is not None and r.accepted for r in result.results],
    )


def _run_sibling_abandoned(env: ScenarioEnv) -> ScenarioOutcome:
    # two honest same-height siblings; with abandon_siblings the pipeline
    # drops the second once the first commits
    rival = ProposerNode("proposer-1")
    txs = env.generator.generate_block_txs()
    first = env.proposer.build_block(env.parent_header, env.parent_state, txs).block
    second = rival.build_block(env.parent_header, env.parent_state, txs).block
    pipeline = ValidatorPipeline(
        config=PipelineConfig(worker_lanes=_LANES, abandon_siblings=True)
    )
    result = pipeline.process_blocks(
        [first, second], parent_states={env.genesis_hash: env.parent_state}
    )
    return ScenarioOutcome(
        name="sibling_abandoned",
        expected=FailureReason.SIBLING_ABANDONED,
        failures=list(result.failures),
        accepted=[r is not None and r.accepted for r in result.results],
    )


def _run_proposer_quarantined(env: ScenarioEnv) -> ScenarioOutcome:
    # the same lying proposer strikes out, then even its blocks are refused
    node = ValidatorNode(
        "validator-0",
        env.universe.genesis,
        config=PipelineConfig(worker_lanes=_LANES),
        quarantine_threshold=2,
    )
    bad = env.injector.corrupt_block(env.honest.block, "profile_write_value")
    strikes = []
    for _ in range(2):  # each delivery is one byzantine strike
        outcome = node.receive_blocks([bad])
        strikes.append(outcome.failures[0])
    final = node.receive_blocks([bad])  # now refused without validation
    return ScenarioOutcome(
        name="proposer_quarantined",
        expected=FailureReason.PROPOSER_QUARANTINED,
        failures=list(final.failures),
        accepted=[False],
        extra={
            "strike_reasons": [f.reason for f in strikes if f],
            "quarantined": sorted(node.quarantined_proposers),
        },
    )


# --------------------------------------------------------------------- #
# degradation scenarios (expected = None: they must end accepted)


def _run_degrade_serial_fallback(env: ScenarioEnv) -> ScenarioOutcome:
    # crashes persist through every parallel retry; the injector-free
    # serial pass must still commit the identical state root
    injector = FaultInjector(
        FaultConfig(seed=env.seed, worker_fault_rate=1.0, worker_fault_attempts=10**6)
    )
    validator = env.fresh_validator(
        injector=injector, max_parallel_retries=2, serial_fallback=True
    )
    result = validator.validate_block(env.honest.block, env.parent_state)
    honest = env.fresh_validator().validate_block(env.honest.block, env.parent_state)
    return _single(
        env,
        "degrade_serial_fallback",
        None,
        result,
        used_serial_fallback=result.used_serial_fallback,
        worker_faults=result.worker_faults,
        exec_attempts=result.exec_attempts,
        state_root=(
            result.post_state.state_root() if result.post_state else None
        ),
        honest_state_root=(
            honest.post_state.state_root() if honest.post_state else None
        ),
    )


def _run_degrade_transient(env: ScenarioEnv) -> ScenarioOutcome:
    # the crash heals after one attempt: a single parallel retry recovers
    injector = FaultInjector(
        FaultConfig(seed=env.seed, worker_fault_rate=1.0, worker_fault_attempts=1)
    )
    validator = env.fresh_validator(injector=injector, max_parallel_retries=2)
    result = validator.validate_block(env.honest.block, env.parent_state)
    return _single(
        env,
        "degrade_transient",
        None,
        result,
        used_serial_fallback=result.used_serial_fallback,
        worker_faults=result.worker_faults,
        exec_attempts=result.exec_attempts,
    )


# --------------------------------------------------------------------- #
# registry

SCENARIOS: Dict[str, FaultScenario] = {
    s.name: s
    for s in [
        _corruption_scenario(
            "malformed_block", "truncate_txs", FailureReason.MALFORMED_BLOCK
        ),
        _corruption_scenario(
            "profile_read_mismatch",
            "profile_read_add",
            FailureReason.PROFILE_READ_MISMATCH,
        ),
        _corruption_scenario(
            "profile_write_mismatch",
            "profile_write_value",
            FailureReason.PROFILE_WRITE_MISMATCH,
        ),
        _corruption_scenario(
            "profile_gas_mismatch", "profile_gas", FailureReason.PROFILE_GAS_MISMATCH
        ),
        _corruption_scenario(
            "receipt_mismatch", "header_gas", FailureReason.RECEIPT_MISMATCH
        ),
        _corruption_scenario(
            "state_root_mismatch", "state_root", FailureReason.STATE_ROOT_MISMATCH
        ),
        FaultScenario(
            "worker_fault",
            FailureReason.WORKER_FAULT,
            "permanent lane crash with serial fallback disabled",
            _run_worker_fault,
        ),
        FaultScenario(
            "timeout",
            FailureReason.TIMEOUT,
            "honest block against an impossible time budget",
            _run_timeout,
        ),
        FaultScenario(
            "unknown_parent",
            FailureReason.UNKNOWN_PARENT,
            "block whose parent state the pipeline does not know",
            _run_unknown_parent,
        ),
        FaultScenario(
            "parent_rejected",
            FailureReason.PARENT_REJECTED,
            "child of a block rejected in the same batch",
            _run_parent_rejected,
        ),
        FaultScenario(
            "sibling_abandoned",
            FailureReason.SIBLING_ABANDONED,
            "same-height sibling dropped after the first commits",
            _run_sibling_abandoned,
        ),
        FaultScenario(
            "proposer_quarantined",
            FailureReason.PROPOSER_QUARANTINED,
            "repeat byzantine proposer refused without validation",
            _run_proposer_quarantined,
        ),
        FaultScenario(
            "degrade_serial_fallback",
            None,
            "permanent crashes degrade to serial re-execution, still commit",
            _run_degrade_serial_fallback,
        ),
        FaultScenario(
            "degrade_transient",
            None,
            "transient crash healed by one parallel retry",
            _run_degrade_transient,
        ),
    ]
}

#: Reverse index: every FailureReason -> the scenario that triggers it.
SCENARIO_FOR_REASON: Dict[FailureReason, FaultScenario] = {
    s.reason: s for s in SCENARIOS.values() if s.reason is not None
}


def run_scenario(name: str, seed: int = 0) -> ScenarioOutcome:
    """Build a fresh environment and execute one registered scenario."""
    scenario = SCENARIOS[name]
    return scenario.run(build_env(seed))
