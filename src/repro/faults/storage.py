"""Deterministic storage faults: crash points and data-dir tampering.

Two complementary tools for proving the durability story in
:mod:`repro.store`:

* :class:`CrashPlan` — *process-level* crash injection.  A plan names
  exact points in the commit path (``after_append:7`` = die right after
  block 7's log record is durable but before the manifest advances;
  ``torn_append:7`` = die mid-write, leaving a torn record on disk) and
  the store fires :meth:`CrashPlan.fire` at each hook.  Firing calls
  ``os._exit`` — no atexit handlers, no buffered flushes — the closest a
  test can get to ``kill -9`` while still choosing the byte where death
  lands.  Plans parse from ``REPRO_STORE_CRASH`` so the kill-and-resume
  tests can drive a real ``python -m repro serve`` subprocess.

* Tamper helpers — functions that damage a *closed* data dir the way
  real-world decay does (a flipped byte mid-log, a corrupted snapshot, a
  lost fsync window), so the recovery tests can assert each is detected
  with its typed error, never silently absorbed.

Everything is seeded through the same keyed-RNG scheme as
:mod:`repro.faults.injector`: the damage for a given (seed, site) is
identical on every run and platform.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.injector import _keyed_rng

__all__ = [
    "CRASH_EVENTS",
    "CrashPlan",
    "flip_log_byte",
    "tear_log_tail",
    "corrupt_snapshot_file",
    "lose_fsync_window",
    "corrupt_manifest",
]

CRASH_ENV = "REPRO_STORE_CRASH"
CRASH_SEED_ENV = "REPRO_STORE_CRASH_SEED"

#: Exit code a fired crash point dies with (mirrors SIGKILL's 128+9 so
#: test harnesses treat planned and real kills identically).
CRASH_EXIT_CODE = 137

#: Every hook the DiskStore commit path exposes, in firing order.
CRASH_EVENTS = (
    "torn_append",  # die mid-record-write (leaves a torn tail)
    "after_append",  # record durable, manifest not yet advanced
    "after_snapshot",  # snapshot file durable, manifest not yet advanced
    "after_manifest",  # the full commit point for this block
    "in_compaction",  # new generation durable, manifest not yet repointed
    "before_seal",  # graceful-shutdown seal about to run
)


@dataclass(frozen=True)
class CrashPlan:
    """A deterministic set of ``(event, height)`` crash points."""

    points: Tuple[Tuple[str, int], ...]
    seed: int = 0
    exit_code: int = CRASH_EXIT_CODE

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "CrashPlan":
        """Parse ``"after_append:7,torn_append:12"`` into a plan."""
        points = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            event, _, height = chunk.partition(":")
            if event not in CRASH_EVENTS:
                raise ValueError(
                    f"unknown crash event {event!r} (want one of {CRASH_EVENTS})"
                )
            points.append((event, int(height)))
        return cls(points=tuple(points), seed=seed)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["CrashPlan"]:
        env = os.environ if environ is None else environ
        spec = env.get(CRASH_ENV, "")
        if not spec:
            return None
        return cls.parse(spec, seed=int(env.get(CRASH_SEED_ENV, "0")))

    # ------------------------------------------------------------------ #

    def is_armed(self, event: str, height: int) -> bool:
        return (event, height) in self.points

    def tear_bytes(self, height: int, record_len: int) -> Optional[int]:
        """How many bytes of block ``height``'s record survive a torn write.

        ``None`` when no ``torn_append`` point is armed for this height;
        otherwise a seeded position in ``[1, record_len)`` — strictly
        short of a full record, so the tail is provably torn.
        """
        if not self.is_armed("torn_append", height):
            return None
        rng = _keyed_rng(self.seed, "torn_append", height)
        return rng.randrange(1, max(2, record_len))

    def fire(self, event: str, height: int) -> None:
        """Die instantly (``os._exit``) if this point is armed."""
        if self.is_armed(event, height):
            os._exit(self.exit_code)


# --------------------------------------------------------------------------- #
# data-dir tampering (closed stores only)
# --------------------------------------------------------------------------- #

_LOG_NAME = "blocks.log"
_MANIFEST_NAME = "manifest.json"


def _log_path(data_dir: str) -> str:
    """The live log file — resolved via the manifest (compaction renames it)."""
    manifest = os.path.join(data_dir, _MANIFEST_NAME)
    name = _LOG_NAME
    try:
        with open(manifest, encoding="utf-8") as fh:
            name = json.load(fh).get("logFile", _LOG_NAME)
    except (OSError, json.JSONDecodeError):
        pass
    return os.path.join(data_dir, name)


def flip_log_byte(data_dir: str, *, seed: int = 0, offset: Optional[int] = None) -> int:
    """Flip one byte in the block log's interior; returns the offset.

    The seeded default lands in the middle half of the file, well clear
    of both the magic and the final record, so recovery must classify it
    as interior corruption (:class:`BlockLogCorruptError`), not a torn
    tail.
    """
    path = _log_path(data_dir)
    with open(path, "r+b") as fh:
        data = fh.read()
        if offset is None:
            rng = _keyed_rng(seed, "flip_log_byte", len(data))
            offset = rng.randrange(len(data) // 4, len(data) // 2)
        fh.seek(offset)
        original = data[offset]
        fh.write(bytes([original ^ 0xFF]))
    return offset


def tear_log_tail(data_dir: str, *, seed: int = 0) -> int:
    """Truncate the log mid-final-record; returns the new length.

    Simulates the on-disk state of a crash during the last append: the
    record's length prefix promises more bytes than exist.
    """
    path = _log_path(data_dir)
    size = os.path.getsize(path)
    rng = _keyed_rng(seed, "tear_log_tail", size)
    cut = rng.randrange(1, 9)  # shave 1-8 bytes off the final record
    new_size = max(8, size - cut)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


def corrupt_snapshot_file(data_dir: str, *, seed: int = 0) -> str:
    """Flip one byte inside the snapshot the manifest points at.

    Returns the tampered filename.  Recovery must fail its digest check
    (:class:`SnapshotCorruptError`).
    """
    with open(os.path.join(data_dir, _MANIFEST_NAME), encoding="utf-8") as fh:
        doc = json.load(fh)
    snapshot = doc.get("snapshot")
    if not snapshot:
        raise ValueError("manifest has no snapshot to corrupt")
    path = os.path.join(data_dir, snapshot["file"])
    with open(path, "r+b") as fh:
        data = fh.read()
        rng = _keyed_rng(seed, "corrupt_snapshot", len(data))
        offset = rng.randrange(len(data) // 4, 3 * len(data) // 4)
        fh.seek(offset)
        fh.write(bytes([data[offset] ^ 0xFF]))
    return str(snapshot["file"])


def lose_fsync_window(data_dir: str, *, records: int = 1) -> int:
    """Drop the last ``records`` whole log records the manifest covers.

    Simulates a missing-fsync window: the manifest says those bytes were
    durable, the platters say otherwise.  Recovery must refuse with
    :class:`StaleManifestError` — replaying a shorter log than the
    manifest promises would silently rewind the chain.  Returns the new
    log length.
    """
    # Walk the record framing (8-byte magic, 8-byte record headers) to
    # find whole-record boundaries without importing the store package.
    import struct

    path = _log_path(data_dir)
    with open(path, "rb") as fh:
        data = fh.read()
    boundaries = []
    pos = 8
    while pos + 8 <= len(data):
        length = struct.unpack_from("<I", data, pos)[0]
        end = pos + 8 + length
        if end > len(data):
            break
        boundaries.append(pos)
        pos = end
    if len(boundaries) < records:
        raise ValueError(f"log has only {len(boundaries)} records")
    new_size = boundaries[-records]
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


def corrupt_manifest(data_dir: str) -> None:
    """Invalidate the manifest's self-checksum (one flipped hex digit)."""
    path = os.path.join(data_dir, _MANIFEST_NAME)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    checksum = doc.get("checksum", "")
    if not checksum:
        raise ValueError("manifest carries no checksum to corrupt")
    doc["checksum"] = ("0" if checksum[0] != "0" else "1") + checksum[1:]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
