"""Node roles and the dissemination model.

Glue layer binding the DiCE contexts together (paper §3.2, Figure 1):
:class:`ProposerNode` builds blocks with OCC-WSI and seals them with a
profile; :class:`ValidatorNode` owns a chain and feeds received blocks
through the pipeline; :class:`ForkSimulator` produces the multi-proposer
same-height block sets that give validators more work than proposers
(§3.4).
"""

from repro.network.node import ProposerNode, ValidatorNode
from repro.network.dissemination import ForkSimulator
from repro.network.shardrpc import FollowerNode, ShardAssignment, ShardReply
from repro.network.simnet import NetworkConfig, NetworkResult, NetworkSimulation

__all__ = [
    "ProposerNode",
    "ValidatorNode",
    "FollowerNode",
    "ShardAssignment",
    "ShardReply",
    "ForkSimulator",
    "NetworkConfig",
    "NetworkResult",
    "NetworkSimulation",
]
