"""Fork production: competing proposers at the same height (§3.4).

"When two proposers produce blocks at roughly the same time, validators
may receive multiple blocks at the same height."  The simulator gives K
proposers overlapping views of the pending pool (identical by default)
and distinct tie-breaking, yielding K valid sibling blocks with different
serializable orders — exactly the validator workload of Fig. 9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chain.block import Block, BlockHeader
from repro.common.types import Address
from repro.core.occ_wsi import ProposerConfig
from repro.core.proposer import SealedProposal
from repro.evm.interpreter import EVM
from repro.faults.injector import FaultInjector
from repro.network.node import ProposerNode
from repro.simcore.costmodel import CostModel
from repro.state.statedb import StateSnapshot
from repro.txpool.transaction import Transaction

__all__ = ["ForkSimulator"]


@dataclass
class ForkSet:
    """K sibling proposals over the same parent."""

    proposals: List[SealedProposal]
    #: the block actually broadcast per proposer — the sealed block, or a
    #: corrupted copy for byzantine proposers
    published: Optional[List[Block]] = None

    def __post_init__(self) -> None:
        if self.published is None:
            self.published = [p.block for p in self.proposals]

    @property
    def blocks(self) -> List[Block]:
        assert self.published is not None  # normalised in __post_init__
        return self.published


class ForkSimulator:
    """Produces same-height sibling blocks from independent proposers."""

    def __init__(
        self,
        n_proposers: int,
        *,
        proposer_config: Optional[ProposerConfig] = None,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        pool_overlap: float = 1.0,
        seed: int = 7,
        injector: Optional[FaultInjector] = None,
        byzantine: Sequence[int] = (),
        corruption: str = "profile_write_value",
    ) -> None:
        if n_proposers < 1:
            raise ValueError("need at least one proposer")
        if not 0.0 < pool_overlap <= 1.0:
            raise ValueError("pool_overlap must be in (0, 1]")
        if byzantine and injector is None:
            raise ValueError("byzantine proposers need a FaultInjector")
        self.rng = random.Random(seed)
        self.pool_overlap = pool_overlap
        self.injector = injector
        self.byzantine = frozenset(byzantine)
        self.corruption = corruption
        self.proposers = [
            ProposerNode(
                f"proposer-{i}",
                config=proposer_config,
                evm=evm,
                cost_model=cost_model,
            )
            for i in range(n_proposers)
        ]

    def propose_forks(
        self,
        parent: BlockHeader,
        parent_state: StateSnapshot,
        pending: Sequence[Transaction],
    ) -> ForkSet:
        """Each proposer builds its own block over the same parent.

        With ``pool_overlap < 1`` each proposer sees a random subset of the
        pending set (mempools are never perfectly synchronised); insertion
        order is shuffled per proposer so identical pools still race to
        different serializable orders.  Per-sender nonce prefixes are
        preserved when subsetting, otherwise the pool would reject gapped
        nonces.

        Proposers listed in ``byzantine`` seal honestly, then publish a
        deterministically corrupted copy of their block — the sibling set a
        hardened validator must survive.
        """
        proposals = []
        published = []
        for index, node in enumerate(self.proposers):
            view = list(pending)
            if self.pool_overlap < 1.0:
                view = self._nonce_safe_subset(view)
            self.rng.shuffle(view)
            # the pool requires per-sender non-decreasing nonce arrival
            view.sort(key=lambda tx: tx.nonce)
            sealed = node.build_block(parent, parent_state, view)
            proposals.append(sealed)
            block = sealed.block
            if index in self.byzantine and self.injector is not None:
                block = self.injector.corrupt_block(block, self.corruption)
            published.append(block)
        return ForkSet(proposals, published)

    def _nonce_safe_subset(self, txs: List[Transaction]) -> List[Transaction]:
        """Drop a random *suffix* of each sender's transactions.

        Dropping from the tail keeps every sender's nonce sequence gapless,
        so the subset is a valid mempool view.
        """
        by_sender: Dict[Address, List[Transaction]] = {}
        for tx in sorted(txs, key=lambda t: t.nonce):
            by_sender.setdefault(tx.sender, []).append(tx)
        kept: List[Transaction] = []
        for sender_txs in by_sender.values():
            keep = len(sender_txs)
            while keep > 0 and self.rng.random() > self.pool_overlap:
                keep -= 1
            kept.extend(sender_txs[:keep])
        return kept
