"""Proposer and validator node roles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.common.types import Address, Hash32
from repro.core.occ_wsi import ProposerConfig
from repro.core.strategies import build_proposer
from repro.core.pipeline import PipelineConfig, PipelineResult, ValidatorPipeline
from repro.core.proposer import SealedProposal, seal_block
from repro.evm.interpreter import EVM, ExecutionContext
from repro.faults.errors import BYZANTINE_REASONS, FailureReason, ValidationFailure
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.simcore.costmodel import CostModel
from repro.state.statedb import StateSnapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

if TYPE_CHECKING:
    from repro.exec.backend import ExecutionBackend

__all__ = ["ProposerNode", "ReceiveOutcome", "ValidatorNode"]


class ProposerNode:
    """A block-building node; the execution engine is picked by
    ``ProposerConfig.strategy`` (OCC-WSI by default, paper §4.2)."""

    def __init__(
        self,
        node_id: str,
        *,
        coinbase: Optional[Address] = None,
        config: Optional[ProposerConfig] = None,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        params: ChainParams = DEFAULT_CHAIN_PARAMS,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Optional["ExecutionBackend"] = None,
    ) -> None:
        self.node_id = node_id
        self.params = params
        self.coinbase = coinbase or Address(
            (b"\xbb" + node_id.encode("utf-8")).ljust(20, b"\x00")[:20]
        )
        # each node is one Chrome-trace "process"; its proposer spans
        # (execute/abort/commit per lane) live under that pid
        self.tracer = tracer.for_process(node_id) if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.engine = build_proposer(
            config,
            evm=evm,
            cost_model=cost_model,
            tracer=self.tracer,
            metrics=metrics,
            backend=backend,
        )

    def build_block(
        self,
        parent: BlockHeader,
        parent_state: StateSnapshot,
        pending: Iterable[Transaction],
        *,
        timestamp: Optional[int] = None,
        include_profile: bool = True,
        uncles: Sequence[BlockHeader] = (),
    ) -> SealedProposal:
        """Select, execute in parallel, and seal the next block."""
        pool = TxPool()
        pool.add_many(pending)
        ctx = ExecutionContext(
            block_number=parent.number + 1,
            timestamp=timestamp if timestamp is not None else parent.timestamp + 12,
            coinbase=self.coinbase,
            gas_limit=self.engine.config.gas_limit,
        )
        proposal = self.engine.propose(parent_state, pool, ctx)
        return seal_block(
            proposal,
            parent,
            coinbase=self.coinbase,
            timestamp=ctx.timestamp,
            gas_limit=self.engine.config.gas_limit,
            proposer_id=self.node_id,
            include_profile=include_profile,
            uncles=uncles,
            params=self.params,
            metrics=self.metrics,
        )


@dataclass
class ReceiveOutcome:
    """What happened when a validator processed a batch of blocks."""

    pipeline: PipelineResult
    accepted: List[Block]
    rejected: List[Block]
    new_head: bool
    #: Blocks refused without validation because their proposer is
    #: quarantined (also included in ``rejected``).
    quarantined: List[Block] = field(default_factory=list)
    #: Typed failure per input block, aligned with the ``blocks`` argument
    #: (None for accepted blocks).
    failures: List[Optional[ValidationFailure]] = field(default_factory=list)
    #: Transactions from rejected/abandoned blocks returned to the node's
    #: pending pool this batch (0 when the node has no pool attached).
    restored_txs: int = 0


class ValidatorNode:
    """A validating node: owns a chain, pipelines received blocks (§4.3).

    Hardening on top of the paper's validator:

    * **Proposer quarantine** — a proposer whose blocks accumulate
      ``quarantine_threshold`` byzantine failures (lying profiles, bad
      roots, malformed bodies) is refused outright from then on; its
      blocks are rejected with ``PROPOSER_QUARANTINED`` without burning
      validation work.
    * **Transaction recovery** — when a ``txpool`` is attached, the
      transactions of rejected/abandoned blocks are returned to it
      exactly once (fork siblings carrying the same tx do not duplicate
      it, and txs already committed by an accepted sibling stay out).
    """

    def __init__(
        self,
        node_id: str,
        genesis_state: StateSnapshot,
        *,
        config: Optional[PipelineConfig] = None,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        injector: Optional[FaultInjector] = None,
        quarantine_threshold: int = 3,
        txpool: Optional[TxPool] = None,
        chain: Optional[Blockchain] = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Optional["ExecutionBackend"] = None,
        distributor: Any = None,
    ) -> None:
        self.node_id = node_id
        # an injected chain lets long-running services hand the node a
        # recovered (and store-attached) chain instead of a fresh one
        self.chain = chain if chain is not None else Blockchain(genesis_state)
        self.tracer = tracer.for_process(node_id) if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.pipeline = ValidatorPipeline(
            evm=evm,
            config=config,
            cost_model=cost_model,
            injector=injector,
            tracer=self.tracer,
            metrics=metrics,
            backend=backend,
            distributor=distributor,
        )
        self.quarantine_threshold = quarantine_threshold
        self.txpool = txpool
        self.quarantined_proposers: Set[str] = set()
        self._strikes: Dict[str, int] = {}
        self._restore_attempted: Set[bytes] = set()

    def receive_blocks(
        self,
        blocks: Sequence[Block],
        *,
        arrivals: Optional[Sequence[float]] = None,
    ) -> ReceiveOutcome:
        """Validate a batch of (possibly same-height) blocks, extend the chain.

        Parent states are resolved from this node's chain; blocks whose
        parents are unknown are rejected (no orphan pool in this model).
        """
        tracer = self.tracer
        trace_on = tracer.enabled
        admitted: List[Block] = []
        admitted_arrivals: List[float] = []
        failure_by_hash: Dict[bytes, Optional[ValidationFailure]] = {}
        quarantined: List[Block] = []
        for index, block in enumerate(blocks):
            arrival = arrivals[index] if arrivals is not None else 0.0
            proposer = block.header.proposer_id
            if trace_on:
                tracer.instant(
                    "block_received",
                    arrival,
                    block=block.hash.hex()[:8],
                    number=block.header.number,
                    proposer=proposer,
                )
            if proposer and proposer in self.quarantined_proposers:
                quarantined.append(block)
                failure_by_hash[bytes(block.hash)] = ValidationFailure(
                    FailureReason.PROPOSER_QUARANTINED,
                    detail=f"proposer {proposer} quarantined after "
                    f"{self._strikes.get(proposer, 0)} byzantine blocks",
                )
                if trace_on:
                    tracer.instant(
                        "quarantine_reject",
                        arrival,
                        block=block.hash.hex()[:8],
                        proposer=proposer,
                        reason=FailureReason.PROPOSER_QUARANTINED.value,
                    )
                continue
            admitted.append(block)
            admitted_arrivals.append(arrival)

        parent_states: Dict[Hash32, StateSnapshot] = {}
        for block in admitted:
            snapshot = self.chain.state_at(block.header.parent_hash)
            if snapshot is not None:
                parent_states[block.header.parent_hash] = snapshot
        result = self.pipeline.process_blocks(
            admitted,
            parent_states,
            arrivals=admitted_arrivals if arrivals is not None else None,
        )

        accepted: List[Block] = []
        rejected: List[Block] = []
        new_head = False
        additions: List[Tuple[Block, StateSnapshot]] = []
        for block, validation in zip(admitted, result.results):
            if (
                validation is not None
                and validation.accepted
                and validation.post_state is not None
            ):
                additions.append((block, validation.post_state))
                accepted.append(block)
                failure_by_hash.setdefault(bytes(block.hash), None)
            else:
                rejected.append(block)
                failure = validation.failure if validation is not None else None
                failure_by_hash.setdefault(bytes(block.hash), failure)
                self._record_strike(block, failure)
        rejected.extend(quarantined)

        # Parents first: a reordered delivery can place a child before its
        # in-batch parent, and heights strictly increase along a chain.
        additions.sort(key=lambda pair: pair[0].header.number)
        for block, post_state in additions:
            if block.hash not in self.chain:
                became_head = self.chain.add_block(block, post_state)
                new_head = new_head or became_head

        restored = self._restore_transactions(accepted, rejected)
        if self.metrics is not None:
            self.metrics.counter("node.blocks_received").inc(len(blocks))
            self.metrics.counter("node.blocks_accepted").inc(len(accepted))
            self.metrics.counter("node.blocks_rejected").inc(len(rejected))
            self.metrics.counter("node.blocks_quarantined").inc(len(quarantined))
            self.metrics.counter("node.restored_txs").inc(restored)
            if new_head:
                self.metrics.gauge("node.height").set(float(self.chain.height()))
        return ReceiveOutcome(
            pipeline=result,
            accepted=accepted,
            rejected=rejected,
            new_head=new_head,
            quarantined=quarantined,
            failures=[failure_by_hash.get(bytes(b.hash)) for b in blocks],
            restored_txs=restored,
        )

    # ------------------------------------------------------------------ #

    def _record_strike(
        self, block: Block, failure: Optional[ValidationFailure]
    ) -> None:
        """Count byzantine rejections per proposer; quarantine repeat liars."""
        if failure is None or failure.reason not in BYZANTINE_REASONS:
            return
        proposer = block.header.proposer_id
        if not proposer or self.quarantine_threshold <= 0:
            return
        self._strikes[proposer] = self._strikes.get(proposer, 0) + 1
        if (
            self._strikes[proposer] >= self.quarantine_threshold
            and proposer not in self.quarantined_proposers
        ):
            self.quarantined_proposers.add(proposer)
            if self.tracer.enabled:
                self.tracer.instant(
                    "proposer_quarantined",
                    0.0,
                    proposer=proposer,
                    strikes=self._strikes[proposer],
                )
            if self.metrics is not None:
                self.metrics.counter("node.proposers_quarantined").inc()

    def _restore_transactions(
        self, accepted: Sequence[Block], rejected: Sequence[Block]
    ) -> int:
        """Return rejected blocks' transactions to the pool, exactly once.

        A tx committed by an accepted sibling (or already on the canonical
        chain) stays out; a tx carried by several rejected siblings is
        re-added at most once, and never twice across batches.
        """
        if self.txpool is None or not rejected:
            return 0
        committed = {bytes(tx.hash) for b in accepted for tx in b.transactions}
        restored = 0
        for block in rejected:
            for tx in block.transactions:
                key = bytes(tx.hash)
                if key in committed or key in self._restore_attempted:
                    continue
                self._restore_attempted.add(key)
                if self.txpool.restore(tx):
                    restored += 1
        return restored
