"""Proposer and validator node roles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain
from repro.chain.params import DEFAULT_CHAIN_PARAMS, ChainParams
from repro.common.types import Address
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.core.pipeline import PipelineConfig, PipelineResult, ValidatorPipeline
from repro.core.proposer import SealedProposal, seal_block
from repro.evm.interpreter import EVM, ExecutionContext
from repro.simcore.costmodel import CostModel
from repro.state.statedb import StateSnapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

__all__ = ["ProposerNode", "ValidatorNode"]


class ProposerNode:
    """A block-building node running OCC-WSI (paper §4.2)."""

    def __init__(
        self,
        node_id: str,
        *,
        coinbase: Optional[Address] = None,
        config: Optional[ProposerConfig] = None,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
        params: ChainParams = DEFAULT_CHAIN_PARAMS,
    ) -> None:
        self.node_id = node_id
        self.params = params
        self.coinbase = coinbase or Address(
            (b"\xbb" + node_id.encode("utf-8")).ljust(20, b"\x00")[:20]
        )
        self.engine = OCCWSIProposer(evm=evm, config=config, cost_model=cost_model)

    def build_block(
        self,
        parent: BlockHeader,
        parent_state: StateSnapshot,
        pending: Iterable[Transaction],
        *,
        timestamp: Optional[int] = None,
        include_profile: bool = True,
        uncles=(),
    ) -> SealedProposal:
        """Select, execute in parallel, and seal the next block."""
        pool = TxPool()
        pool.add_many(pending)
        ctx = ExecutionContext(
            block_number=parent.number + 1,
            timestamp=timestamp if timestamp is not None else parent.timestamp + 12,
            coinbase=self.coinbase,
            gas_limit=self.engine.config.gas_limit,
        )
        proposal = self.engine.propose(parent_state, pool, ctx)
        return seal_block(
            proposal,
            parent,
            coinbase=self.coinbase,
            timestamp=ctx.timestamp,
            gas_limit=self.engine.config.gas_limit,
            proposer_id=self.node_id,
            include_profile=include_profile,
            uncles=uncles,
            params=self.params,
        )


@dataclass
class ReceiveOutcome:
    """What happened when a validator processed a batch of blocks."""

    pipeline: PipelineResult
    accepted: List[Block]
    rejected: List[Block]
    new_head: bool


class ValidatorNode:
    """A validating node: owns a chain, pipelines received blocks (§4.3)."""

    def __init__(
        self,
        node_id: str,
        genesis_state: StateSnapshot,
        *,
        config: Optional[PipelineConfig] = None,
        evm: Optional[EVM] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.node_id = node_id
        self.chain = Blockchain(genesis_state)
        self.pipeline = ValidatorPipeline(
            evm=evm, config=config, cost_model=cost_model
        )

    def receive_blocks(
        self,
        blocks: Sequence[Block],
        *,
        arrivals: Optional[Sequence[float]] = None,
    ) -> ReceiveOutcome:
        """Validate a batch of (possibly same-height) blocks, extend the chain.

        Parent states are resolved from this node's chain; blocks whose
        parents are unknown are rejected (no orphan pool in this model).
        """
        parent_states = {}
        for block in blocks:
            snapshot = self.chain.state_at(block.header.parent_hash)
            if snapshot is not None:
                parent_states[block.header.parent_hash] = snapshot
        result = self.pipeline.process_blocks(blocks, parent_states)

        accepted: List[Block] = []
        rejected: List[Block] = []
        new_head = False
        for block, validation in zip(blocks, result.results):
            if validation is not None and validation.accepted:
                if block.hash not in self.chain:
                    became_head = self.chain.add_block(block, validation.post_state)
                    new_head = new_head or became_head
                accepted.append(block)
            else:
                rejected.append(block)
        return ReceiveOutcome(
            pipeline=result, accepted=accepted, rejected=rejected, new_head=new_head
        )
