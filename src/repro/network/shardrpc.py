"""Shard RPC messages and the follower-node loop (distributed validation).

The wire protocol of :mod:`repro.distributed`, DiPETrans-shaped: the
master ships a :class:`ShardAssignment` (a set of self-contained component
work units plus the execution context) to one follower; the follower
executes it with the same task bodies a local validator lane would use and
returns a :class:`ShardReply` with per-component outcomes.  Both messages
are frozen dataclasses of pickle-able pieces — nothing in them references
the master's memory, so they model real network messages faithfully.

:class:`FollowerNode` is the server side of that exchange.  It optionally
consults a :class:`~repro.faults.injector.FaultInjector` before replying:
a *crash* swallows the reply entirely (the master's deadline logic owns
recovery), a *stall* pads the reply's simulated latency, and a *byzantine*
fault tampers one transaction result in the reply — detected on the
master by the same Algorithm-2 profile cross-check that catches lying
proposers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.common.types import Hash32
from repro.evm.interpreter import EVMConfig, ExecutionContext
from repro.exec.sharding import ShardWork, execute_shard
from repro.exec.tasks import ComponentOutcome, ValidateShared
from repro.faults.injector import FaultInjector, _keyed_rng
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

__all__ = ["ShardAssignment", "ShardReply", "FollowerNode"]


@dataclass(frozen=True)
class ShardAssignment:
    """Master -> follower: execute these components of this block."""

    block_hash: Hash32
    shard_id: int
    #: re-assignment round (0 = first dispatch); part of the fault key so
    #: a re-assigned shard rolls fresh faults on its new follower
    attempt: int
    works: Tuple[ShardWork, ...]
    ctx: ExecutionContext

    @property
    def n_txs(self) -> int:
        return sum(len(w.tx_indices) for w in self.works)


@dataclass(frozen=True)
class ShardReply:
    """Follower -> master: per-component outcomes for one assignment."""

    shard_id: int
    attempt: int
    follower_id: str
    outcomes: Tuple[ComponentOutcome, ...]
    #: injected stall charged to this reply's simulated latency (µs)
    stall_us: float
    #: host wall-clock the follower spent executing (µs; observability only)
    wall_us: float


class FollowerNode:
    """One follower: executes shard assignments, exactly like a local lane.

    Stateless between assignments — a follower holds no chain and no
    state; every assignment carries its own state slices.  That is what
    lets the coordinator re-assign work freely.
    """

    def __init__(
        self,
        follower_id: str,
        *,
        evm_config: Optional[EVMConfig] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.follower_id = follower_id
        self.injector = injector
        self.metrics = metrics
        self.tracer = (
            tracer.for_process(follower_id) if tracer is not None else NULL_TRACER
        )
        self._shared = ValidateShared(evm_config)
        #: assignments handled (including crashed ones) — observability
        self.handled = 0

    def handle(self, assignment: ShardAssignment) -> Optional[ShardReply]:
        """Execute one assignment; ``None`` models a crashed follower."""
        self.handled += 1
        fault = None
        if self.injector is not None and self.injector.injects_follower_faults:
            fault = self.injector.follower_fault(
                assignment.block_hash,
                assignment.shard_id,
                self.follower_id,
                assignment.attempt,
            )
        if fault is not None and fault.crash:
            if self.metrics is not None:
                self.metrics.counter("dist.follower_crashes").inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    "follower_crash",
                    0.0,
                    shard=assignment.shard_id,
                    attempt=assignment.attempt,
                    block=assignment.block_hash.hex()[:8],
                )
            return None

        start = time.perf_counter()
        outcomes = execute_shard(self._shared, assignment.works, assignment.ctx)
        wall_us = (time.perf_counter() - start) * 1e6

        stall_us = 0.0
        if fault is not None and fault.stall_us > 0.0:
            stall_us = fault.stall_us
            if self.metrics is not None:
                self.metrics.counter("dist.follower_stalls").inc()
        if fault is not None and fault.byzantine:
            outcomes = self._tamper(assignment, outcomes)
            if self.metrics is not None:
                self.metrics.counter("dist.byzantine_replies").inc()

        return ShardReply(
            shard_id=assignment.shard_id,
            attempt=assignment.attempt,
            follower_id=self.follower_id,
            outcomes=outcomes,
            stall_us=stall_us,
            wall_us=wall_us,
        )

    def _tamper(
        self,
        assignment: ShardAssignment,
        outcomes: Tuple[ComponentOutcome, ...],
    ) -> Tuple[ComponentOutcome, ...]:
        """Deterministically corrupt one transaction result in the reply.

        The tampered ``gas_used`` diverges from the block profile, so the
        master's per-transaction verification (Algorithm 2) flags the
        reply instead of trusting the follower.
        """
        assert self.injector is not None
        rng = _keyed_rng(
            self.injector.config.seed,
            "follower_tamper",
            bytes(assignment.block_hash).hex(),
            assignment.shard_id,
            self.follower_id,
            assignment.attempt,
        )
        candidates = [i for i, o in enumerate(outcomes) if o.results]
        if not candidates:
            return outcomes
        ci = rng.choice(candidates)
        outcome = outcomes[ci]
        ti = rng.randrange(len(outcome.results))
        result = outcome.results[ti]
        bad = dataclasses.replace(
            result, gas_used=result.gas_used + 1 + rng.randrange(1000)
        )
        results: List[Any] = list(outcome.results)
        results[ti] = bad
        tampered = outcome._replace(results=tuple(results))
        return outcomes[:ci] + (tampered,) + outcomes[ci + 1 :]
