"""Whole-network simulation: many proposers, many validators, many rounds.

The DiCE loop of Figure 1, closed: each consensus round one (or, with
``fork_probability``, several) proposer(s) build blocks over the canonical
head; every validator pipelines the received block set, extends its chain,
and the network's chains stay in consensus.  Collected statistics give the
system-level view the paper motivates with — execution-layer TPS under
serial vs parallel validation, uncle rates, validator occupancy.

This is a logical-round model (no message latency) by default:
dissemination details are out of the paper's scope, and the interesting
contention — multiple same-height blocks hitting each validator — is
produced directly by the fork probability.  Passing a ``FaultConfig``
replaces the perfect channel with a :class:`FaultyChannel` per validator
(drop, duplication, reordering, bounded delay, with guaranteed
retransmission of drops the following round), and
``byzantine_proposers`` makes chosen proposers publish corrupted blocks —
the adversarial workload the hardened validator stack is built for.

With ``followers > 0`` every validator becomes the master of its own
follower pool (:mod:`repro.distributed`): received blocks are partitioned
into gas-weighted shards and validated across follower nodes, with the
single-node path as the serial fallback.  Results are bit-identical either
way — the knob only changes who does the work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import throughput_tps
from repro.chain.block import Block
from repro.core.occ_wsi import ProposerConfig
from repro.core.pipeline import PipelineConfig
from repro.faults.injector import FaultConfig, FaultInjector, FaultyChannel
from repro.network.node import ProposerNode, ReceiveOutcome, ValidatorNode
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import Universe

__all__ = ["NetworkConfig", "RoundRecord", "NetworkResult", "NetworkSimulation"]


@dataclass(frozen=True)
class NetworkConfig:
    n_proposers: int = 3
    n_validators: int = 2
    rounds: int = 5
    #: probability that a second proposer races the round winner
    fork_probability: float = 0.3
    proposer_lanes: int = 16
    validator_lanes: int = 16
    seed: int = 101
    #: indices into the proposer set whose sealed blocks get corrupted.
    #: Out-of-range indices are a configuration error and raise
    #: ``ValueError`` at construction (a typo'd adversary must not silently
    #: run the honest scenario).
    byzantine_proposers: Tuple[int, ...] = ()
    #: which corruption a byzantine proposer applies (see CORRUPTION_KINDS)
    corruption: str = "profile_write_value"
    #: byzantine strikes before a validator refuses a proposer outright
    quarantine_threshold: int = 3
    #: follower nodes per validator for distributed sharded validation
    #: (0 = single-node validation, the seed behaviour)
    followers: int = 0


@dataclass
class RoundRecord:
    """What happened in one consensus round."""

    height: int
    proposer_ids: List[str]
    block_txs: List[int]
    accepted: int
    pipeline_speedup: float
    pipeline_makespan: float
    serial_time: float


@dataclass
class NetworkResult:
    rounds: List[RoundRecord]
    final_height: int
    final_root_hex: str
    uncle_count: int
    chains_agree: bool
    #: typed rejection counts seen by validator 0 (reason value -> count)
    failure_counts: Dict[str, int] = field(default_factory=dict)
    #: summed FaultyChannel counters (None on the perfect channel)
    channel_counters: Optional[Dict[str, int]] = None
    #: proposers validator 0 has quarantined by the end of the run
    quarantined: List[str] = field(default_factory=list)
    #: transactions actually on the reference chain at the end of the run
    #: (summed over ``canonical_chain()``, not per-round guesses — under
    #: reordering/corruption the round's first block need not be the one
    #: that committed)
    canonical_txs: int = 0

    @property
    def total_txs(self) -> int:
        """Transactions on the canonical chain (one block per height)."""
        return self.canonical_txs

    @property
    def parallel_tps(self) -> float:
        makespan = sum(r.pipeline_makespan for r in self.rounds)
        processed = sum(sum(r.block_txs) for r in self.rounds)
        return throughput_tps(processed, makespan)

    @property
    def serial_tps(self) -> float:
        serial = sum(r.serial_time for r in self.rounds)
        processed = sum(sum(r.block_txs) for r in self.rounds)
        return throughput_tps(processed, serial)


class NetworkSimulation:
    """Drives proposers and validators through consensus rounds."""

    def __init__(
        self,
        universe: Universe,
        *,
        config: Optional[NetworkConfig] = None,
        workload: Optional[WorkloadConfig] = None,
        generator: Optional[Any] = None,
        faults: Optional[FaultConfig] = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.universe = universe
        self.config = config or NetworkConfig()
        self.faults = faults
        #: Root tracer: every node registers itself as one trace process.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.injector = FaultInjector(faults or FaultConfig(seed=self.config.seed))
        self.rng = random.Random(self.config.seed)
        #: ``generator`` overrides the default workload with any block
        #: source exposing ``generate_block_txs`` (e.g. a scenario stream)
        self.generator = generator or BlockWorkloadGenerator(
            universe, workload or WorkloadConfig(seed=self.config.seed)
        )
        self.proposers = [
            ProposerNode(
                f"proposer-{i}",
                config=ProposerConfig(lanes=self.config.proposer_lanes),
                tracer=self.tracer,
                metrics=metrics,
            )
            for i in range(self.config.n_proposers)
        ]
        for index in self.config.byzantine_proposers:
            if not 0 <= index < len(self.proposers):
                raise ValueError(
                    f"byzantine_proposers index {index} out of range for "
                    f"{len(self.proposers)} proposers"
                )
        self.byzantine_ids = {
            self.proposers[i].node_id for i in self.config.byzantine_proposers
        }
        if self.config.followers < 0:
            raise ValueError(f"followers must be >= 0, got {self.config.followers}")
        self.validators = [
            ValidatorNode(
                f"validator-{i}",
                universe.genesis,
                config=PipelineConfig(worker_lanes=self.config.validator_lanes),
                quarantine_threshold=self.config.quarantine_threshold,
                tracer=self.tracer,
                metrics=metrics,
                distributor=self._build_distributor(f"validator-{i}"),
            )
            for i in range(self.config.n_validators)
        ]
        self.channels: Optional[Dict[str, FaultyChannel]] = (
            {v.node_id: FaultyChannel(faults, v.node_id) for v in self.validators}
            if faults is not None
            else None
        )

    def _build_distributor(self, master_id: str) -> Any:
        """A per-validator follower pool, or ``None`` when followers == 0."""
        if self.config.followers <= 0:
            return None
        from repro.distributed import DistributedConfig, ShardCoordinator

        return ShardCoordinator(
            DistributedConfig(
                n_followers=self.config.followers, seed=self.config.seed
            ),
            master_id=master_id,
            injector=self.injector if self.faults is not None else None,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------ #

    def run(self) -> NetworkResult:
        cfg = self.config
        records: List[RoundRecord] = []
        failure_counts: Dict[str, int] = {}

        for round_no in range(cfg.rounds):
            # all nodes share the canonical view of validator 0
            reference = self.validators[0].chain
            parent = reference.head
            parent_state = reference.state_at(parent.hash)

            txs = self.generator.generate_block_txs()
            winner = self.rng.choice(self.proposers)
            contenders = [winner]
            if cfg.n_proposers > 1 and self.rng.random() < cfg.fork_probability:
                rival = self.rng.choice(
                    [p for p in self.proposers if p is not winner]
                )
                contenders.append(rival)

            blocks = []
            for node in contenders:
                view = list(txs)
                self.rng.shuffle(view)
                view.sort(key=lambda t: t.nonce)
                block = node.build_block(parent.header, parent_state, view).block
                if node.node_id in self.byzantine_ids:
                    block = self.injector.corrupt_block(block, cfg.corruption)
                blocks.append(block)

            speedups = []
            makespans = []
            serials = []
            accepted_counts = []
            for validator in self.validators:
                outcome = self._deliver(validator, round_no, blocks)
                accepted_counts.append(len(outcome.accepted))
                speedups.append(outcome.pipeline.speedup)
                makespans.append(outcome.pipeline.makespan)
                serials.append(outcome.pipeline.serial_time)
                if validator is self.validators[0]:
                    self._count_failures(failure_counts, outcome)

            # On the perfect channel every validator sees the same batch, so
            # acceptance must be unanimous; byzantine blocks are rejected by
            # everyone (the corruption is deterministic), honest ones by
            # no one.  Under channel faults delivery differs per validator
            # within a round, so the invariant moves to end-of-run agreement.
            if self.channels is None:
                honest = sum(
                    1 for b in blocks
                    if b.header.proposer_id not in self.byzantine_ids
                )
                expected = honest if self.byzantine_ids else len(blocks)
                if len(set(accepted_counts)) != 1 or accepted_counts[0] > expected:
                    raise AssertionError(
                        f"validators disagree on acceptance: {accepted_counts}"
                    )

            records.append(
                RoundRecord(
                    height=parent.number + 1,
                    proposer_ids=[n.node_id for n in contenders],
                    block_txs=[len(b) for b in blocks],
                    accepted=accepted_counts[0],
                    pipeline_speedup=speedups[0],
                    pipeline_makespan=makespans[0],
                    serial_time=serials[0],
                )
            )

        channel_counters = self._drain_channels(failure_counts)

        heads = {v.chain.head.hash for v in self.validators}
        roots = {v.chain.head_state.state_root() for v in self.validators}
        reference = self.validators[0].chain
        return NetworkResult(
            rounds=records,
            final_height=reference.height(),
            final_root_hex=reference.head_state.state_root().hex(),
            uncle_count=reference.uncle_count(),
            chains_agree=len(heads) == 1 and len(roots) == 1,
            failure_counts=failure_counts,
            channel_counters=channel_counters,
            quarantined=sorted(self.validators[0].quarantined_proposers),
            canonical_txs=sum(len(b) for b in reference.canonical_chain()),
        )

    # ------------------------------------------------------------------ #

    def _deliver(
        self, validator: ValidatorNode, round_no: int, blocks: Sequence[Block]
    ) -> ReceiveOutcome:
        """Hand a round's blocks to one validator, through its channel."""
        trace_on = self.tracer.enabled
        if self.channels is None:
            if trace_on:
                for block in blocks:
                    self.tracer.instant(
                        "send",
                        float(round_no),
                        block=block.hash.hex()[:8],
                        to=validator.node_id,
                    )
            if self.metrics is not None:
                self.metrics.counter("net.blocks_sent").inc(len(blocks))
                self.metrics.counter("net.blocks_delivered").inc(len(blocks))
            return validator.receive_blocks(blocks)
        deliveries = self.channels[validator.node_id].deliver(round_no, blocks)
        if trace_on:
            for block in blocks:
                self.tracer.instant(
                    "send",
                    float(round_no),
                    block=block.hash.hex()[:8],
                    to=validator.node_id,
                )
            for block, arrival in deliveries:
                self.tracer.instant(
                    "receive",
                    arrival,
                    block=block.hash.hex()[:8],
                    at=validator.node_id,
                )
        if self.metrics is not None:
            self.metrics.counter("net.blocks_sent").inc(len(blocks))
            self.metrics.counter("net.blocks_delivered").inc(len(deliveries))
        return validator.receive_blocks(
            [block for block, _ in deliveries],
            arrivals=[arrival for _, arrival in deliveries],
        )

    def _drain_channels(
        self, failure_counts: Dict[str, int]
    ) -> Optional[Dict[str, int]]:
        """Deliver every backlogged retransmission, then sum channel stats."""
        if self.channels is None:
            return None
        for validator in self.validators:
            leftovers = self.channels[validator.node_id].flush()
            if leftovers:
                # flushed retransmissions are deliveries like any other —
                # without this the sent/delivered metrics can never
                # reconcile even though every drop is retransmitted
                if self.metrics is not None:
                    self.metrics.counter("net.blocks_delivered").inc(len(leftovers))
                outcome = validator.receive_blocks(
                    [block for block, _ in leftovers],
                    arrivals=[arrival for _, arrival in leftovers],
                )
                if validator is self.validators[0]:
                    self._count_failures(failure_counts, outcome)
        totals: Dict[str, int] = {}
        for channel in self.channels.values():
            for key, value in channel.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    @staticmethod
    def _count_failures(counts: Dict[str, int], outcome: ReceiveOutcome) -> None:
        for failure in outcome.failures:
            if failure is not None:
                key = failure.reason.value
                counts[key] = counts.get(key, 0) + 1
