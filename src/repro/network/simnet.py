"""Whole-network simulation: many proposers, many validators, many rounds.

The DiCE loop of Figure 1, closed: each consensus round one (or, with
``fork_probability``, several) proposer(s) build blocks over the canonical
head; every validator pipelines the received block set, extends its chain,
and the network's chains stay in consensus.  Collected statistics give the
system-level view the paper motivates with — execution-layer TPS under
serial vs parallel validation, uncle rates, validator occupancy.

This is a logical-round model (no message latency): dissemination details
are out of the paper's scope, and the interesting contention — multiple
same-height blocks hitting each validator — is produced directly by the
fork probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.metrics import throughput_tps
from repro.core.occ_wsi import ProposerConfig
from repro.core.pipeline import PipelineConfig
from repro.network.node import ProposerNode, ValidatorNode
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import Universe

__all__ = ["NetworkConfig", "RoundRecord", "NetworkResult", "NetworkSimulation"]


@dataclass(frozen=True)
class NetworkConfig:
    n_proposers: int = 3
    n_validators: int = 2
    rounds: int = 5
    #: probability that a second proposer races the round winner
    fork_probability: float = 0.3
    proposer_lanes: int = 16
    validator_lanes: int = 16
    seed: int = 101


@dataclass
class RoundRecord:
    """What happened in one consensus round."""

    height: int
    proposer_ids: List[str]
    block_txs: List[int]
    accepted: int
    pipeline_speedup: float
    pipeline_makespan: float
    serial_time: float


@dataclass
class NetworkResult:
    rounds: List[RoundRecord]
    final_height: int
    final_root_hex: str
    uncle_count: int
    chains_agree: bool

    @property
    def total_txs(self) -> int:
        """Transactions on the canonical chain (one block per height)."""
        return sum(r.block_txs[0] for r in self.rounds)

    @property
    def parallel_tps(self) -> float:
        makespan = sum(r.pipeline_makespan for r in self.rounds)
        processed = sum(sum(r.block_txs) for r in self.rounds)
        return throughput_tps(processed, makespan)

    @property
    def serial_tps(self) -> float:
        serial = sum(r.serial_time for r in self.rounds)
        processed = sum(sum(r.block_txs) for r in self.rounds)
        return throughput_tps(processed, serial)


class NetworkSimulation:
    """Drives proposers and validators through consensus rounds."""

    def __init__(
        self,
        universe: Universe,
        *,
        config: Optional[NetworkConfig] = None,
        workload: Optional[WorkloadConfig] = None,
    ) -> None:
        self.universe = universe
        self.config = config or NetworkConfig()
        self.rng = random.Random(self.config.seed)
        self.generator = BlockWorkloadGenerator(
            universe, workload or WorkloadConfig(seed=self.config.seed)
        )
        self.proposers = [
            ProposerNode(
                f"proposer-{i}",
                config=ProposerConfig(lanes=self.config.proposer_lanes),
            )
            for i in range(self.config.n_proposers)
        ]
        self.validators = [
            ValidatorNode(
                f"validator-{i}",
                universe.genesis,
                config=PipelineConfig(worker_lanes=self.config.validator_lanes),
            )
            for i in range(self.config.n_validators)
        ]

    # ------------------------------------------------------------------ #

    def run(self) -> NetworkResult:
        cfg = self.config
        records: List[RoundRecord] = []

        for _ in range(cfg.rounds):
            # all nodes share the canonical view of validator 0
            reference = self.validators[0].chain
            parent = reference.head
            parent_state = reference.state_at(parent.hash)

            txs = self.generator.generate_block_txs()
            winner = self.rng.choice(self.proposers)
            contenders = [winner]
            if cfg.n_proposers > 1 and self.rng.random() < cfg.fork_probability:
                rival = self.rng.choice(
                    [p for p in self.proposers if p is not winner]
                )
                contenders.append(rival)

            blocks = []
            for node in contenders:
                view = list(txs)
                self.rng.shuffle(view)
                view.sort(key=lambda t: t.nonce)
                blocks.append(
                    node.build_block(parent.header, parent_state, view).block
                )

            speedups = []
            makespans = []
            serials = []
            accepted_counts = []
            for validator in self.validators:
                outcome = validator.receive_blocks(blocks)
                accepted_counts.append(len(outcome.accepted))
                speedups.append(outcome.pipeline.speedup)
                makespans.append(outcome.pipeline.makespan)
                serials.append(outcome.pipeline.serial_time)

            if len(set(accepted_counts)) != 1 or accepted_counts[0] != len(blocks):
                raise AssertionError(
                    f"validators disagree on acceptance: {accepted_counts}"
                )

            records.append(
                RoundRecord(
                    height=parent.number + 1,
                    proposer_ids=[n.node_id for n in contenders],
                    block_txs=[len(b) for b in blocks],
                    accepted=accepted_counts[0],
                    pipeline_speedup=speedups[0],
                    pipeline_makespan=makespans[0],
                    serial_time=serials[0],
                )
            )

        heads = {v.chain.head.hash for v in self.validators}
        roots = {v.chain.head_state.state_root() for v in self.validators}
        reference = self.validators[0].chain
        return NetworkResult(
            rounds=records,
            final_height=reference.height(),
            final_root_hex=reference.head_state.state_root().hex(),
            uncle_count=reference.uncle_count(),
            chains_agree=len(heads) == 1 and len(roots) == 1,
        )
