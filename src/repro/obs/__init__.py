"""Observability: sim-clock span tracing, metrics, exporters, baselines.

Everything here runs on the **simulated** clock — span timestamps are the
same microseconds the cost model charges, so traces from same-seed runs
are bit-identical and diffable.  The pieces:

* :mod:`repro.obs.tracer` — nested spans (``Tracer``) with a free
  ``NullTracer`` default so uninstrumented hot paths pay one branch.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with a
  plain-dict ``snapshot()`` merged into ``RunStats.extra``.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and a text flame summary.
* :mod:`repro.obs.baseline` — machine-readable ``BENCH_<name>.json``
  benchmark baselines and a regression comparator.

Live telemetry (the ``repro serve`` surfaces, one ``NULL_EMITTER`` guard
away from free when off):

* :mod:`repro.obs.events` — schema-versioned JSONL event log with
  rotation and torn-tail-tolerant readback.
* :mod:`repro.obs.slo` — ring-buffer SLO windows (seal-latency
  percentiles, abort rate, store write latency).
* :mod:`repro.obs.httpd` — stdlib loopback HTTP endpoint: Prometheus
  text at ``/metrics``, JSON ``/status``, watchdog-fed ``/healthz``.
* :mod:`repro.obs.live` — :class:`LiveTelemetry`, the façade the serve
  loop drives (metrics-delta event derivation + stall watchdog).
"""

from repro.obs.baseline import (
    BaselineComparison,
    Delta,
    compare,
    load_baseline,
    write_baseline,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_EMITTER,
    EventEmitter,
    JsonlEventLog,
    NullEmitter,
    iter_event_files,
    read_events,
)
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    flame_summary,
    write_chrome_trace,
)
from repro.obs.httpd import StatusServer, render_prometheus
from repro.obs.live import (
    WATCHED_COUNTERS,
    LiveConfig,
    LiveTelemetry,
    MetricsDelta,
    StallWatchdog,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flat_name,
)
from repro.obs.slo import SloWindows, WindowStats, percentile
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "flat_name",
    "chrome_trace_events",
    "chrome_trace_json",
    "flame_summary",
    "write_chrome_trace",
    "write_baseline",
    "load_baseline",
    "compare",
    "BaselineComparison",
    "Delta",
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventEmitter",
    "NullEmitter",
    "NULL_EMITTER",
    "JsonlEventLog",
    "read_events",
    "iter_event_files",
    "SloWindows",
    "WindowStats",
    "percentile",
    "StatusServer",
    "render_prometheus",
    "LiveConfig",
    "LiveTelemetry",
    "MetricsDelta",
    "StallWatchdog",
    "WATCHED_COUNTERS",
]
