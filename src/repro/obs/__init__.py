"""Observability: sim-clock span tracing, metrics, exporters, baselines.

Everything here runs on the **simulated** clock — span timestamps are the
same microseconds the cost model charges, so traces from same-seed runs
are bit-identical and diffable.  Four pieces:

* :mod:`repro.obs.tracer` — nested spans (``Tracer``) with a free
  ``NullTracer`` default so uninstrumented hot paths pay one branch.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with a
  plain-dict ``snapshot()`` merged into ``RunStats.extra``.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and a text flame summary.
* :mod:`repro.obs.baseline` — machine-readable ``BENCH_<name>.json``
  benchmark baselines and a regression comparator.
"""

from repro.obs.baseline import (
    BaselineComparison,
    Delta,
    compare,
    load_baseline,
    write_baseline,
)
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    flame_summary,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "chrome_trace_json",
    "flame_summary",
    "write_chrome_trace",
    "write_baseline",
    "load_baseline",
    "compare",
    "BaselineComparison",
    "Delta",
]
