"""Machine-readable benchmark baselines (``BENCH_<name>.json``).

Benchmarks historically printed text tables nothing could diff; this
module gives each one a JSON artifact carrying its headline numbers
(speedups, makespans, abort rates) plus an optional metrics snapshot, and
a :func:`compare` helper that flags regressions between two baselines so
CI can accumulate a perf trajectory.

Direction heuristics: keys ending in ``speedup``/``tps``/``utilization``/
``accepted`` are higher-is-better; ``makespan``/``*_us``/``*_time``/
``aborts``/``*_rate``/``overhead`` are lower-is-better; anything else is
informational (never flagged).  Callers can override per key via
``directions={"key": +1 | -1}``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "write_baseline",
    "load_baseline",
    "compare",
    "direction_of",
    "Delta",
    "BaselineComparison",
    "baseline_path",
    "main",
]

SCHEMA_VERSION = 1

_HIGHER_SUFFIXES = ("speedup", "tps", "utilization", "accepted", "throughput")
_LOWER_SUFFIXES = (
    "makespan",
    "_us",
    "_time",
    "time_s",
    "aborts",
    "_rate",
    "overhead",
    "faults",
    "retries",
    "fallbacks",
    "switches",
)


def direction_of(key: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if informational."""
    leaf = key.rsplit(".", 1)[-1].lower()
    for suffix in _HIGHER_SUFFIXES:
        if leaf.endswith(suffix):
            return 1
    for suffix in _LOWER_SUFFIXES:
        if leaf.endswith(suffix):
            return -1
    return 0


def _flatten(prefix: str, value, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, Mapping):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            _flatten(child, value[key], out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten(f"{prefix}[{index}]", item, out)
    # strings and other leaves are not comparable numbers: skip


def flatten_numbers(headline: Mapping) -> Dict[str, float]:
    """Dotted-key view of every numeric leaf in a headline mapping."""
    out: Dict[str, float] = {}
    _flatten("", headline, out)
    return out


# ---------------------------------------------------------------------- #


def baseline_path(name: str, directory: Optional[str] = None) -> str:
    directory = directory or os.environ.get(
        "REPRO_RESULTS_DIR", os.path.join("benchmarks", "results")
    )
    return os.path.join(directory, f"BENCH_{name}.json")


def write_baseline(
    name: str,
    headline: Mapping,
    *,
    metrics: Optional[Mapping] = None,
    config: Optional[Mapping] = None,
    directory: Optional[str] = None,
) -> str:
    """Persist one benchmark's numbers as ``BENCH_<name>.json``.

    The document is written with sorted keys and a fixed layout so two
    runs of the same benchmark diff cleanly.  Returns the path written.
    """
    path = baseline_path(name, directory)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    document = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "headline": dict(headline),
        "metrics": dict(metrics) if metrics else {},
        "config": dict(config) if config else {},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if "headline" not in document or "name" not in document:
        raise ValueError(f"{path} is not a benchmark baseline (missing keys)")
    return document


# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Delta:
    """One numeric headline key that moved between two baselines."""

    key: str
    old: float
    new: float
    change: float  # relative change, signed: (new - old) / |old|
    direction: int  # +1 higher-is-better, -1 lower-is-better, 0 info

    @property
    def is_improvement(self) -> bool:
        return self.direction != 0 and self.change * self.direction > 0


@dataclass
class BaselineComparison:
    """Outcome of comparing a new baseline against an old one."""

    name: str
    tolerance: float
    regressions: List[Delta] = field(default_factory=list)
    improvements: List[Delta] = field(default_factory=list)
    unchanged: int = 0
    missing_keys: List[str] = field(default_factory=list)
    new_keys: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"baseline {self.name}: "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{self.unchanged} within ±{self.tolerance:.0%}"
        ]
        for delta in self.regressions:
            lines.append(
                f"  REGRESSION {delta.key}: {delta.old:g} -> {delta.new:g} "
                f"({delta.change:+.1%})"
            )
        for delta in self.improvements:
            lines.append(
                f"  improved   {delta.key}: {delta.old:g} -> {delta.new:g} "
                f"({delta.change:+.1%})"
            )
        return "\n".join(lines)


def compare(
    old: Union[str, Mapping],
    new: Union[str, Mapping],
    tolerance: float = 0.05,
    *,
    directions: Optional[Mapping[str, int]] = None,
) -> BaselineComparison:
    """Compare two baselines (paths or loaded documents).

    A *regression* is a directional headline key that moved more than
    ``tolerance`` (relative) in the bad direction.  Comparing a baseline
    against itself always yields zero regressions.
    """
    old_doc = load_baseline(old) if isinstance(old, str) else dict(old)
    new_doc = load_baseline(new) if isinstance(new, str) else dict(new)
    old_nums = flatten_numbers(old_doc.get("headline", {}))
    new_nums = flatten_numbers(new_doc.get("headline", {}))

    result = BaselineComparison(
        name=str(new_doc.get("name", old_doc.get("name", "?"))),
        tolerance=tolerance,
    )
    result.missing_keys = sorted(set(old_nums) - set(new_nums))
    result.new_keys = sorted(set(new_nums) - set(old_nums))

    for key in sorted(set(old_nums) & set(new_nums)):
        old_value, new_value = old_nums[key], new_nums[key]
        direction = (
            directions[key]
            if directions is not None and key in directions
            else direction_of(key)
        )
        if old_value == new_value:
            result.unchanged += 1
            continue
        denom = abs(old_value) if old_value != 0 else 1.0
        change = (new_value - old_value) / denom
        delta = Delta(key, old_value, new_value, change, direction)
        if direction == 0 or abs(change) <= tolerance:
            result.unchanged += 1
        elif change * direction < 0:
            result.regressions.append(delta)
        else:
            result.improvements.append(delta)
    return result


# ---------------------------------------------------------------------- #
# CLI: the bench regression gate (`make bench-compare`, CI "bench-gate")  #
# ---------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    """Compare freshly emitted baselines against committed goldens.

    Exit status 0 when every named baseline is regression-free, 1 when any
    directional headline number moved past the tolerance in the bad
    direction (or a baseline file is missing).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.baseline",
        description="diff BENCH_<name>.json baselines and fail on regressions",
    )
    parser.add_argument(
        "--old-dir",
        default=os.path.join("benchmarks", "results"),
        help="directory holding the reference (golden) baselines",
    )
    parser.add_argument(
        "--new-dir",
        required=True,
        help="directory holding the freshly emitted baselines",
    )
    parser.add_argument(
        "--names",
        nargs="+",
        required=True,
        help="baseline names to compare (BENCH_<name>.json must exist in both)",
    )
    parser.add_argument("--tolerance", type=float, default=0.05)
    args = parser.parse_args(argv)

    failed = False
    for name in args.names:
        old_path = baseline_path(name, args.old_dir)
        new_path = baseline_path(name, args.new_dir)
        try:
            result = compare(old_path, new_path, args.tolerance)
        except (OSError, ValueError) as exc:
            print(f"baseline {name}: ERROR {exc}")
            failed = True
            continue
        print(result.summary())
        if result.missing_keys:
            print(f"  missing keys vs golden: {', '.join(result.missing_keys)}")
        if not result.ok or result.missing_keys:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
