"""Structured, schema-versioned JSONL telemetry events.

The live-telemetry layer (:mod:`repro.obs.live`) narrates what a
long-running node does as an append-only stream of one-line JSON records
written next to the :class:`~repro.store.backend.DiskStore`.  Each record
carries a fixed envelope::

    {"v": 1, "seq": 17, "ts": 204.0, "kind": "block_sealed", ...fields}

* ``v`` — :data:`EVENT_SCHEMA_VERSION`; consumers must refuse newer
  majors rather than misread them.
* ``seq`` — monotonically increasing per emitter, never reused across
  rotation, so a scrape can detect gaps.
* ``ts`` — the **simulated** clock (header-timestamp seconds) by
  default, which is what makes same-seed event streams byte-identical;
  a ``wall`` field is added only when the wall-clock sampler is
  explicitly enabled (serve mode diagnostics, never in determinism
  tests).

Two deliberate asymmetries with the block log next door:

* Telemetry is **best-effort**: a full disk or a torn tail must never
  block the node or its recovery.  Write failures flip the emitter into
  a degraded mode that counts drops instead of raising, and
  :func:`read_events` silently ignores a torn final line.
* The store stays **authoritative**: nothing ever replays state from the
  event log.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Protocol

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventEmitter",
    "NullEmitter",
    "NULL_EMITTER",
    "JsonlEventLog",
    "read_events",
    "iter_event_files",
]

#: Bump on any envelope change; consumers refuse records from the future.
EVENT_SCHEMA_VERSION = 1

#: Every kind the node emits.  Emitting an unknown kind is a programming
#: error (caught eagerly so a typo cannot silently fork the schema).
EVENT_KINDS = frozenset(
    {
        "serve_start",
        "serve_stop",
        "block_sealed",
        "proposal_abort",
        "proposal_retry",
        "serial_fallback",
        "worker_fault",
        "quarantine",
        "store_append",
        "store_snapshot",
        "store_compaction",
        "store_fsync_off",
        "recovery",
        "fault_injected",
        "telemetry_rotate",
        "telemetry_degraded",
    }
)


class EventEmitter(Protocol):
    """What instrumented components need from a telemetry sink."""

    enabled: bool

    def emit(self, kind: str, ts: float, **fields: Any) -> None:
        """Record one event (best-effort; must never raise)."""
        ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class NullEmitter:
    """The free default: every call is a no-op.

    Instrumentation sites guard on :attr:`enabled` (the same pattern as
    :class:`~repro.obs.tracer.NullTracer`) so the production path pays
    one attribute read, keeping the <3% observability-overhead bound.
    """

    enabled: bool = False

    def emit(self, kind: str, ts: float, **fields: Any) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared do-nothing emitter; the default everywhere.
NULL_EMITTER = NullEmitter()


class JsonlEventLog:
    """Append-only JSONL event sink with size-based rotation.

    Records are serialised with sorted keys and compact separators so the
    byte stream of a fixed-seed run is reproducible.  Rotation renames
    the live file to ``<path>.1`` (shifting older generations up) once it
    exceeds ``rotate_bytes``; at most ``max_files`` rotated generations
    are kept.  ``seq`` keeps counting across rotations.

    All I/O failures degrade rather than raise: the first failure emits
    nothing further, and :attr:`dropped` counts the records lost.
    """

    enabled: bool = True

    def __init__(
        self,
        path: str,
        *,
        rotate_bytes: int = 16 * 1024 * 1024,
        max_files: int = 4,
        wall_clock: Optional[Callable[[], float]] = None,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.max_files = max_files
        self.wall_clock = wall_clock
        self.fsync = fsync
        self.seq = 0
        self.dropped = 0
        self.rotations = 0
        self.failed = False
        self._size = 0
        self._fh: Optional[Any] = None
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._heal_torn_tail()
            self.seq = self._resume_seq()
            self._fh = open(path, "a", encoding="utf-8")  # noqa: SIM115 - long-lived
            self._size = self._fh.tell()
        except OSError:
            self._degrade()

    # ------------------------------------------------------------------ #

    def _heal_torn_tail(self) -> None:
        """Drop a half-written final line left by a crash.

        Appending after a torn record would fuse it with the next event
        into one undecodable mid-file line, so a resumed emitter truncates
        back to the last complete record before writing anything.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            fh.seek(0)
            data = fh.read()
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            fh.truncate(keep)

    def _resume_seq(self) -> int:
        """Continue ``seq`` past the existing file's last record.

        Keeps the sequence strictly increasing across kill-and-resume so
        readers can still use gaps as a drop signal.  Any unreadable tail
        just restarts the count — telemetry is best-effort.
        """
        if not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - 65536))
                tail = fh.read().decode("utf-8", errors="replace")
            lines = [line for line in tail.split("\n") if line]
            if not lines:
                return 0
            return int(json.loads(lines[-1]).get("seq", -1)) + 1
        except (OSError, ValueError, json.JSONDecodeError):
            return 0

    def _degrade(self) -> None:
        """Telemetry is best-effort: stop writing, keep the node alive."""
        self.failed = True
        self.enabled = False
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def emit(self, kind: str, ts: float, **fields: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if self._fh is None:
            self.dropped += 1
            return
        record: Dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": ts,
            "kind": kind,
        }
        record.update(fields)
        if self.wall_clock is not None:
            record["wall"] = self.wall_clock()
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        try:
            self._fh.write(line)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            self.dropped += 1
            self._degrade()
            return
        self.seq += 1
        self._size += len(line.encode("utf-8"))
        if self.rotate_bytes > 0 and self._size >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Shift generations up (``path.1`` newest) and reopen fresh."""
        assert self._fh is not None
        try:
            self._fh.close()
            self._fh = None
            oldest = f"{self.path}.{self.max_files}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for gen in range(self.max_files - 1, 0, -1):
                src = f"{self.path}.{gen}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{gen + 1}")
            if self.max_files > 0:
                os.replace(self.path, f"{self.path}.1")
            else:
                os.remove(self.path)
            self._fh = open(  # noqa: SIM115 - long-lived
                self.path, "a", encoding="utf-8"
            )
            self._size = 0
            self.rotations += 1
        except OSError:
            self._degrade()

    def flush(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            except OSError:
                self._degrade()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events(path: str, *, strict: bool = False) -> List[Dict[str, Any]]:
    """Parse a JSONL event file, tolerating a torn final line.

    A crash can leave a half-written last record; that tail is dropped
    (telemetry is best-effort) unless ``strict``.  A record from a newer
    schema major raises ``ValueError`` either way — misreading is worse
    than failing.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1 and not strict:
                break  # torn tail: the crash ate the trailing newline
            raise ValueError(f"{path}:{index + 1}: undecodable event line")
        if record.get("v", 0) > EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"{path}:{index + 1}: event schema v{record.get('v')} is "
                f"newer than supported v{EVENT_SCHEMA_VERSION}"
            )
        events.append(record)
    return events


def iter_event_files(path: str, max_files: int = 16) -> Iterator[str]:
    """Yield rotated generations oldest-first, then the live file."""
    for gen in range(max_files, 0, -1):
        candidate = f"{path}.{gen}"
        if os.path.exists(candidate):
            yield candidate
    if os.path.exists(path):
        yield path
