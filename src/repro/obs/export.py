"""Trace exporters: Chrome trace-event JSON and a text flame summary.

The Chrome format (loadable in Perfetto or ``chrome://tracing``) maps the
simulation's structure onto the viewer's: one *process* per network node
(``Span.pid``), one *thread* per worker lane (``Span.lane``; spans without
a lane land on the control thread).  Timestamps are simulated
microseconds, which is exactly the unit the trace-event spec expects for
``ts``/``dur`` — traces open with real time axes.

Serialisation is deterministic (sorted keys, fixed separators, spans in
creation order), so same-seed runs export byte-identical files — the
contract the determinism tests pin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "flame_summary",
    "CONTROL_TID",
]

#: Thread id used for spans not pinned to a worker lane (phase spans,
#: applier chain, failure events).  Lanes are numbered from 0, so the
#: control thread sorts first in viewers.
CONTROL_TID = -1


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Flatten a tracer into trace-event dicts (metadata first)."""
    events: List[dict] = []

    processes = dict(tracer.processes) or {0: "sim"}
    seen_threads: Dict[Tuple[int, int], None] = {}
    for span in tracer.spans:
        tid = span.lane if span.lane is not None else CONTROL_TID
        seen_threads.setdefault((span.pid, tid), None)
        processes.setdefault(span.pid, f"process-{span.pid}")

    for pid in sorted(processes):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": processes[pid]},
            }
        )
    for pid, tid in sorted(seen_threads):
        label = "control" if tid == CONTROL_TID else f"lane-{tid}"
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": label},
            }
        )

    for span in tracer.spans:
        tid = span.lane if span.lane is not None else CONTROL_TID
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())}
        if span.is_instant:
            events.append(
                {
                    "ph": "i",
                    "pid": span.pid,
                    "tid": tid,
                    "ts": span.start,
                    "name": span.name,
                    "s": "t",
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "X",
                    "pid": span.pid,
                    "tid": tid,
                    "ts": span.start,
                    "dur": span.end - span.start,
                    "name": span.name,
                    "args": args,
                }
            )
    return events


def chrome_trace_json(tracer: Tracer, *, indent: Optional[int] = None) -> str:
    """Deterministic JSON document for the whole trace."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-us", "source": "repro.obs"},
    }
    if indent is None:
        return json.dumps(document, sort_keys=True, separators=(",", ":"))
    return json.dumps(document, sort_keys=True, indent=indent)


def write_chrome_trace(tracer: Tracer, path: str, *, indent: Optional[int] = None) -> str:
    """Write the trace JSON to ``path``; returns the path."""
    payload = chrome_trace_json(tracer, indent=indent)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------- #


class _Node:
    __slots__ = ("total", "self_time", "count", "children")

    def __init__(self) -> None:
        self.total = 0.0
        self.self_time = 0.0
        self.count = 0
        self.children: Dict[str, "_Node"] = {}


def flame_summary(tracer: Tracer, *, min_share: float = 0.0) -> str:
    """Aggregate the span tree by name-path into a text flame view.

    Each line shows a span name at its nesting depth with its *total*
    simulated time, *self* time (total minus direct children), and call
    count; siblings sort by total descending.  Instant events are listed
    as counts only.  ``min_share`` (fraction of the root total) prunes
    noise lines.
    """
    by_id: Dict[int, Span] = {s.id: s for s in tracer.spans}
    root = _Node()

    def path_of(span: Span) -> List[str]:
        names: List[str] = []
        cursor: Optional[Span] = span
        while cursor is not None:
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id is not None else None
        return list(reversed(names))

    instants: Dict[str, int] = {}
    child_time: Dict[int, float] = {}
    for span in tracer.spans:
        if span.is_instant:
            instants[span.name] = instants.get(span.name, 0) + 1
            continue
        if span.parent_id is not None and span.parent_id in by_id:
            child_time[span.parent_id] = child_time.get(span.parent_id, 0.0) + span.duration

    for span in tracer.spans:
        if span.is_instant:
            continue
        node = root
        for name in path_of(span):
            node = node.children.setdefault(name, _Node())
        node.total += span.duration
        node.self_time += max(span.duration - child_time.get(span.id, 0.0), 0.0)
        node.count += 1

    grand_total = sum(c.total for c in root.children.values())
    lines = [
        f"flame summary — {len(tracer.spans)} spans, "
        f"{grand_total:.1f}us total simulated time"
    ]

    def walk(node: _Node, depth: int) -> None:
        ordered = sorted(node.children.items(), key=lambda kv: (-kv[1].total, kv[0]))
        for name, child in ordered:
            if grand_total > 0 and child.total / grand_total < min_share:
                continue
            share = child.total / grand_total if grand_total > 0 else 0.0
            lines.append(
                f"{'  ' * depth}{name:<{max(36 - 2 * depth, 8)}} "
                f"total={child.total:12.1f}us  self={child.self_time:12.1f}us  "
                f"n={child.count:6d}  {share:6.1%}"
            )
            walk(child, depth + 1)

    walk(root, 0)
    if instants:
        lines.append("instant events:")
        for name, count in sorted(instants.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {name:<34} n={count:6d}")
    return "\n".join(lines) + "\n"
