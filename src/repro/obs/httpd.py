"""Zero-dependency HTTP status endpoint for the long-running node.

A stdlib :class:`http.server.ThreadingHTTPServer` bound to loopback
serving four routes:

* ``/metrics`` — Prometheus text exposition (format 0.0.4) rendered from
  a :class:`~repro.obs.metrics.MetricsRegistry` snapshot plus the SLO
  quantiles;
* ``/status`` — the full JSON document (height, report, SLO windows);
* ``/healthz`` — liveness: 200 while the pipeline seals blocks, 503 once
  the stall watchdog trips;
* ``/readyz`` — readiness: 503 until recovery has finished and the serve
  loop is producing.

The server thread only *reads* a snapshot the serve loop refreshes after
every block, so a scrape never contends with execution; ``/healthz``
additionally consults the wall-clock watchdog directly, which is what
lets it flip to unhealthy while the loop itself is stuck.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Protocol, Tuple

__all__ = ["StatusProvider", "StatusServer", "render_prometheus"]

#: Prefix every exposed metric so scrapes from several services can share
#: one Prometheus without collisions.
METRIC_PREFIX = "repro"


def _sanitize(name: str) -> str:
    """Dotted metric path -> a legal Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{METRIC_PREFIX}_{sanitized}"


def _fmt(value: float) -> str:
    """Prometheus float formatting: integers stay integral."""
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    metrics_snapshot: Mapping[str, Any],
    *,
    slo: Optional[Mapping[str, Any]] = None,
    health: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    Counters become ``<name>_total``, gauges are exported as-is,
    histograms become the conventional cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count``.  The current SLO window's quantiles
    land as ``repro_slo_*{quantile="..."}`` gauges and the health block
    as ``repro_up`` / ``repro_healthy`` flags.
    """
    lines: List[str] = []

    for name, value in sorted(metrics_snapshot.get("counters", {}).items()):
        metric = _sanitize(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, gauge in sorted(metrics_snapshot.get("gauges", {}).items()):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge['value'])}")

    for name, hist in sorted(metrics_snapshot.get("histograms", {}).items()):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        # bucket upper bounds are the interior edges; the final bucket
        # (clamping semantics) is exported as +Inf like any histogram
        for edge, count in zip(hist["edges"][1:-1], hist["counts"][:-1]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_fmt(hist['total'])}")
        lines.append(f"{metric}_count {hist['count']}")

    if slo:
        totals = slo.get("totals", {})
        for key, value in sorted(totals.items()):
            metric = _sanitize(f"slo.{key}") + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(value)}")
        windows = slo.get("windows", [])
        if windows:
            current = windows[-1]
            for stem, quantile in (
                ("seal_p50_us", "0.5"),
                ("seal_p95_us", "0.95"),
                ("seal_p99_us", "0.99"),
            ):
                metric = _sanitize("slo.seal_latency_us")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_fmt(current[stem])}'
                )
            metric = _sanitize("slo.abort_rate")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(current['abort_rate'])}")

    up = 1
    healthy = 1
    ready = 1
    if health is not None:
        healthy = 1 if health.get("healthy", True) else 0
        ready = 1 if health.get("ready", True) else 0
    for metric, value in (
        (f"{METRIC_PREFIX}_up", up),
        (f"{METRIC_PREFIX}_healthy", healthy),
        (f"{METRIC_PREFIX}_ready", ready),
    ):
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    return "\n".join(lines) + "\n"


class StatusProvider(Protocol):
    """What the HTTP handlers need from the telemetry layer."""

    def metrics_text(self) -> str: ...

    def status_json(self) -> Dict[str, Any]: ...

    def health(self) -> Dict[str, Any]: ...


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the provider; silent (no per-request stderr spam)."""

    provider: StatusProvider  # set by StatusServer on the handler class

    # BaseHTTPRequestHandler logs every request to stderr by default
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None

    def _reply(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._reply(
                    200,
                    self.provider.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/status":
                self._reply(
                    200,
                    json.dumps(self.provider.status_json(), sort_keys=True),
                    "application/json",
                )
            elif path == "/healthz":
                health = self.provider.health()
                if health.get("healthy", False):
                    self._reply(200, "ok\n", "text/plain")
                else:
                    detail = health.get("detail", "unhealthy")
                    self._reply(503, f"unhealthy: {detail}\n", "text/plain")
            elif path == "/readyz":
                health = self.provider.health()
                if health.get("ready", False):
                    self._reply(200, "ready\n", "text/plain")
                else:
                    self._reply(503, "not ready\n", "text/plain")
            else:
                self._reply(404, "not found\n", "text/plain")
        except BrokenPipeError:  # client went away mid-reply
            pass


class StatusServer:
    """Owns the listener thread; binds loopback-only by design."""

    def __init__(
        self,
        provider: StatusProvider,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.provider = provider
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, bound port)."""
        handler = type("_BoundHandler", (_Handler,), {"provider": self.provider})
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-status-http",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
