"""Live telemetry façade for the long-running node.

:class:`LiveTelemetry` sits between the serve loop and the three output
surfaces built in this package:

* the structured JSONL event log (:mod:`repro.obs.events`),
* the rolling SLO windows (:mod:`repro.obs.slo`),
* the HTTP status endpoint (:mod:`repro.obs.httpd`).

It derives per-block figures from the **existing metrics seams**: the
proposer/validator/pipeline/store already maintain counters in the shared
:class:`~repro.obs.metrics.MetricsRegistry`, so :class:`MetricsDelta`
diffs those counters between blocks instead of threading new hooks
through every hot path.  The production default is a
:data:`~repro.obs.events.NULL_EMITTER` and no HTTP server, which keeps
the whole layer at the one-guard cost the observability overhead
benchmark bounds below 3%.

Determinism contract: with the wall-clock sampler off (the default), the
emitted event stream of a fixed-seed serve run is byte-identical across
runs and across ``serial|thread|process`` backends — timestamps are
simulated header seconds and every counted quantity is sim-deterministic.
The stall watchdog is the one wall-clock citizen (a stalled pipeline is
invisible on the simulated clock); it only feeds ``/healthz``, never the
event log.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.events import (
    NULL_EMITTER,
    EventEmitter,
    JsonlEventLog,
)
from repro.obs.httpd import StatusServer, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloWindows

__all__ = [
    "LiveConfig",
    "StallWatchdog",
    "MetricsDelta",
    "LiveTelemetry",
]

#: Counter names the per-block delta scan watches (all maintained by the
#: existing proposer/validator/pipeline/node/store instrumentation).
WATCHED_COUNTERS: Tuple[str, ...] = (
    "proposer.executions",
    "proposer.aborts",
    "pipeline.exec_retries",
    "pipeline.serial_fallbacks",
    "pipeline.worker_faults",
    "node.proposers_quarantined",
    "store.blocks_appended",
    "store.bytes_appended",
    "store.snapshots",
    "store.compactions",
)


@dataclass(frozen=True)
class LiveConfig:
    """Everything that shapes one node's live telemetry."""

    #: JSONL event log path (None = NullEmitter, the free default)
    events_path: Optional[str] = None
    rotate_bytes: int = 16 * 1024 * 1024
    max_event_files: int = 4
    event_fsync: bool = False
    #: SLO window width in clock seconds and retained window count
    window_s: float = 60.0
    history: int = 30
    #: sample SLO windows (and stamp events) on the wall clock instead of
    #: the simulated one — serve-mode diagnostics only, breaks determinism
    wall_clock: bool = False
    #: HTTP status endpoint (None = off, 0 = ephemeral port)
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    #: /healthz flips unhealthy after ``stall_factor * stall_interval_s``
    #: wall seconds without a sealed block
    stall_interval_s: float = 5.0
    stall_factor: float = 4.0


class StallWatchdog:
    """Wall-clock liveness: unhealthy after ``factor×interval`` of silence.

    The serve loop calls :meth:`beat` after every sealed block; the HTTP
    thread calls :meth:`status` on each probe.  Because the status read
    recomputes silence from the wall clock, ``/healthz`` flips while the
    loop is *stuck*, not merely after it recovers.  ``unhealthy_intervals``
    counts threshold crossings for the exit summary.
    """

    def __init__(
        self,
        *,
        interval_s: float = 5.0,
        factor: float = 4.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0 or factor <= 0:
            raise ValueError("watchdog interval and factor must be positive")
        self.interval_s = interval_s
        self.factor = factor
        self.clock = clock
        self.ready = False
        self.unhealthy_intervals = 0
        self._started = clock()
        self._last_beat: Optional[float] = None

    @property
    def threshold_s(self) -> float:
        return self.interval_s * self.factor

    def _last(self) -> float:
        return self._last_beat if self._last_beat is not None else self._started

    def mark_ready(self) -> None:
        """Recovery finished; the loop is about to produce."""
        self.ready = True
        self._started = self.clock()

    def beat(self) -> None:
        now = self.clock()
        if now - self._last() > self.threshold_s:
            self.unhealthy_intervals += 1
        self._last_beat = now

    def status(self) -> Dict[str, Any]:
        silent_s = self.clock() - self._last()
        healthy = silent_s <= self.threshold_s
        detail = (
            f"no block sealed for {silent_s:.1f}s "
            f"(threshold {self.threshold_s:.1f}s)"
            if not healthy
            else "ok"
        )
        return {
            "healthy": healthy,
            "ready": self.ready,
            "silent_s": silent_s,
            "threshold_s": self.threshold_s,
            "unhealthy_intervals": self.unhealthy_intervals,
            "detail": detail,
        }


class MetricsDelta:
    """Per-block counter deltas over the shared registry.

    Reading the registry *is* the existing metrics seam: the hot paths
    already pay for these counters, so live telemetry derives its events
    from their movement instead of new instrumentation calls.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        names: Tuple[str, ...] = WATCHED_COUNTERS,
    ) -> None:
        self.registry = registry
        self.names = names
        self._last: Dict[str, int] = {}
        self.rebase()

    def _read(self) -> Dict[str, int]:
        counters = self.registry.snapshot()["counters"]
        return {name: int(counters.get(name, 0)) for name in self.names}

    def rebase(self) -> None:
        """Forget history (e.g. after recovery replayed into the counters)."""
        self._last = self._read()

    def delta(self) -> Dict[str, int]:
        """Counter movement since the previous call (never negative)."""
        current = self._read()
        moved = {
            name: max(current[name] - self._last.get(name, 0), 0)
            for name in self.names
        }
        self._last = current
        return moved


class LiveTelemetry:
    """The serve loop's one telemetry object (also the HTTP provider)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        config: Optional[LiveConfig] = None,
        emitter: Optional[EventEmitter] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or LiveConfig()
        self.registry = registry
        if emitter is not None:
            self.emitter = emitter
        elif self.config.events_path:
            self.emitter = JsonlEventLog(
                self.config.events_path,
                rotate_bytes=self.config.rotate_bytes,
                max_files=self.config.max_event_files,
                wall_clock=clock if self.config.wall_clock else None,
                fsync=self.config.event_fsync,
            )
        else:
            self.emitter = NULL_EMITTER
        self.slo = SloWindows(
            window_s=self.config.window_s, history=self.config.history
        )
        self.watchdog = StallWatchdog(
            interval_s=self.config.stall_interval_s,
            factor=self.config.stall_factor,
            clock=clock,
        )
        self.scanner = MetricsDelta(registry)
        self.server: Optional[StatusServer] = None
        self.clock = clock
        self._lock = threading.Lock()
        self._status: Dict[str, Any] = {"schema": 1}
        self._started_wall = clock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start_server(self) -> Optional[Tuple[str, int]]:
        """Bind the status endpoint when the config asks for one."""
        if self.config.http_port is None:
            return None
        self.server = StatusServer(
            self, host=self.config.http_host, port=self.config.http_port
        )
        return self.server.start()

    def stop_server(self) -> None:
        if self.server is not None:
            self.server.stop()
            self.server = None

    def close(self) -> None:
        self.stop_server()
        self.emitter.close()

    # ------------------------------------------------------------------ #
    # serve-loop hooks
    # ------------------------------------------------------------------ #

    def seed_totals(self, height: int) -> None:
        """Re-seed monotonic counters from the recovered chain height.

        After a kill-and-resume, ``/metrics`` must expose *cumulative*
        figures: a node at height H that only produced two blocks this
        session still reports H blocks total.
        """
        # inc(0) still registers the counter, so a scrape that lands
        # before the first block already sees the metric
        self.registry.counter("serve.blocks_total").inc(height)
        self.slo.total_blocks += height
        self.registry.gauge("serve.height").set(float(height))
        # recovery replay already moved store/proposer counters; events
        # must narrate post-recovery movement only
        self.scanner.rebase()

    def serve_started(self, ts: float, *, height: int, resumed: bool) -> None:
        if self.emitter.enabled:
            self.emitter.emit(
                "serve_start", ts, height=height, resumed=bool(resumed)
            )

    def recovery_finished(
        self, ts: float, *, height: int, replayed: int, healed: int
    ) -> None:
        self.watchdog.mark_ready()
        if self.emitter.enabled:
            self.emitter.emit(
                "recovery", ts, height=height, replayed=replayed, healed=healed
            )

    def block_sealed(
        self,
        *,
        height: int,
        sim_ts: float,
        txs: int,
        gas_used: int,
        seal_latency_us: float,
        wall_latency_us: Optional[float] = None,
        store_write_us: Optional[float] = None,
    ) -> None:
        """Fold one sealed block into every surface.

        ``sim_ts``/``seal_latency_us`` are simulated (deterministic);
        the wall variants only matter when the wall-clock sampler is on.
        """
        moved = self.scanner.delta()
        aborts = moved["proposer.aborts"]
        retries = moved["pipeline.exec_retries"]
        fallbacks = moved["pipeline.serial_fallbacks"]
        faults = moved["pipeline.worker_faults"]
        quarantines = moved["node.proposers_quarantined"]

        wall_mode = self.config.wall_clock
        ts = self.clock() - self._started_wall if wall_mode else sim_ts
        latency = (
            wall_latency_us
            if wall_mode and wall_latency_us is not None
            else seal_latency_us
        )
        self.slo.observe_block(
            ts,
            seal_latency_us=latency,
            txs=txs,
            executions=moved["proposer.executions"],
            aborts=aborts,
            retries=retries,
            fallbacks=fallbacks,
            worker_faults=faults,
        )
        if store_write_us is not None:
            self.slo.observe_store_write(ts, store_write_us)

        self.registry.counter("serve.blocks_total").inc()
        self.registry.gauge("serve.height").set(float(height))
        self.watchdog.beat()

        if self.emitter.enabled:
            emit = self.emitter.emit
            emit(
                "block_sealed",
                sim_ts,
                height=height,
                txs=txs,
                gas=gas_used,
                aborts=aborts,
                retries=retries,
                fallbacks=fallbacks,
                latency_us=round(seal_latency_us, 3),
            )
            if aborts:
                emit("proposal_abort", sim_ts, height=height, count=aborts)
            if retries:
                emit("proposal_retry", sim_ts, height=height, count=retries)
            if fallbacks:
                emit("serial_fallback", sim_ts, height=height, count=fallbacks)
            if faults:
                emit("worker_fault", sim_ts, height=height, count=faults)
            if quarantines:
                emit("quarantine", sim_ts, height=height, count=quarantines)

    def serve_stopped(
        self, ts: float, *, height: int, produced: int, sealed: bool
    ) -> None:
        if self.emitter.enabled:
            self.emitter.emit(
                "serve_stop",
                ts,
                height=height,
                produced=produced,
                sealed=bool(sealed),
            )
        self.emitter.flush()

    # ------------------------------------------------------------------ #
    # StatusProvider: what the HTTP thread reads
    # ------------------------------------------------------------------ #

    def refresh(self, **top_level: Any) -> None:
        """Cache a consistent snapshot for scrapes (called per block)."""
        doc: Dict[str, Any] = {"schema": 1}
        doc.update(top_level)
        doc["uptime_s"] = self.clock() - self._started_wall
        doc["slo"] = self.slo.snapshot()
        doc["metrics"] = self.registry.snapshot()
        doc["events"] = {
            "enabled": bool(self.emitter.enabled),
            "seq": getattr(self.emitter, "seq", 0),
            "dropped": getattr(self.emitter, "dropped", 0),
            "rotations": getattr(self.emitter, "rotations", 0),
        }
        with self._lock:
            self._status = doc

    def health(self) -> Dict[str, Any]:
        return self.watchdog.status()

    def status_json(self) -> Dict[str, Any]:
        with self._lock:
            doc = dict(self._status)
        doc["health"] = self.health()
        return doc

    def metrics_text(self) -> str:
        with self._lock:
            snapshot = self._status.get("metrics")
            slo = self._status.get("slo")
        if snapshot is None:
            snapshot = self.registry.snapshot()
        if slo is None:
            slo = self.slo.snapshot()
        return render_prometheus(snapshot, slo=slo, health=self.health())
