"""Named counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink a run's instrumentation
writes to; :meth:`MetricsRegistry.snapshot` renders everything as plain
nested dicts (sorted keys) so snapshots can be merged into
``RunStats.extra``, serialised into ``BENCH_*.json`` baselines, and
compared for equality across same-seed runs.

Naming convention (see docs/ARCHITECTURE.md): dotted lowercase paths,
``<component>.<quantity>[_<unit>]`` — e.g. ``proposer.aborts``,
``validator.exec_us``, ``scheduler.subgraph_size``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "flat_name"]


def flat_name(
    name: str, *parts: Union[str, int], **labels: Union[str, int]
) -> str:
    """Build a flat dotted metric key from a stem plus suffixes.

    Positional parts are appended verbatim (``flat_name("validator.failure",
    reason.value)`` keeps the historical ``validator.failure.<reason>``
    keys); keyword labels are appended as sorted ``key.value`` pairs, so
    ``flat_name("store.append", gen=3)`` → ``store.append.gen.3``.  This is
    the sanctioned replacement for ad-hoc f-string metric names: the label
    order is canonical, so two call sites can never mint two spellings of
    the same metric.
    """
    pieces = [name, *(str(p) for p in parts)]
    for key in sorted(labels):
        pieces.append(f"{key}.{labels[key]}")
    return ".".join(pieces)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """Last-write-wins value with min/max/samples bookkeeping.

    ``set`` is also how time-series-ish quantities (txpool depth over
    time) are observed: the snapshot keeps the last value plus the range
    the gauge moved through.
    """

    __slots__ = ("name", "value", "minimum", "maximum", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.samples = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        self.samples += 1


class Histogram:
    """Fixed-bucket histogram over half-open buckets ``[e[i], e[i+1])``.

    Out-of-range samples clamp into the first/last bucket (the same
    semantics as :func:`repro.simcore.stats.histogram`, so rendered and
    snapshot histograms agree).  Placement is a :func:`bisect.bisect_right`
    over the sorted edges — O(log buckets) per sample.
    """

    __slots__ = ("name", "edges", "counts", "total", "count", "minimum", "maximum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if len(edges) < 2:
            raise ValueError("need at least two edges")
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram {name}: edges must be sorted")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) - 1)
        self.total = 0.0
        self.count = 0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.edges, value) - 1
        if index < 0:
            index = 0  # below the first edge: clamp low
        elif index >= len(self.counts):
            index = len(self.counts) - 1  # at/above the last edge: clamp high
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create registry for a run's named metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #

    def counter(
        self, name: str, *parts: Union[str, int], **labels: Union[str, int]
    ) -> Counter:
        if parts or labels:
            name = flat_name(name, *parts, **labels)
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(
        self, name: str, *parts: Union[str, int], **labels: Union[str, int]
    ) -> Gauge:
        if parts or labels:
            name = flat_name(name, *parts, **labels)
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        edges: Sequence[float],
        *parts: Union[str, int],
        **labels: Union[str, int],
    ) -> Histogram:
        if parts or labels:
            name = flat_name(name, *parts, **labels)
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name, edges)
        elif tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(f"histogram {name} re-registered with different edges")
        return metric

    def _check_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with another type")

    def reset(self) -> None:
        """Zero every metric in place, keeping registrations (and therefore
        any references instrumentation sites hold) valid.

        Used between runs that share a registry — e.g. a resumed serve
        session re-seeding cumulative counters after recovery replay.
        """
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
            gauge.minimum = None
            gauge.maximum = None
            gauge.samples = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * len(histogram.counts)
            histogram.total = 0.0
            histogram.count = 0
            histogram.minimum = None
            histogram.maximum = None

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Plain sorted dicts — JSON-ready, equality-comparable."""
        counters = {n: c.value for n, c in sorted(self._counters.items())}
        gauges = {
            n: {
                "value": g.value,
                "min": g.minimum,
                "max": g.maximum,
                "samples": g.samples,
            }
            for n, g in sorted(self._gauges.items())
        }
        histograms = {
            n: {
                "edges": list(h.edges),
                "counts": list(h.counts),
                "count": h.count,
                "total": h.total,
                "mean": h.mean,
                "min": h.minimum,
                "max": h.maximum,
            }
            for n, h in sorted(self._histograms.items())
        }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_into(self, extra: dict) -> dict:
        """Attach this registry's snapshot to a ``RunStats.extra`` dict."""
        extra["metrics"] = self.snapshot()
        return extra
