"""Rolling-window SLO aggregation for the live node.

Block-STM-style speculative executors are tuned off their *live* abort
and re-validation rates, and a sharding master judges follower health off
recent — not lifetime — latency.  This module keeps a ring buffer of
fixed-duration windows over an abstract clock (simulated header-timestamp
seconds by default; wall seconds in serve mode when requested) and
computes per-window:

* p50/p95/p99 block seal latency (µs),
* abort rate (aborts / executions),
* retry / serial-fallback / worker-fault counts,
* store write latency percentiles (µs),
* last-seen txpool depth,

plus cumulative totals since the aggregator was created (or re-seeded
after recovery).  Percentiles are nearest-rank over the raw samples of
one window, which stays exact and cheap because a window only ever holds
one sample per block.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["WindowStats", "SloWindows", "percentile"]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of unsorted samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(samples)
    rank = max(int(q * len(ordered) + 0.5), 1)
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class WindowStats:
    """Everything observed inside one fixed-duration window."""

    index: int  # ts // window_s — identifies the window on the clock
    start_ts: float
    seal_latencies_us: List[float] = field(default_factory=list)
    store_write_us: List[float] = field(default_factory=list)
    blocks: int = 0
    txs: int = 0
    executions: int = 0
    aborts: int = 0
    retries: int = 0
    fallbacks: int = 0
    worker_faults: int = 0
    txpool_depth: Optional[float] = None

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.executions if self.executions else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Plain sorted-key dict for /status JSON and tests."""
        return {
            "index": self.index,
            "start_ts": self.start_ts,
            "blocks": self.blocks,
            "txs": self.txs,
            "executions": self.executions,
            "aborts": self.aborts,
            "abort_rate": self.abort_rate,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "worker_faults": self.worker_faults,
            "seal_p50_us": percentile(self.seal_latencies_us, 0.50),
            "seal_p95_us": percentile(self.seal_latencies_us, 0.95),
            "seal_p99_us": percentile(self.seal_latencies_us, 0.99),
            "store_p50_us": percentile(self.store_write_us, 0.50),
            "store_p95_us": percentile(self.store_write_us, 0.95),
            "store_p99_us": percentile(self.store_write_us, 0.99),
            "txpool_depth": self.txpool_depth,
        }


class SloWindows:
    """Ring buffer of :class:`WindowStats` keyed on an external clock.

    Callers pass explicit timestamps (the sim clock by default), so the
    aggregator itself never reads a clock — the wall-clock option in
    serve mode is purely the caller feeding wall seconds instead.
    Observations older than the current window are folded into the
    current one rather than lost (the clock is monotone per caller, so
    this only happens for same-instant feeds).
    """

    def __init__(self, *, window_s: float = 60.0, history: int = 30) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if history < 1:
            raise ValueError("need at least one window of history")
        self.window_s = float(window_s)
        self.history = history
        self._windows: Deque[WindowStats] = deque(maxlen=history)
        # cumulative totals survive window eviction (and are re-seedable
        # from a recovered chain height, see LiveTelemetry.seed_totals)
        self.total_blocks = 0
        self.total_txs = 0
        self.total_aborts = 0
        self.total_retries = 0
        self.total_fallbacks = 0
        self.total_worker_faults = 0

    # ------------------------------------------------------------------ #

    def _window_at(self, ts: float) -> WindowStats:
        index = int(ts // self.window_s)
        if self._windows and index <= self._windows[-1].index:
            return self._windows[-1]
        window = WindowStats(index=index, start_ts=index * self.window_s)
        self._windows.append(window)
        return window

    def observe_block(
        self,
        ts: float,
        *,
        seal_latency_us: float,
        txs: int = 0,
        executions: int = 0,
        aborts: int = 0,
        retries: int = 0,
        fallbacks: int = 0,
        worker_faults: int = 0,
    ) -> None:
        """Fold one sealed block's figures into the window at ``ts``."""
        window = self._window_at(ts)
        window.blocks += 1
        window.txs += txs
        window.executions += executions
        window.aborts += aborts
        window.retries += retries
        window.fallbacks += fallbacks
        window.worker_faults += worker_faults
        window.seal_latencies_us.append(float(seal_latency_us))
        self.total_blocks += 1
        self.total_txs += txs
        self.total_aborts += aborts
        self.total_retries += retries
        self.total_fallbacks += fallbacks
        self.total_worker_faults += worker_faults

    def observe_store_write(self, ts: float, latency_us: float) -> None:
        self._window_at(ts).store_write_us.append(float(latency_us))

    def observe_txpool_depth(self, ts: float, depth: float) -> None:
        self._window_at(ts).txpool_depth = float(depth)

    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Optional[WindowStats]:
        return self._windows[-1] if self._windows else None

    def windows(self) -> List[WindowStats]:
        """Oldest-first retained windows."""
        return list(self._windows)

    def totals(self) -> Dict[str, int]:
        return {
            "blocks": self.total_blocks,
            "txs": self.total_txs,
            "aborts": self.total_aborts,
            "retries": self.total_retries,
            "fallbacks": self.total_fallbacks,
            "worker_faults": self.total_worker_faults,
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: totals plus the retained window series."""
        return {
            "window_s": self.window_s,
            "history": self.history,
            "totals": self.totals(),
            "windows": [w.snapshot() for w in self._windows],
        }
