"""Zero-dependency span tracing on the simulated clock.

A :class:`Span` is one named interval of **simulated** time (the same
microseconds the :class:`~repro.simcore.costmodel.CostModel` charges),
optionally pinned to a worker lane and a process (one process per network
node in multi-node traces).  Spans nest: a span recorded while another is
open via :meth:`Tracer.scope` becomes its child, which is how the
exporters reconstruct the propose→disseminate→validate→commit tree.

Because timestamps come from the simulation rather than the wall clock,
two runs with the same seed produce *identical* span lists — the property
the determinism test suite pins down to the exported JSON bytes.

The default tracer everywhere is the :data:`NULL_TRACER` singleton whose
``enabled`` flag is ``False``; instrumented hot paths hoist that flag into
a local (``trace_on = tracer.enabled``) so the uninstrumented cost is one
attribute read per run, not per transaction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "ProcessTracer"]


class Span:
    """One named interval of simulated time.

    ``start``/``end`` are simulated microseconds; an *instant* event has
    ``end == start``.  ``lane`` maps to a Chrome-trace thread id, ``pid``
    to a process (network node).  ``attrs`` is free-form and lands in the
    Chrome-trace ``args`` block.
    """

    __slots__ = ("id", "name", "start", "end", "parent_id", "lane", "pid", "attrs")

    def __init__(
        self,
        id: int,
        name: str,
        start: float,
        end: Optional[float] = None,
        *,
        parent_id: Optional[int] = None,
        lane: Optional[int] = None,
        pid: int = 0,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.id = id
        self.name = name
        self.start = start
        self.end = end
        self.parent_id = parent_id
        self.lane = lane
        self.pid = pid
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_instant(self) -> bool:
        return self.end is None or self.end == self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.id}, {self.name!r}, {self.start}..{self.end}, "
            f"lane={self.lane}, pid={self.pid})"
        )


class _Scope:
    """Context manager returned by :meth:`Tracer.scope`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack
        assert stack and stack[-1] is self.span, "unbalanced tracer scopes"
        stack.pop()
        if self.span.end is None:
            # close at the latest child end (or zero-width if childless)
            latest = self.span.start
            for other in self._tracer.spans:
                if other.parent_id == self.span.id and other.end is not None:
                    latest = max(latest, other.end)
            self.span.end = latest


class Tracer:
    """Collects spans; deterministic ids in creation order."""

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._ids = itertools.count()
        self._stack: List[Span] = []
        #: pid -> human name, in registration order (pid 0 is the default
        #: process used when no :meth:`for_process` scoping happened)
        self.processes: Dict[int, str] = {0: "sim"}
        self._next_pid = itertools.count(1)

    # ------------------------------------------------------------------ #

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        lane: Optional[int] = None,
        pid: int = 0,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record one completed span, parented to the open scope (if any)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: {start}..{end}")
        parent_id = parent.id if parent is not None else (
            self._stack[-1].id if self._stack else None
        )
        span = Span(
            next(self._ids), name, start, end,
            parent_id=parent_id, lane=lane, pid=pid, attrs=attrs or None,
        )
        self.spans.append(span)
        return span

    def instant(
        self,
        name: str,
        ts: float,
        *,
        lane: Optional[int] = None,
        pid: int = 0,
        **attrs: Any,
    ) -> Span:
        """Record a zero-width event (abort, fault, quarantine, message)."""
        return self.record(name, ts, ts, lane=lane, pid=pid, **attrs)

    def scope(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        *,
        lane: Optional[int] = None,
        pid: int = 0,
        **attrs: Any,
    ) -> _Scope:
        """Open a span that parents everything recorded inside the ``with``.

        When ``end`` is omitted, the span closes at its latest child's end
        (callers may also set ``span.end`` explicitly before exit).
        """
        parent_id = self._stack[-1].id if self._stack else None
        span = Span(
            next(self._ids), name, start, end,
            parent_id=parent_id, lane=lane, pid=pid, attrs=attrs or None,
        )
        self.spans.append(span)
        return _Scope(self, span)

    # ------------------------------------------------------------------ #

    def for_process(self, name: str) -> "ProcessTracer":
        """A view of this tracer that stamps every span with a new pid.

        One Chrome-trace "process" per network node: register each node's
        id once and route its instrumentation through the returned proxy.
        """
        pid = next(self._next_pid)
        self.processes[pid] = name
        return ProcessTracer(self, pid)

    # -- queries used by exporters and tests --------------------------- #

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)


class ProcessTracer:
    """Per-node proxy: forwards to the root tracer with a fixed pid."""

    __slots__ = ("_root", "pid")

    def __init__(self, root: Tracer, pid: int) -> None:
        self._root = root
        self.pid = pid

    @property
    def enabled(self) -> bool:
        return self._root.enabled

    @property
    def spans(self) -> List[Span]:
        return self._root.spans

    def record(self, name, start, end, *, lane=None, pid=None, parent=None, **attrs):
        return self._root.record(
            name, start, end, lane=lane, pid=self.pid, parent=parent, **attrs
        )

    def instant(self, name, ts, *, lane=None, pid=None, **attrs):
        return self._root.instant(name, ts, lane=lane, pid=self.pid, **attrs)

    def scope(self, name, start, end=None, *, lane=None, pid=None, **attrs):
        return self._root.scope(name, start, end, lane=lane, pid=self.pid, **attrs)

    def for_process(self, name: str) -> "ProcessTracer":
        return self._root.for_process(name)


class _NullScope:
    """Reusable no-op context manager; yields the shared null span."""

    __slots__ = ("span",)

    def __init__(self, span: Span) -> None:
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """The free default: every call is a no-op returning shared objects.

    Instrumentation sites additionally guard on :attr:`enabled` so that
    attribute-dict construction never happens on the production path.
    """

    enabled: bool = False

    def __init__(self) -> None:
        self._span = Span(-1, "null", 0.0, 0.0)
        self._scope = _NullScope(self._span)
        self.spans: List[Span] = []
        self.processes: Dict[int, str] = {}

    def record(self, name, start, end, **kwargs) -> Span:
        return self._span

    def instant(self, name, ts, **kwargs) -> Span:
        return self._span

    def scope(self, name, start, end=None, **kwargs) -> _NullScope:
        return self._scope

    def for_process(self, name: str) -> "NullTracer":
        return self

    def children_of(self, span_id) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())


#: Shared do-nothing tracer; the default for every instrumented component.
NULL_TRACER = NullTracer()
