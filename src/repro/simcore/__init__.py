"""Deterministic discrete-event substrate for measuring parallel schedules.

Wall-clock threading cannot demonstrate speedup in this environment (single
CPU core, GIL), and the paper's own analysis reasons about transaction cost
through gas (§4.3) and opcode weight (§5.4).  This package therefore
separates *what executes* from *how long it takes*:

* transactions really execute on the mini-EVM (producing state changes,
  read/write sets and an opcode trace);
* their **cost** is derived from that trace by a :class:`CostModel`;
* costs are charged to simulated worker **lanes** (threads) managed by a
  :class:`LaneGroup`, and ordering between concurrent activities is resolved
  by an :class:`EventQueue` with stable tie-breaking.

Everything here is deterministic: identical inputs produce identical
schedules, makespans and speedups on any machine.
"""

from repro.simcore.events import Event, EventQueue
from repro.simcore.lanes import Lane, LaneGroup
from repro.simcore.costmodel import CostModel, TraceCosts
from repro.simcore.stats import RunStats, SpeedupSummary, summarize_speedups

__all__ = [
    "Event",
    "EventQueue",
    "Lane",
    "LaneGroup",
    "CostModel",
    "TraceCosts",
    "RunStats",
    "SpeedupSummary",
    "summarize_speedups",
]
