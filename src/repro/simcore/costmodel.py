"""Mapping executed opcode traces to simulated time.

The interpreter counts executed opcodes per *category* (storage reads,
storage writes, hashing, calls, plain stack/arithmetic work, ...).  The
:class:`CostModel` turns those counts into microseconds of simulated work.

The category weights encode the paper's observations: storage operations
(SLOAD/SSTORE) dominate execution time (§4.3, §5.4), so a gas-based
schedule — which the validator's scheduler uses as its *estimate* — is a
good but imperfect proxy for the *actual* time this model charges.  That
gap is real in the paper ("it sometimes cannot properly capture the running
time") and is preserved here by construction rather than by injected noise.

All durations are in microseconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

#: Categories the interpreter reports.  Anything not listed costs zero.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "base": 0.012,  # stack ops, control flow, cheap arithmetic
    "arith": 0.025,  # MUL/DIV/MOD/EXP family
    "env": 0.02,  # context queries (CALLER, NUMBER, ...)
    "memory": 0.015,  # MLOAD/MSTORE and copies, per op
    "sha3": 0.55,  # hashing, per op (plus per-word below)
    "sha3_word": 0.08,
    "balance": 0.35,  # account-level state reads
    "storage_read": 1.9,  # SLOAD
    "storage_write": 3.8,  # SSTORE
    "call": 1.6,  # message call setup/teardown
    "create": 9.0,
    "log": 0.25,
    "transfer": 2.2,  # native value movement bookkeeping
}


@dataclass(frozen=True)
class TraceCosts:
    """Executed-work summary for one transaction.

    ``counts`` maps category name to the number of charged units observed
    during execution; ``gas_used`` is the EVM gas the execution consumed
    (the scheduler's estimate signal).
    """

    counts: Mapping[str, int]
    gas_used: int = 0

    def merged(self, other: "TraceCosts") -> "TraceCosts":
        counts = dict(self.counts)
        for key, value in other.counts.items():
            counts[key] = counts.get(key, 0) + value
        return TraceCosts(counts, self.gas_used + other.gas_used)


@dataclass(frozen=True)
class CostModel:
    """Simulated-time cost parameters (all microseconds).

    The defaults were calibrated so the benchmark harness reproduces the
    paper's headline shapes (see EXPERIMENTS.md); every experiment can pass
    its own instance to sweep them.
    """

    #: Fixed per-transaction overhead (pool pop, signature, receipt build).
    tx_overhead: float = 7.0
    #: Serial commit section per packed transaction in the proposer
    #: (Algorithm 1's synchronised reserve-table/state update).
    commit_overhead: float = 1.0
    #: Additional per-commit cost of "Synchronize with all worker threads"
    #: (Algorithm 1 line 23): the barrier grows with the thread count.
    commit_sync_per_lane: float = 0.14
    #: Cleanup cost charged to a lane when its transaction aborts.
    abort_overhead: float = 0.6
    #: Block-STM cooperative re-validation: comparing one recorded read
    #: version against the multi-version memory.  Validation never
    #: re-executes, which is why this is ~25x cheaper than an SLOAD.
    validate_per_read: float = 0.08
    #: Base backoff before re-attempting a block after a transient
    #: :class:`~repro.faults.errors.WorkerFault` (doubles per retry, so a
    #: block that retries k times is delayed Σ backoff·2^i — deterministic,
    #: keeping Fig-9-style timing meaningful under injected faults).
    retry_backoff: float = 40.0
    #: Validator preparation phase: dependency-graph + schedule, per tx.
    schedule_per_tx: float = 0.12
    #: Applier work per transaction (rw-set check + world-state apply).
    applier_per_tx: float = 0.85
    #: One-off per-block validation epilogue (state-root comparison).
    block_epilogue: float = 25.0
    #: Block commitment phase: writing the validated block to the database.
    block_commit: float = 12.0
    #: Penalty when a worker lane switches to a different block's context.
    context_switch: float = 6.0
    #: Preparation-phase cost per distinct storage slot prefetched into
    #: memory (geth's prefetcher, used by the paper "to reduce the I/O
    #: impact in executing transactions", §5.4).
    prefetch_per_slot: float = 0.2
    #: Extra cost of a storage read that was NOT prefetched (cold path:
    #: trie traversal + disk).  Only charged when prefetching is disabled.
    cold_storage_read: float = 6.0
    #: Per-transaction cost of shipping execution results to the owning
    #: block's applier, per *other* concurrently executing block ("workers
    #: ... send out relevant information", §5.6).  This communication term
    #: grows with pipeline occupancy and produces Fig. 9's 4->8 dip.
    result_ship_per_tx: float = 3.2
    # --- distributed shard validation (repro.distributed) ------------- #
    #: Flat cost of shipping one shard assignment to a follower node
    #: (connection + serialization setup; DiPETrans' master->follower leg).
    shard_ship_us: float = 180.0
    #: Per-transaction marginal shipping cost of a shard assignment (the
    #: state slice and transaction payload grow with the shard).
    shard_ship_per_tx: float = 1.1
    #: Flat cost of a follower's reply message (follower->master leg).
    shard_reply_us: float = 90.0
    #: Per-transaction marginal cost of the reply (results + overlays).
    shard_reply_per_tx: float = 0.6
    #: Master-side merge cost per transaction: applying follower overlays
    #: and rebuilding block-order results.
    dist_merge_per_tx: float = 0.4
    #: Per-category execution weights.
    weights: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with selected fields replaced."""
        if "weights" in kwargs:
            merged = dict(self.weights)
            merged.update(kwargs["weights"])
            kwargs["weights"] = merged
        return replace(self, **kwargs)

    def execution_cost(self, trace: TraceCosts) -> float:
        """Pure execution time of one transaction (no fixed overhead)."""
        total = 0.0
        weights = self.weights
        for category, count in trace.counts.items():
            if count:
                total += weights.get(category, 0.0) * count
        return total

    def tx_cost(self, trace: TraceCosts) -> float:
        """Full per-transaction lane time: overhead + execution."""
        return self.tx_overhead + self.execution_cost(trace)
