"""A stable-ordered discrete-event queue.

Events are ordered by simulated time; ties break by insertion sequence so
that simulations are fully deterministic regardless of payload type (which
need not be comparable).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence at simulated ``time`` carrying ``payload``."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> Event:
        """Schedule ``payload`` at ``time``; returns the created event."""
        if time != time or time < 0:  # NaN or negative
            raise ValueError(f"invalid event time: {time!r}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq, payload))
        return Event(time, seq, payload)

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO among equal times)."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, seq, payload = heapq.heappop(self._heap)
        return Event(time, seq, payload)

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Yield events in order until the queue is empty.

        New events pushed while draining are merged into the order, which is
        the usual event-loop idiom::

            for ev in queue.drain():
                handle(ev)   # may push more events
        """
        while self._heap:
            yield self.pop()
