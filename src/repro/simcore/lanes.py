"""Simulated worker lanes (threads) and lane groups.

A :class:`Lane` models one worker thread: it is busy until ``available_at``
and accumulates utilisation statistics.  A :class:`LaneGroup` models a
thread pool; schedulers ask it for the earliest-available lane (stable
lowest-index tie-break) and charge task durations to it.

Lanes also track which *context* (e.g. which block) they last served so
that callers can charge a context-switch penalty — the mechanism behind the
multi-block pipeline's 4→8-block dip (paper §5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional


@dataclass
class Lane:
    """One simulated worker thread."""

    index: int
    available_at: float = 0.0
    busy_time: float = 0.0
    tasks_run: int = 0
    context_switches: int = 0
    context: Optional[Hashable] = None
    #: Optional trace of (start, end, tag) tuples, kept only when the owning
    #: group was built with ``record_trace=True``.
    trace: list[tuple[float, float, Any]] = field(default_factory=list)
    #: Ids of the tracer spans emitted for this lane's tasks, in run order
    #: (populated only when the owning group carries a tracer).
    span_ids: list[int] = field(default_factory=list)

    def run(
        self,
        duration: float,
        *,
        not_before: float = 0.0,
        context: Optional[Hashable] = None,
        switch_penalty: float = 0.0,
        tag: Any = None,
        record: bool = False,
    ) -> tuple[float, float]:
        """Charge a task of ``duration`` to this lane.

        The task starts at ``max(available_at, not_before)``.  If ``context``
        differs from the lane's previous context, ``switch_penalty`` is added
        in front of the task (and counted).  Returns ``(start, end)`` where
        ``start`` is the instant productive work begins (after any penalty).
        """
        if duration < 0:
            raise ValueError(f"negative task duration: {duration}")
        start = max(self.available_at, not_before)
        if context is not None and self.context is not None and context != self.context:
            self.context_switches += 1
            start += switch_penalty
        if context is not None:
            self.context = context
        end = start + duration
        self.available_at = end
        self.busy_time += duration
        self.tasks_run += 1
        if record:
            self.trace.append((start, end, tag))
        return start, end


class LaneGroup:
    """A pool of simulated lanes with earliest-available selection."""

    def __init__(
        self,
        count: int,
        *,
        record_trace: bool = False,
        tracer=None,
        span_namer=None,
    ) -> None:
        if count < 1:
            raise ValueError("LaneGroup needs at least one lane")
        self.lanes = [Lane(i) for i in range(count)]
        self.record_trace = record_trace
        #: Optional :class:`repro.obs.tracer.Tracer`: every task run through
        #: the group is emitted as a span (lane id = Chrome-trace thread)
        #: and its span id is recorded on the lane.
        self.tracer = tracer
        #: Maps a task tag to the emitted span's name (default "task").
        self.span_namer = span_namer

    def __len__(self) -> int:
        return len(self.lanes)

    def earliest(self, *, not_before: float = 0.0) -> Lane:
        """Lane that can start soonest at or after ``not_before``.

        Ties break toward the lowest index for determinism.
        """
        return min(self.lanes, key=lambda l: (max(l.available_at, not_before), l.index))

    def earliest_with_context(
        self, context: Hashable, *, not_before: float = 0.0
    ) -> Lane:
        """Prefer a lane already on ``context`` when it is no later than the
        globally earliest lane; otherwise fall back to :meth:`earliest`.

        This models a scheduler with context affinity: it avoids gratuitous
        context switches but never delays work to preserve affinity.
        """
        best = self.earliest(not_before=not_before)
        best_start = max(best.available_at, not_before)
        affine = [l for l in self.lanes if l.context == context]
        if affine:
            cand = min(affine, key=lambda l: (max(l.available_at, not_before), l.index))
            if max(cand.available_at, not_before) <= best_start:
                return cand
        return best

    def run_on_earliest(
        self,
        duration: float,
        *,
        not_before: float = 0.0,
        context: Optional[Hashable] = None,
        switch_penalty: float = 0.0,
        tag: Any = None,
    ) -> tuple[Lane, float, float]:
        """Schedule a task on the best lane; returns ``(lane, start, end)``."""
        if context is not None and switch_penalty > 0:
            lane = self.earliest_with_context(context, not_before=not_before)
        else:
            lane = self.earliest(not_before=not_before)
        start, end = lane.run(
            duration,
            not_before=not_before,
            context=context,
            switch_penalty=switch_penalty,
            tag=tag,
            record=self.record_trace,
        )
        if self.tracer is not None and self.tracer.enabled:
            name = self.span_namer(tag) if self.span_namer is not None else "task"
            span = self.tracer.record(name, start, end, lane=lane.index, tag=tag)
            lane.span_ids.append(span.id)
        return lane, start, end

    @property
    def makespan(self) -> float:
        """Completion time of the last task across all lanes."""
        return max(l.available_at for l in self.lanes)

    @property
    def total_busy(self) -> float:
        return sum(l.busy_time for l in self.lanes)

    @property
    def total_context_switches(self) -> int:
        return sum(l.context_switches for l in self.lanes)

    def utilization(self) -> float:
        """Fraction of lane-time spent on productive work, in [0, 1]."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.total_busy / (span * len(self.lanes))

    def reset(self) -> None:
        """Return every lane to the idle state at time zero."""
        for lane in self.lanes:
            lane.available_at = 0.0
            lane.busy_time = 0.0
            lane.tasks_run = 0
            lane.context_switches = 0
            lane.context = None
            lane.trace.clear()
            lane.span_ids.clear()
