"""Run statistics and speedup aggregation used by benchmarks and tests."""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class RunStats:
    """Outcome of one simulated execution run."""

    makespan: float
    total_work: float
    lanes: int
    tasks: int = 0
    aborts: int = 0
    context_switches: int = 0
    #: transient worker-lane crashes observed during validation
    worker_faults: int = 0
    #: parallel re-execution attempts beyond the first
    exec_retries: int = 0
    #: blocks that degraded to serial re-execution after retry exhaustion
    serial_fallbacks: int = 0
    #: rejection counts keyed by ``FailureReason.value`` (insertion order
    #: follows block order, so same-seed runs produce identical dicts)
    failures: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def count_failure(self, reason) -> None:
        """Tally one typed rejection (``reason`` is a FailureReason)."""
        key = getattr(reason, "value", str(reason))
        self.failures[key] = self.failures.get(key, 0) + 1

    @property
    def utilization(self) -> float:
        if self.makespan <= 0 or self.lanes <= 0:
            return 0.0
        return self.total_work / (self.makespan * self.lanes)

    def speedup_over(self, serial: "RunStats | float") -> float:
        """Speedup of this run relative to a serial run (or serial time)."""
        serial_time = serial.makespan if isinstance(serial, RunStats) else float(serial)
        if self.makespan <= 0:
            raise ValueError("cannot compute speedup with zero makespan")
        return serial_time / self.makespan


@dataclass(frozen=True)
class SpeedupSummary:
    """Aggregate of per-block speedups for a configuration."""

    count: int
    mean: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float
    accelerated_fraction: float  # share of blocks with speedup > 1

    def row(self) -> tuple:
        return (
            self.count,
            round(self.mean, 3),
            round(self.median, 3),
            round(self.p10, 3),
            round(self.p90, 3),
            round(self.minimum, 3),
            round(self.maximum, 3),
            round(self.accelerated_fraction, 4),
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile on pre-sorted data, q in [0, 1]."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize_speedups(values: Iterable[float]) -> SpeedupSummary:
    """Summarise a collection of per-block speedups."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("no speedup samples")
    n = len(data)
    return SpeedupSummary(
        count=n,
        mean=sum(data) / n,
        median=_percentile(data, 0.5),
        p10=_percentile(data, 0.1),
        p90=_percentile(data, 0.9),
        minimum=data[0],
        maximum=data[-1],
        accelerated_fraction=sum(1 for v in data if v > 1.0) / n,
    )


def histogram(values: Iterable[float], edges: Sequence[float]) -> list[int]:
    """Count values into the half-open buckets ``[edges[i], edges[i+1])``.

    Values below the first edge or at/above the last edge are clamped into
    the first/last bucket so every sample is represented (benchmark
    histograms must account for all blocks).
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if any(a >= b for a, b in zip(edges, edges[1:])):
        raise ValueError(f"edges must be strictly increasing: {edges!r}")
    counts = [0] * (len(edges) - 1)
    last = len(counts) - 1
    for v in values:
        # bisect_right - 1 gives the bucket whose [lo, hi) contains v;
        # min/max clamp out-of-range samples into the end buckets
        counts[min(max(bisect_right(edges, v) - 1, 0), last)] += 1
    return counts
