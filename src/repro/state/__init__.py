"""World-state substrate: accounts, tries, the journaling StateDB and the
multi-version store that backs OCC snapshots.

Layering (bottom up):

* :mod:`repro.state.trie` -- an immutable hexary Merkle-Patricia trie with
  structural sharing; commitment roots follow the yellow-paper node
  encoding (RLP + hash refs for nodes of 32 bytes or more).
* :mod:`repro.state.account` -- account records and their trie encoding.
* :mod:`repro.state.statedb` -- the mutable execution-facing state with an
  undo journal (transaction revert), commitment to immutable
  :class:`~repro.state.statedb.StateSnapshot` objects, and root hashing.
* :mod:`repro.state.versioned` -- the multi-version key/value store and
  per-transaction snapshot views used by the proposer's OCC-WSI algorithm.
* :mod:`repro.state.access` -- the recording wrapper that captures
  read/write sets for any underlying state.
"""

from repro.state.trie import MPT, EMPTY_ROOT
from repro.state.account import AccountData, EMPTY_ACCOUNT
from repro.state.statedb import StateDB, StateSnapshot, genesis_snapshot
from repro.state.versioned import MultiVersionStore, OCCStateView, OCCConflict
from repro.state.proofs import prove, verify_proof, prove_secure, verify_secure, ProofError
from repro.state.serialize import snapshot_to_json, snapshot_from_json, SnapshotFormatError
from repro.state.access import (
    StateKey,
    RecordingState,
    ReadWriteSet,
    balance_key,
    nonce_key,
    code_key,
    storage_key,
)

__all__ = [
    "MPT",
    "EMPTY_ROOT",
    "AccountData",
    "EMPTY_ACCOUNT",
    "StateDB",
    "StateSnapshot",
    "genesis_snapshot",
    "MultiVersionStore",
    "OCCStateView",
    "OCCConflict",
    "StateKey",
    "RecordingState",
    "ReadWriteSet",
    "balance_key",
    "nonce_key",
    "code_key",
    "storage_key",
    "prove",
    "verify_proof",
    "prove_secure",
    "verify_secure",
    "ProofError",
    "snapshot_to_json",
    "snapshot_from_json",
    "SnapshotFormatError",
]
