"""State keys, read/write sets and the recording state wrapper.

BlockPilot's two core mechanisms both consume read/write sets:

* the proposer's OCC-WSI validation compares each transaction's *read set*
  against the reserve table (Algorithm 1, ``DetectConflit``);
* the proposer publishes per-transaction rs/ws in the **block profile**, and
  the validator's applier re-checks re-executed sets against that profile
  (Algorithm 2).

A :class:`StateKey` names one unit of state at the finest granularity the
EVM can touch: an account's balance, nonce or code, or a single storage
slot.  Account-level conflict grouping (used by the validator's scheduler,
§4.3) is just ``key.address``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, NamedTuple, Optional

from repro.common.types import Address

__all__ = [
    "StateKey",
    "ReadWriteSet",
    "RecordingState",
    "balance_key",
    "nonce_key",
    "code_key",
    "storage_key",
]


class StateKey(NamedTuple):
    """One addressable unit of world state."""

    kind: str  # 'balance' | 'nonce' | 'code' | 'storage'
    address: Address
    slot: Optional[int]  # set only for kind == 'storage'


def balance_key(address: Address) -> StateKey:
    return StateKey("balance", address, None)


def nonce_key(address: Address) -> StateKey:
    return StateKey("nonce", address, None)


def code_key(address: Address) -> StateKey:
    return StateKey("code", address, None)


def storage_key(address: Address, slot: int) -> StateKey:
    return StateKey("storage", address, slot)


@dataclass
class ReadWriteSet:
    """Reads and writes one transaction performed against pre-state.

    ``reads`` maps key -> the *version* observed (the snapshot version in
    the proposer; 0 for validator re-execution, where versions are implicit
    in block order).  ``writes`` maps key -> the value written; code writes
    store the integer hash of the code so values stay comparably small.

    A key the transaction wrote before reading does not appear in
    ``reads`` — reading your own write is not an external dependency, and
    including it would create false conflicts in WSI validation.
    """

    reads: Dict[StateKey, int] = field(default_factory=dict)
    writes: Dict[StateKey, int] = field(default_factory=dict)

    def record_read(self, key: StateKey, version: int = 0) -> None:
        if key not in self.writes and key not in self.reads:
            self.reads[key] = version

    def record_write(self, key: StateKey, value: int) -> None:
        self.writes[key] = value

    def touched_addresses(self) -> FrozenSet[Address]:
        """Account-level footprint (scheduler granularity, §4.3)."""
        addrs = {k.address for k in self.reads}
        addrs.update(k.address for k in self.writes)
        return frozenset(addrs)

    def conflicts_with(self, other: "ReadWriteSet") -> bool:
        """Key-level RW/WR/WW overlap test between two transactions."""
        mine_w = self.writes.keys()
        theirs_w = other.writes.keys()
        if not mine_w and not theirs_w:
            return False
        if any(k in other.reads for k in mine_w):
            return True
        if any(k in self.reads for k in theirs_w):
            return True
        return any(k in theirs_w for k in mine_w)

    def merge(self, other: "ReadWriteSet") -> None:
        """Fold another rw-set into this one (multi-frame execution)."""
        for key, version in other.reads.items():
            self.record_read(key, version)
        for key, value in other.writes.items():
            self.record_write(key, value)

    def freeze(self) -> "FrozenRWSet":
        return FrozenRWSet(
            reads=tuple(sorted(self.reads.items())),
            writes=tuple(sorted(self.writes.items())),
        )


class FrozenRWSet(NamedTuple):
    """Hashable, immutable rw-set as stored in block profiles."""

    reads: tuple
    writes: tuple

    def read_keys(self) -> FrozenSet[StateKey]:
        return frozenset(k for k, _ in self.reads)

    def write_keys(self) -> FrozenSet[StateKey]:
        return frozenset(k for k, _ in self.writes)

    def write_items(self) -> tuple:
        return self.writes

    def touched_addresses(self) -> FrozenSet[Address]:
        addrs = {k.address for k, _ in self.reads}
        addrs.update(k.address for k, _ in self.writes)
        return frozenset(addrs)


class RecordingState:
    """Wrap any state object and capture its read/write set.

    The wrapped object must expose the StateDB read/write interface.  All
    mutations pass through; reads of keys this transaction already wrote
    are served by the underlying state but not recorded as external reads.
    """

    def __init__(self, inner, version: int = 0) -> None:
        self._inner = inner
        self._version = version
        self.rw = ReadWriteSet()

    # reads ------------------------------------------------------------- #

    def account_exists(self, address: Address) -> bool:
        self.rw.record_read(nonce_key(address), self._version)
        return self._inner.account_exists(address)

    def get_balance(self, address: Address) -> int:
        self.rw.record_read(balance_key(address), self._version)
        return self._inner.get_balance(address)

    def get_nonce(self, address: Address) -> int:
        self.rw.record_read(nonce_key(address), self._version)
        return self._inner.get_nonce(address)

    def get_code(self, address: Address) -> bytes:
        self.rw.record_read(code_key(address), self._version)
        return self._inner.get_code(address)

    def get_storage(self, address: Address, slot: int) -> int:
        self.rw.record_read(storage_key(address, slot), self._version)
        return self._inner.get_storage(address, slot)

    # writes ------------------------------------------------------------ #

    def set_balance(self, address: Address, value: int) -> None:
        self.rw.record_write(balance_key(address), value)
        self._inner.set_balance(address, value)

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def sub_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) - amount)

    def set_nonce(self, address: Address, value: int) -> None:
        self.rw.record_write(nonce_key(address), value)
        self._inner.set_nonce(address, value)

    def increment_nonce(self, address: Address) -> None:
        self.set_nonce(address, self.get_nonce(address) + 1)

    def set_code(self, address: Address, code: bytes) -> None:
        self.rw.record_write(
            code_key(address), int.from_bytes(code[:8].ljust(8, b"\0"), "big")
        )
        self._inner.set_code(address, code)

    def set_storage(self, address: Address, slot: int, value: int) -> None:
        self.rw.record_write(storage_key(address, slot), value)
        self._inner.set_storage(address, slot, value)

    def create_account(self, address: Address) -> None:
        self._inner.create_account(address)

    # journal passthrough ------------------------------------------------ #

    def snapshot(self) -> int:
        return self._inner.snapshot()

    def revert_to(self, mark: int) -> None:
        # NOTE: rw-set entries from the reverted frame are deliberately
        # retained.  A read that influenced control flow matters for
        # conflict detection even if its frame later reverted; keeping
        # writes is conservative (may cause a false conflict, never a
        # missed one), matching how geth-based prototypes journal.
        self._inner.revert_to(mark)
