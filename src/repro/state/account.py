"""Account records and their trie encoding.

An Ethereum account is the 4-tuple ``(nonce, balance, storage_root,
code_hash)`` RLP-encoded into the world-state trie under ``keccak(address)``
(paper §2.1).  :class:`AccountData` is the immutable in-memory form; the
storage mapping is shared structurally between snapshots and must never be
mutated in place — the :class:`~repro.state.statedb.StateDB` copy-on-writes
it at commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

from repro.common.hashing import EMPTY_HASH, keccak
from repro.common.rlp import rlp_encode
from repro.common.types import Hash32

__all__ = ["AccountData", "EMPTY_ACCOUNT", "encode_account"]

_EMPTY_STORAGE: Mapping[int, int] = MappingProxyType({})


@dataclass(frozen=True)
class AccountData:
    """Immutable account state.

    ``storage`` maps 256-bit slot numbers to 256-bit values; zero values
    are never stored (Ethereum deletes zeroed slots).
    """

    nonce: int = 0
    balance: int = 0
    code: bytes = b""
    storage: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nonce < 0:
            raise ValueError("negative nonce")
        if self.balance < 0:
            raise ValueError("negative balance")

    @property
    def code_hash(self) -> Hash32:
        return keccak(self.code) if self.code else EMPTY_HASH

    @property
    def is_contract(self) -> bool:
        return bool(self.code)

    def is_empty(self) -> bool:
        """EIP-158 emptiness: no nonce, no balance, no code, no storage."""
        return (
            self.nonce == 0
            and self.balance == 0
            and not self.code
            and not self.storage
        )

    def with_(self, **kwargs) -> "AccountData":
        return replace(self, **kwargs)


EMPTY_ACCOUNT = AccountData()


def encode_account(account: AccountData, storage_root: Hash32) -> bytes:
    """Yellow-paper account body: rlp([nonce, balance, storage_root, code_hash])."""
    return rlp_encode(
        [account.nonce, account.balance, bytes(storage_root), bytes(account.code_hash)]
    )
