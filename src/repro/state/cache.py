"""Bounded caches for the state layer's hot paths.

Three cache primitives back the hot-path layer (ISSUE 4 / ARCHITECTURE §11):

* :class:`BoundedCache` — a dict-ordered LRU map with hit/miss/eviction
  counters, the building block for the others;
* :func:`keccak_cached` — a process-wide memo of ``keccak(key)`` for the
  secure trie.  Account addresses and storage-slot keys are re-hashed on
  every trie get/set; the key space a workload touches is small and stable,
  so the memo turns the dominant commit cost into a dict lookup;
* :class:`ReadThroughCache` — a loader-backed LRU used by
  :class:`repro.state.versioned.MultiVersionStore` for base-snapshot reads
  shared across every optimistic transaction in a block.

This module deliberately imports nothing from ``statedb``/``versioned``/
``trie`` (they import *it*), keeping the state package's import DAG acyclic.
All caches here are read-through over immutable data — snapshots and hash
preimages never change — so no invalidation hooks are needed; boundedness
alone controls memory.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Generic, Tuple, TypeVar

from repro.common.types import Hash32

__all__ = [
    "BoundedCache",
    "CacheStats",
    "ReadThroughCache",
    "keccak_cached",
    "keccak_cache_stats",
]

K = TypeVar("K")
V = TypeVar("V")


class CacheStats:
    """Mutable hit/miss/eviction counters for one cache instance."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class BoundedCache(Generic[K, V]):
    """LRU map bounded at ``maxsize`` entries.

    Exploits dict insertion order: a hit re-inserts the key at the end,
    eviction removes the oldest (first) key.  All operations are O(1).
    """

    __slots__ = ("maxsize", "stats", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: Dict[K, V] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            self.stats.misses += 1
            return default
        data[key] = value  # re-insert: most recently used
        self.stats.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.maxsize:
            del data[next(iter(data))]
            self.stats.evictions += 1
        data[key] = value

    def clear(self) -> None:
        self._data.clear()


# --------------------------------------------------------------------------- #
# keccak memo
# --------------------------------------------------------------------------- #

#: Preimages are 20-byte addresses and 32-byte slot keys; at ~64 bytes per
#: entry this caps the memo around 4 MB.
_KECCAK_MEMO_MAX = 65536

_keccak_memo: Dict[bytes, Hash32] = {}
_keccak_stats = CacheStats()


def keccak_cached(data: bytes) -> Hash32:
    """Memoized :func:`repro.common.hashing.keccak` for secure-trie keys.

    Semantically identical to ``keccak`` (pure function of immutable
    input); the memo is process-wide because hash preimages cannot go
    stale.  Bounded by wholesale reset — trie key sets repeat heavily
    within a workload, so epoch-style clearing beats per-entry LRU
    bookkeeping on this, the hottest path in ``StateDB.commit()``.
    """
    memo = _keccak_memo
    digest = memo.get(data)
    if digest is not None:
        _keccak_stats.hits += 1
        return digest
    _keccak_stats.misses += 1
    if len(memo) >= _KECCAK_MEMO_MAX:
        memo.clear()
        _keccak_stats.evictions += 1
    digest = Hash32(hashlib.sha3_256(data).digest())
    memo[data] = digest
    return digest


def keccak_cache_stats() -> Dict[str, int]:
    """Global keccak-memo counters (published as gauges by the proposer)."""
    stats = _keccak_stats.as_dict()
    stats["size"] = len(_keccak_memo)
    return stats


# --------------------------------------------------------------------------- #
# read-through cache
# --------------------------------------------------------------------------- #

#: Sentinel distinguishing "not cached" from a cached ``None`` value.
_MISSING: Tuple[str] = ("missing",)


class ReadThroughCache(Generic[K, V]):
    """Bounded LRU in front of a loader function.

    ``None`` (and any other falsy value) the loader returns is cached like
    every other value — absence is tracked with a private sentinel, not by
    value comparison.  Intended for immutable backing data (committed
    snapshots); there is no invalidation API by design.
    """

    __slots__ = ("_loader", "_cache")

    def __init__(self, loader: Callable[[K], V], maxsize: int = 8192) -> None:
        self._loader = loader
        self._cache: BoundedCache[K, object] = BoundedCache(maxsize)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def get(self, key: K) -> V:
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        value = self._loader(key)
        self._cache.put(key, value)
        return value

    def clear(self) -> None:
        self._cache.clear()
