"""Merkle proofs over the MPT: generation and stateless verification.

A proof for key *k* is the list of node encodings on the path from the
root to the terminal node.  A verifier holding only the 32-byte state root
re-hashes the path: each node must either hash to the parent's reference
or be embedded inline (nodes shorter than 32 bytes), exactly as Ethereum's
`eth_getProof` encodes account and storage proofs.

This is what lets light clients — or BlockPilot validators that skip full
re-execution for *cross-checking* purposes — verify a single account or
storage slot against a block header without holding the state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.hashing import keccak
from repro.common.rlp import RLPDecodeError, rlp_decode
from repro.common.types import Hash32
from repro.state.trie import (
    EMPTY_ROOT,
    MPT,
    SecureMPT,
    _node_rlp,
    bytes_to_nibbles,
)

__all__ = ["prove", "verify_proof", "ProofError", "prove_account", "prove_storage", "verify_storage_proof"]


class ProofError(ValueError):
    """The proof does not authenticate against the given root."""


def _hp_decode(encoded: bytes) -> Tuple[Tuple[int, ...], bool]:
    """Inverse hex-prefix: returns (nibbles, is_leaf)."""
    if not encoded:
        raise ProofError("empty hex-prefix path")
    nibbles = []
    for b in encoded:
        nibbles.append(b >> 4)
        nibbles.append(b & 0x0F)
    flag = nibbles[0]
    is_leaf = flag >= 2
    odd = flag % 2 == 1
    path = nibbles[1:] if odd else nibbles[2:]
    return tuple(path), is_leaf


def prove(trie: MPT, key: bytes) -> List[bytes]:
    """Produce the node-encoding path for ``key`` (inclusion or exclusion).

    The returned list always starts with the root node's RLP; it is empty
    only for the empty trie.  Nodes whose RLP is shorter than 32 bytes are
    embedded inline in their parent's encoding (yellow-paper node refs),
    so they never appear as separate proof elements.
    """
    from repro.state.trie import _Extension, _Leaf

    proof: List[bytes] = []
    node = trie._root
    if node is None:
        return proof
    path = bytes_to_nibbles(key)
    append_next = True  # the root is always an explicit proof element
    while node is not None:
        if append_next:
            proof.append(_node_rlp(node))
        if isinstance(node, _Leaf):
            break
        if isinstance(node, _Extension):
            k = len(node.path)
            if path[:k] != node.path:
                break  # exclusion: the path diverges here
            path = path[k:]
            child = node.child
        else:  # branch
            if not path:
                break
            child = node.children[path[0]]
            if child is None:
                break  # exclusion: no child on the path
            path = path[1:]
        # children with short RLP are embedded in the parent encoding
        append_next = len(_node_rlp(child)) >= 32
        node = child
    return proof


def verify_proof(
    root: Hash32, key: bytes, proof: List[bytes]
) -> Optional[bytes]:
    """Verify ``proof`` for ``key`` against ``root``.

    Returns the proven value (``None`` for a valid exclusion proof).
    Raises :class:`ProofError` when the proof does not authenticate.
    """
    if not proof:
        if root == EMPTY_ROOT:
            return None
        raise ProofError("empty proof for non-empty root")

    expected: object = bytes(root)  # expectation: 32-byte hash or inline struct
    path = list(bytes_to_nibbles(key))
    index = 0

    node_struct = _take_node(proof, index, expected)
    index += 1

    while True:
        if not isinstance(node_struct, list) or len(node_struct) not in (2, 17):
            raise ProofError("malformed proof node")
        if len(node_struct) == 2:
            nibbles, is_leaf = _hp_decode(node_struct[0])
            if is_leaf:
                if tuple(path) == nibbles:
                    return node_struct[1]
                return None  # valid exclusion
            # extension
            if tuple(path[: len(nibbles)]) != nibbles:
                return None  # exclusion: path diverges
            del path[: len(nibbles)]
            expected = node_struct[1]
        else:  # branch
            if not path:
                value = node_struct[16]
                return value if value != b"" else None
            child = node_struct[path.pop(0)]
            if child == b"":
                return None  # exclusion: no child on the path
            expected = child

        if isinstance(expected, list):
            # inline node embedded in the parent
            node_struct = expected
            continue
        # hashed reference: the next proof element must hash to it
        if index >= len(proof):
            raise ProofError("proof truncated")
        node_struct = _take_node(proof, index, expected)
        index += 1


def _take_node(proof: List[bytes], index: int, expected) -> list:
    encoding = proof[index]
    if isinstance(expected, (bytes, bytearray)):
        if len(expected) != 32:
            raise ProofError("malformed node reference")
        if keccak(encoding) != bytes(expected):
            raise ProofError(f"proof node {index} hash mismatch")
    try:
        decoded = rlp_decode(encoding)
    except RLPDecodeError as exc:
        raise ProofError(f"proof node {index} is not valid RLP: {exc}") from exc
    if not isinstance(decoded, list):
        raise ProofError("proof node is not a list")
    return decoded


def prove_account(snapshot, address) -> List[bytes]:
    """Account proof against a snapshot's world-state root (eth_getProof)."""
    return prove(snapshot._account_trie._trie, keccak(bytes(address)))


def prove_storage(snapshot, address, slot: int) -> Tuple[List[bytes], List[bytes]]:
    """Combined (account_proof, storage_proof) for one slot.

    The account proof authenticates the account body (which embeds the
    storage root) against the state root; the storage proof authenticates
    the slot against that storage root."""
    account_proof = prove_account(snapshot, address)
    trie = snapshot._storage_tries.get(address)
    if trie is None:
        storage_proof: List[bytes] = []
    else:
        storage_proof = prove(trie._trie, keccak(slot.to_bytes(32, "big")))
    return account_proof, storage_proof


def verify_storage_proof(
    state_root: Hash32,
    address,
    slot: int,
    account_proof: List[bytes],
    storage_proof: List[bytes],
) -> int:
    """Stateless verification of one storage slot against a state root.

    Returns the proven slot value (0 for proven absence — of the slot or
    of the whole account).  Raises :class:`ProofError` if either proof
    fails to authenticate.
    """
    from repro.common.rlp import rlp_decode

    body = verify_proof(state_root, keccak(bytes(address)), account_proof)
    if body is None:
        if storage_proof:
            raise ProofError("storage proof supplied for a non-existent account")
        return 0
    decoded = rlp_decode(body)
    if not isinstance(decoded, list) or len(decoded) != 4:
        raise ProofError("malformed account body")
    storage_root = Hash32(decoded[2])
    value_bytes = verify_proof(
        storage_root, keccak(slot.to_bytes(32, "big")), storage_proof
    )
    if value_bytes is None:
        return 0
    decoded_value = rlp_decode(value_bytes)
    return int.from_bytes(decoded_value, "big")


def prove_secure(trie: SecureMPT, key: bytes) -> List[bytes]:
    """Proof for a :class:`SecureMPT` entry (key hashed before lookup)."""
    return prove(trie._trie, keccak(key))


def verify_secure(root: Hash32, key: bytes, proof: List[bytes]) -> Optional[bytes]:
    """Verify a secure-trie proof (hashes the key before walking)."""
    return verify_proof(root, keccak(key), proof)
