"""State snapshot import/export (JSON genesis files).

Geth ships genesis allocations as JSON; this module does the same for
:class:`~repro.state.statedb.StateSnapshot`, so worlds can be archived,
diffed, or hand-authored.  Round-tripping preserves the state root
exactly (the tests assert it), which makes exported snapshots usable as
fixtures for cross-version regression checks.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from repro.common.types import Address
from repro.state.account import AccountData
from repro.state.statedb import StateSnapshot, genesis_snapshot

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "SnapshotFormatError",
    "text_digest",
]


def text_digest(text: str) -> str:
    """SHA-256 of a serialised document's bytes (UTF-8).

    The integrity digest recorded for snapshot files by
    :mod:`repro.store`: an exported world is re-importable iff its bytes
    still hash to what the manifest remembered.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

FORMAT_VERSION = 1


class SnapshotFormatError(ValueError):
    """Malformed snapshot document."""


def snapshot_to_json(snapshot: StateSnapshot, *, note: str = "") -> str:
    """Serialise every account (balance, nonce, code, storage) to JSON."""
    accounts = {}
    for address, data in sorted(snapshot.accounts.items()):
        entry: Dict[str, object] = {}
        if data.balance:
            entry["balance"] = str(data.balance)
        if data.nonce:
            entry["nonce"] = data.nonce
        if data.code:
            entry["code"] = data.code.hex()
        if data.storage:
            entry["storage"] = {
                hex(slot): str(value) for slot, value in sorted(data.storage.items())
            }
        accounts[address.hex()] = entry
    doc = {
        "format": "repro-state-snapshot",
        "version": FORMAT_VERSION,
        "note": note,
        "stateRoot": snapshot.state_root().hex(),
        "accounts": accounts,
    }
    return json.dumps(doc, indent=1)


def snapshot_from_json(text: str, *, verify_root: bool = True) -> StateSnapshot:
    """Rebuild a snapshot; verifies the recorded state root by default."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-state-snapshot":
        raise SnapshotFormatError("not a state snapshot document")
    if doc.get("version") != FORMAT_VERSION:
        raise SnapshotFormatError(f"unsupported version {doc.get('version')!r}")

    alloc = {}
    try:
        for address_hex, entry in doc["accounts"].items():
            storage = {
                int(slot, 16): int(value)
                for slot, value in entry.get("storage", {}).items()
            }
            alloc[Address.from_hex(address_hex)] = AccountData(
                nonce=int(entry.get("nonce", 0)),
                balance=int(entry.get("balance", "0")),
                code=bytes.fromhex(entry.get("code", "")),
                storage=storage,
            )
    except (KeyError, ValueError, TypeError) as exc:
        raise SnapshotFormatError(f"bad account record: {exc}") from exc

    snapshot = genesis_snapshot(alloc)
    recorded = doc.get("stateRoot")
    if verify_root and recorded is not None:
        if snapshot.state_root().hex() != recorded:
            raise SnapshotFormatError(
                "state root mismatch: document claims "
                f"{recorded[:16]}…, rebuilt {snapshot.state_root().hex()[:16]}…"
            )
    return snapshot
