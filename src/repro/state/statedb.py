"""The execution-facing world state.

:class:`StateSnapshot` is an immutable committed state: an account map plus
the incrementally-maintained commitment tries (account trie and per-contract
storage tries).  Snapshots share structure, so keeping the state of every
block — including fork siblings at the same height, which the validator
pipeline processes concurrently (paper §4.3) — costs only the deltas.

:class:`StateDB` is the mutable overlay the EVM executes against.  It keeps
an undo **journal** so a reverting call frame (or an aborted optimistic
transaction) can roll back precisely, mirroring geth's ``StateDB`` journal.
``commit()`` folds the overlay into a new snapshot and updates the tries
only for dirty entries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.common.rlp import rlp_encode
from repro.common.types import Address, Hash32
from repro.state.account import AccountData, encode_account
from repro.state.trie import EMPTY_ROOT, SecureMPT

__all__ = ["StateSnapshot", "StateDB", "genesis_snapshot"]


def _storage_value_bytes(value: int) -> bytes:
    """Trie encoding of a storage word: RLP of the minimal big-endian int."""
    return rlp_encode(value)


def _slot_key(slot: int) -> bytes:
    return slot.to_bytes(32, "big")


class StateSnapshot:
    """An immutable, committed world state with cached commitment tries."""

    __slots__ = ("accounts", "_account_trie", "_storage_tries", "_root")

    def __init__(
        self,
        accounts: Mapping[Address, AccountData],
        account_trie: SecureMPT,
        storage_tries: Mapping[Address, SecureMPT],
    ) -> None:
        self.accounts = accounts
        self._account_trie = account_trie
        self._storage_tries = storage_tries
        self._root: Optional[Hash32] = None

    def account(self, address: Address) -> Optional[AccountData]:
        return self.accounts.get(address)

    def state_root(self) -> Hash32:
        """World-state MPT root (cached; the snapshot is immutable)."""
        if self._root is None:
            self._root = self._account_trie.root_hash()
        return self._root

    def storage_root(self, address: Address) -> Hash32:
        trie = self._storage_tries.get(address)
        return trie.root_hash() if trie is not None else EMPTY_ROOT

    def __contains__(self, address: Address) -> bool:
        return address in self.accounts

    def __len__(self) -> int:
        return len(self.accounts)


def genesis_snapshot(
    alloc: Optional[Mapping[Address, AccountData]] = None,
) -> StateSnapshot:
    """Build the initial snapshot from an allocation of pre-funded accounts."""
    accounts: Dict[Address, AccountData] = {}
    account_trie = SecureMPT()
    storage_tries: Dict[Address, SecureMPT] = {}
    if alloc:
        for address, data in alloc.items():
            if data.is_empty():
                continue
            accounts[address] = data
            storage_trie = SecureMPT()
            for slot, value in data.storage.items():
                if value:
                    storage_trie = storage_trie.set(
                        _slot_key(slot), _storage_value_bytes(value)
                    )
            if not storage_trie.is_empty():
                storage_tries[address] = storage_trie
            account_trie = account_trie.set(
                bytes(address), encode_account(data, storage_trie.root_hash())
            )
    return StateSnapshot(accounts, account_trie, storage_tries)


class _Overlay:
    """Mutable per-account overlay inside a StateDB."""

    __slots__ = ("nonce", "balance", "code", "storage", "exists")

    def __init__(self, base: Optional[AccountData]) -> None:
        if base is None:
            self.nonce = 0
            self.balance = 0
            self.code = b""
            self.storage: Dict[int, int] = {}
            self.exists = False
        else:
            self.nonce = base.nonce
            self.balance = base.balance
            self.code = base.code
            self.storage = {}  # only *changed* slots live here
            self.exists = True


class StateDB:
    """Mutable world state with an undo journal, layered on a snapshot.

    The journal records inverse operations; :meth:`snapshot` /
    :meth:`revert_to` give nested-call-frame semantics (geth-style).  A
    ``StateDB`` is single-threaded by design: concurrent execution happens
    either on independent ``StateDB`` instances (validator subgraph lanes
    would be race-free by construction — components are account-disjoint)
    or through the OCC multi-version views in :mod:`repro.state.versioned`.
    """

    def __init__(self, base: StateSnapshot) -> None:
        self._base = base
        self._overlays: Dict[Address, _Overlay] = {}
        self._journal: list[tuple] = []

    # ------------------------------------------------------------------ #
    # overlay plumbing                                                   #
    # ------------------------------------------------------------------ #

    def _overlay(self, address: Address) -> _Overlay:
        ov = self._overlays.get(address)
        if ov is None:
            ov = _Overlay(self._base.account(address))
            self._overlays[address] = ov
            self._journal.append(("touch", address))
        return ov

    def _peek(self, address: Address) -> Optional[_Overlay]:
        return self._overlays.get(address)

    # ------------------------------------------------------------------ #
    # reads                                                              #
    # ------------------------------------------------------------------ #

    def account_exists(self, address: Address) -> bool:
        ov = self._peek(address)
        if ov is not None:
            return ov.exists
        return self._base.account(address) is not None

    def get_balance(self, address: Address) -> int:
        ov = self._peek(address)
        if ov is not None:
            return ov.balance
        acct = self._base.account(address)
        return acct.balance if acct else 0

    def get_nonce(self, address: Address) -> int:
        ov = self._peek(address)
        if ov is not None:
            return ov.nonce
        acct = self._base.account(address)
        return acct.nonce if acct else 0

    def get_code(self, address: Address) -> bytes:
        ov = self._peek(address)
        if ov is not None:
            return ov.code
        acct = self._base.account(address)
        return acct.code if acct else b""

    def get_storage(self, address: Address, slot: int) -> int:
        ov = self._peek(address)
        if ov is not None:
            if slot in ov.storage:
                return ov.storage[slot]
            if not ov.exists:
                return 0
        acct = self._base.account(address)
        if acct is None:
            return 0
        return acct.storage.get(slot, 0)

    # ------------------------------------------------------------------ #
    # writes (journaled)                                                 #
    # ------------------------------------------------------------------ #

    def set_balance(self, address: Address, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative balance for {address.hex()}: {value}")
        ov = self._overlay(address)
        self._journal.append(("balance", address, ov.balance, ov.exists))
        ov.balance = value
        ov.exists = True

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def sub_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) - amount)

    def set_nonce(self, address: Address, value: int) -> None:
        ov = self._overlay(address)
        self._journal.append(("nonce", address, ov.nonce, ov.exists))
        ov.nonce = value
        ov.exists = True

    def increment_nonce(self, address: Address) -> None:
        self.set_nonce(address, self.get_nonce(address) + 1)

    def set_code(self, address: Address, code: bytes) -> None:
        ov = self._overlay(address)
        self._journal.append(("code", address, ov.code, ov.exists))
        ov.code = code
        ov.exists = True

    def set_storage(self, address: Address, slot: int, value: int) -> None:
        ov = self._overlay(address)
        had = slot in ov.storage
        old = ov.storage.get(slot)
        self._journal.append(("storage", address, slot, old, had, ov.exists))
        ov.storage[slot] = value
        ov.exists = True

    def create_account(self, address: Address) -> None:
        """Ensure an account exists (used by CREATE and genesis helpers)."""
        ov = self._overlay(address)
        if not ov.exists:
            self._journal.append(("exists", address, ov.exists))
            ov.exists = True

    # ------------------------------------------------------------------ #
    # journal                                                            #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> int:
        """Mark the current journal position for a later revert."""
        return len(self._journal)

    def revert_to(self, mark: int) -> None:
        """Undo every change recorded after ``mark`` (inclusive of frames)."""
        if mark < 0 or mark > len(self._journal):
            raise ValueError(f"invalid journal mark {mark}")
        while len(self._journal) > mark:
            entry = self._journal.pop()
            kind = entry[0]
            if kind == "touch":
                self._overlays.pop(entry[1], None)
            elif kind == "balance":
                _, addr, old, existed = entry
                ov = self._overlays[addr]
                ov.balance = old
                ov.exists = existed
            elif kind == "nonce":
                _, addr, old, existed = entry
                ov = self._overlays[addr]
                ov.nonce = old
                ov.exists = existed
            elif kind == "code":
                _, addr, old, existed = entry
                ov = self._overlays[addr]
                ov.code = old
                ov.exists = existed
            elif kind == "storage":
                _, addr, slot, old, had, existed = entry
                ov = self._overlays[addr]
                if had:
                    ov.storage[slot] = old
                else:
                    ov.storage.pop(slot, None)
                ov.exists = existed
            elif kind == "exists":
                _, addr, old = entry
                self._overlays[addr].exists = old
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown journal entry {kind}")

    # ------------------------------------------------------------------ #
    # commitment                                                         #
    # ------------------------------------------------------------------ #

    def touched_addresses(self) -> Set[Address]:
        return set(self._overlays)

    def commit(self) -> StateSnapshot:
        """Fold the overlay into a new immutable snapshot.

        Only dirty accounts are re-encoded into the account trie, and only
        *effectively* dirty storage slots into the storage tries, so commit
        cost is proportional to the net write set — the property that makes
        block-level state roots affordable (paper §5.2 checks roots per
        block).  Three batching rules keep the trie work minimal without
        changing any root:

        * overlay slots whose value equals the base value are dropped
          (writing an identical trie value cannot move the root);
        * the surviving slots of each account go through one sorted
          :meth:`SecureMPT.update_many` pass instead of per-slot calls;
        * an account whose nonce/balance/code match base and whose storage
          batch came out empty keeps its base trie entry untouched.
        """
        accounts: Dict[Address, AccountData] = dict(self._base.accounts)
        account_trie = self._base._account_trie
        storage_tries: Dict[Address, SecureMPT] = dict(self._base._storage_tries)

        for address, ov in self._overlays.items():
            base_acct = self._base.account(address)
            if not ov.exists:
                continue
            base_storage = base_acct.storage if base_acct else {}
            # net storage delta: sorted slots, no-op writes dropped
            changed = [
                (slot, value)
                for slot, value in sorted(ov.storage.items())
                if value != base_storage.get(slot, 0)
            ]
            if changed:
                merged = dict(base_storage)
                updates = []
                for slot, value in changed:
                    if value:
                        merged[slot] = value
                        updates.append(
                            (_slot_key(slot), _storage_value_bytes(value))
                        )
                    else:
                        merged.pop(slot, None)
                        updates.append((_slot_key(slot), b""))
                storage_trie = storage_tries.get(address, SecureMPT())
                storage_trie = storage_trie.update_many(updates)
                if storage_trie.is_empty():
                    storage_tries.pop(address, None)
                else:
                    storage_tries[address] = storage_trie
                storage = merged
            else:
                storage = base_storage

            if (
                not changed
                and base_acct is not None
                and ov.nonce == base_acct.nonce
                and ov.balance == base_acct.balance
                and ov.code == base_acct.code
            ):
                # touched but unchanged: the base trie entry is still exact
                continue

            new_acct = AccountData(
                nonce=ov.nonce, balance=ov.balance, code=ov.code, storage=storage
            )
            if new_acct.is_empty():
                # EIP-158 pruning: drop empty accounts entirely
                accounts.pop(address, None)
                account_trie = account_trie.delete(bytes(address))
                storage_tries.pop(address, None)
                continue
            accounts[address] = new_acct
            storage_root = (
                storage_tries[address].root_hash()
                if address in storage_tries
                else EMPTY_ROOT
            )
            account_trie = account_trie.set(
                bytes(address), encode_account(new_acct, storage_root)
            )

        return StateSnapshot(accounts, account_trie, storage_tries)

    # convenient for tests
    def apply_writes(
        self, writes: Iterable[Tuple[Address, int, int]]
    ) -> None:
        """Apply raw ``(address, slot, value)`` storage writes (test helper)."""
        for address, slot, value in writes:
            self.set_storage(address, slot, value)
