"""An immutable hexary Merkle-Patricia trie (MPT).

This is the commitment structure Ethereum uses for the world state and for
per-contract storage (paper §2.1: two world states are identical iff their
MPT roots match, which is exactly how §5.2 validates correctness).

Design choices:

* **Immutable nodes with structural sharing.**  ``insert``/``delete``
  return a new root and copy only the path they touch, so snapshotting a
  trie is free — which is what lets the chain layer keep the state of every
  block (including fork siblings) alive simultaneously.
* **Yellow-paper encoding.**  Leaf/extension paths use hex-prefix (HP)
  encoding; node references embed the RLP of nodes shorter than 32 bytes
  and the Keccak hash otherwise; the root hash is always the hash of the
  root node's RLP.  Hashes are cached per node and never recomputed thanks
  to immutability.
* **byte-string keys and values.**  Callers hash/serialise their own keys
  (see :class:`SecureMPT` for the keccak-keyed variant used by the state).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.common.hashing import keccak
from repro.common.rlp import rlp_encode
from repro.common.types import Hash32
from repro.state.cache import keccak_cached

__all__ = ["MPT", "SecureMPT", "EMPTY_ROOT"]

Nibbles = Tuple[int, ...]


def bytes_to_nibbles(key: bytes) -> Nibbles:
    out = []
    for b in key:
        out.append(b >> 4)
        out.append(b & 0x0F)
    return tuple(out)


def hp_encode(path: Nibbles, is_leaf: bool) -> bytes:
    """Hex-prefix encode a nibble path with the leaf/extension flag."""
    flag = 2 if is_leaf else 0
    if len(path) % 2 == 1:
        nibbles = (flag + 1,) + path
    else:
        nibbles = (flag, 0) + path
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def _common_prefix_len(a: Nibbles, b: Nibbles) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class _Leaf:
    __slots__ = ("path", "value", "_enc")

    def __init__(self, path: Nibbles, value: bytes) -> None:
        self.path = path
        self.value = value
        self._enc: Optional[bytes] = None


class _Extension:
    __slots__ = ("path", "child", "_enc")

    def __init__(self, path: Nibbles, child: "_Node") -> None:
        self.path = path
        self.child = child
        self._enc: Optional[bytes] = None


class _Branch:
    __slots__ = ("children", "value", "_enc")

    def __init__(
        self, children: Tuple[Optional["_Node"], ...], value: Optional[bytes]
    ) -> None:
        self.children = children
        self.value = value
        self._enc: Optional[bytes] = None


_Node = Union[_Leaf, _Extension, _Branch]

_EMPTY_CHILDREN: Tuple[Optional[_Node], ...] = (None,) * 16

#: Root hash of the empty trie: hash of the RLP of the empty byte string.
EMPTY_ROOT = keccak(rlp_encode(b""))


def _node_rlp(node: _Node) -> bytes:
    """Canonical RLP of a node (cached; nodes are immutable)."""
    enc = node._enc
    if enc is not None:
        return enc
    if isinstance(node, _Leaf):
        enc = rlp_encode([hp_encode(node.path, True), node.value])
    elif isinstance(node, _Extension):
        enc = rlp_encode([hp_encode(node.path, False), _node_ref(node.child)])
    else:  # branch
        items: list = [
            (b"" if c is None else _node_ref(c)) for c in node.children
        ]
        items.append(node.value if node.value is not None else b"")
        enc = rlp_encode(items)
    node._enc = enc
    return enc


def _node_ref(node: _Node):
    """Reference used inside a parent: inline structure if RLP < 32 bytes,
    otherwise the 32-byte hash.  To keep things simple (and still
    canonical) we inline the *encoded* RLP via a raw-passthrough trick:
    since ``rlp_encode`` would re-encode a list, we return the hash when
    long, else the decoded structural form is unnecessary — we embed the
    already-encoded bytes by returning a special marker handled in
    ``rlp_encode``.  Instead of complicating the encoder, we conservatively
    return the hash whenever the RLP is 32 bytes or longer, and for shorter
    nodes we return their *structural list*, rebuilt cheaply below.
    """
    enc = _node_rlp(node)
    if len(enc) >= 32:
        return keccak(enc)
    return _node_struct(node)


def _node_struct(node: _Node):
    """Structural (list) form of a node for inline embedding."""
    if isinstance(node, _Leaf):
        return [hp_encode(node.path, True), node.value]
    if isinstance(node, _Extension):
        return [hp_encode(node.path, False), _node_ref(node.child)]
    items: list = [(b"" if c is None else _node_ref(c)) for c in node.children]
    items.append(node.value if node.value is not None else b"")
    return items


def _get(node: Optional[_Node], path: Nibbles) -> Optional[bytes]:
    while node is not None:
        if isinstance(node, _Leaf):
            return node.value if node.path == path else None
        if isinstance(node, _Extension):
            k = len(node.path)
            if path[:k] != node.path:
                return None
            path = path[k:]
            node = node.child
            continue
        # branch
        if not path:
            return node.value
        child = node.children[path[0]]
        path = path[1:]
        node = child
    return None


def _insert(node: Optional[_Node], path: Nibbles, value: bytes) -> _Node:
    if node is None:
        return _Leaf(path, value)
    if isinstance(node, _Leaf):
        if node.path == path:
            return _Leaf(path, value)
        common = _common_prefix_len(node.path, path)
        old_rest = node.path[common:]
        new_rest = path[common:]
        children = list(_EMPTY_CHILDREN)
        branch_value: Optional[bytes] = None
        if old_rest:
            children[old_rest[0]] = _Leaf(old_rest[1:], node.value)
        else:
            branch_value = node.value
        if new_rest:
            children[new_rest[0]] = _Leaf(new_rest[1:], value)
        else:
            branch_value = value
        branch = _Branch(tuple(children), branch_value)
        if common:
            return _Extension(path[:common], branch)
        return branch
    if isinstance(node, _Extension):
        common = _common_prefix_len(node.path, path)
        if common == len(node.path):
            child = _insert(node.child, path[common:], value)
            return _Extension(node.path, child)
        # split the extension
        ext_rest = node.path[common:]
        new_rest = path[common:]
        children = list(_EMPTY_CHILDREN)
        branch_value = None
        sub = (
            node.child
            if len(ext_rest) == 1
            else _Extension(ext_rest[1:], node.child)
        )
        children[ext_rest[0]] = sub
        if new_rest:
            children[new_rest[0]] = _Leaf(new_rest[1:], value)
        else:
            branch_value = value
        branch = _Branch(tuple(children), branch_value)
        if common:
            return _Extension(path[:common], branch)
        return branch
    # branch
    if not path:
        return _Branch(node.children, value)
    idx = path[0]
    child = _insert(node.children[idx], path[1:], value)
    children = list(node.children)
    children[idx] = child
    return _Branch(tuple(children), node.value)


def _normalize_branch(node: _Branch) -> Optional[_Node]:
    """Collapse a branch left with <2 meaningful entries after a delete."""
    live = [(i, c) for i, c in enumerate(node.children) if c is not None]
    if node.value is not None:
        if live:
            return node
        return _Leaf((), node.value)
    if len(live) > 1:
        return node
    if not live:
        return None
    idx, child = live[0]
    # merge the branch slot nibble into the surviving child
    if isinstance(child, _Leaf):
        return _Leaf((idx,) + child.path, child.value)
    if isinstance(child, _Extension):
        return _Extension((idx,) + child.path, child.child)
    return _Extension((idx,), child)


def _delete(node: Optional[_Node], path: Nibbles) -> Optional[_Node]:
    if node is None:
        return None
    if isinstance(node, _Leaf):
        return None if node.path == path else node
    if isinstance(node, _Extension):
        k = len(node.path)
        if path[:k] != node.path:
            return node
        child = _delete(node.child, path[k:])
        if child is node.child:
            return node
        if child is None:
            return None
        if isinstance(child, _Leaf):
            return _Leaf(node.path + child.path, child.value)
        if isinstance(child, _Extension):
            return _Extension(node.path + child.path, child.child)
        return _Extension(node.path, child)
    # branch
    if not path:
        if node.value is None:
            return node
        return _normalize_branch(_Branch(node.children, None))
    idx = path[0]
    old_child = node.children[idx]
    child = _delete(old_child, path[1:])
    if child is old_child:
        return node
    children = list(node.children)
    children[idx] = child
    return _normalize_branch(_Branch(tuple(children), node.value))


def _iter_items(node: Optional[_Node], prefix: Nibbles) -> Iterator[tuple[Nibbles, bytes]]:
    if node is None:
        return
    if isinstance(node, _Leaf):
        yield prefix + node.path, node.value
        return
    if isinstance(node, _Extension):
        yield from _iter_items(node.child, prefix + node.path)
        return
    if node.value is not None:
        yield prefix, node.value
    for i, child in enumerate(node.children):
        if child is not None:
            yield from _iter_items(child, prefix + (i,))


class MPT:
    """Immutable Merkle-Patricia trie handle.

    All mutating operations return a *new* :class:`MPT`; the receiver is
    unchanged.  Keys and values are ``bytes``; setting a key to the empty
    value deletes it (Ethereum semantics for zero-valued storage).
    """

    __slots__ = ("_root",)

    def __init__(self, _root: Optional[_Node] = None) -> None:
        self._root = _root

    def get(self, key: bytes) -> Optional[bytes]:
        return _get(self._root, bytes_to_nibbles(key))

    def set(self, key: bytes, value: bytes) -> "MPT":
        if value == b"":
            return self.delete(key)
        return MPT(_insert(self._root, bytes_to_nibbles(key), value))

    def delete(self, key: bytes) -> "MPT":
        new_root = _delete(self._root, bytes_to_nibbles(key))
        if new_root is self._root:
            return self
        return MPT(new_root)

    def root_hash(self) -> Hash32:
        if self._root is None:
            return EMPTY_ROOT
        return keccak(_node_rlp(self._root))

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in lexicographic key order.

        Only keys with an even nibble count (i.e. whole bytes) are
        representable; all keys inserted through :meth:`set` qualify.
        """
        for nibbles, value in _iter_items(self._root, ()):
            key = bytes(
                (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
            )
            yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in _iter_items(self._root, ()))

    def is_empty(self) -> bool:
        return self._root is None


class SecureMPT:
    """MPT variant that keys entries by ``keccak(key)``.

    This mirrors Ethereum's *secure trie*: it bounds path depth and
    prevents key-grinding attacks on the structure.  Iteration yields
    hashed keys, so callers that need reverse lookup keep their own index
    (the :class:`~repro.state.statedb.StateDB` does).

    Key hashing goes through the process-wide :func:`keccak_cached` memo —
    commits re-hash the same addresses and slot keys block after block, so
    memoizing the preimage→digest map removes the dominant hashing cost
    without changing any root (the memo is a pure-function cache).
    """

    __slots__ = ("_trie",)

    def __init__(self, _trie: Optional[MPT] = None) -> None:
        self._trie = _trie if _trie is not None else MPT()

    def get(self, key: bytes) -> Optional[bytes]:
        return self._trie.get(keccak_cached(key))

    def set(self, key: bytes, value: bytes) -> "SecureMPT":
        return SecureMPT(self._trie.set(keccak_cached(key), value))

    def delete(self, key: bytes) -> "SecureMPT":
        return SecureMPT(self._trie.delete(keccak_cached(key)))

    def update_many(self, items: Iterable[Tuple[bytes, bytes]]) -> "SecureMPT":
        """Apply a batch of ``(key, value)`` updates in one pass.

        ``b""`` values delete (Ethereum zero-storage semantics), matching
        :meth:`set`.  Returns ``self`` unchanged when every update is a
        no-op, preserving structural sharing for snapshot identity checks.
        The batch amortises the per-call ``SecureMPT`` wrapper allocation
        that ``StateDB.commit()`` previously paid per storage slot.
        """
        trie = self._trie
        for key, value in items:
            if value == b"":
                trie = trie.delete(keccak_cached(key))
            else:
                trie = trie.set(keccak_cached(key), value)
        if trie is self._trie:
            return self
        return SecureMPT(trie)

    def root_hash(self) -> Hash32:
        return self._trie.root_hash()

    def is_empty(self) -> bool:
        return self._trie.is_empty()
