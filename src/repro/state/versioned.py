"""Multi-version state for the proposer's OCC-WSI execution.

Algorithm 1 executes each transaction against a **snapshot** of the state
at the version current when the transaction started, then validates its
read set against the reserve table at commit.  The substrate for that is a
multi-version store: every committed transaction ``v`` appends its write
set at version ``v``, and a reader at snapshot version ``s`` sees, for each
key, the latest value written at any version ``<= s`` (falling back to the
base snapshot, version 0).

:class:`OCCStateView` adapts the store to the StateDB interface the EVM
expects, buffering this transaction's own writes locally (read-your-own-
write, invisible to others until commit) with journal support so reverted
call frames roll the buffer back.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Tuple

from repro.common.types import Address
from repro.state.access import (
    StateKey,
    balance_key,
    code_key,
    nonce_key,
    storage_key,
)
from repro.state.cache import ReadThroughCache
from repro.state.statedb import StateSnapshot

__all__ = ["MultiVersionStore", "OCCStateView", "OCCConflict", "read_base_value"]


class OCCConflict(Exception):
    """Raised when OCC-WSI validation rejects a commit (stale read)."""


def read_base_value(base: StateSnapshot, key: StateKey) -> Any:
    """Value of ``key`` in a committed snapshot (version-0 fallback).

    Shared by :class:`MultiVersionStore` and the overlay stores the real
    execution backends (:mod:`repro.exec`) build for worker tasks — any
    object exposing ``account(address)`` works as ``base``.
    """
    acct = base.account(key.address)
    if key.kind == "balance":
        return acct.balance if acct else 0
    if key.kind == "nonce":
        return acct.nonce if acct else 0
    if key.kind == "code":
        return acct.code if acct else b""
    if key.kind == "storage":
        if acct is None:
            return 0
        return acct.storage.get(key.slot, 0)
    raise ValueError(f"unknown key kind {key.kind!r}")


class MultiVersionStore:
    """Append-only versioned key/value store over a base snapshot.

    Values are ``int`` for balance/nonce/storage keys and ``bytes`` for
    code keys.  Versions are the 1-based commit sequence numbers of the
    transactions already packed into the block under construction; the
    base snapshot is version 0.
    """

    def __init__(self, base: StateSnapshot) -> None:
        self.base = base
        self._versions: Dict[StateKey, Tuple[List[int], List[Any]]] = {}
        self.committed_version = 0
        # Base-snapshot reads repeat across every optimistic transaction in
        # a block (hot contracts, funded senders); the snapshot is immutable
        # for the store's lifetime, so a bounded read-through cache is safe.
        self.base_cache: ReadThroughCache[StateKey, Any] = ReadThroughCache(
            self._load_base, maxsize=8192
        )

    # ------------------------------------------------------------------ #

    def _load_base(self, key: StateKey) -> Any:
        return read_base_value(self.base, key)

    def _base_value(self, key: StateKey) -> Any:
        return self.base_cache.get(key)

    def read_at(self, key: StateKey, version: int) -> Any:
        """Value of ``key`` as of snapshot ``version``."""
        entry = self._versions.get(key)
        if entry is not None:
            versions, values = entry
            idx = bisect_right(versions, version) - 1
            if idx >= 0:
                return values[idx]
        return self._base_value(key)

    def latest_version(self, key: StateKey) -> int:
        """Version of the most recent committed write to ``key`` (0 if none)."""
        entry = self._versions.get(key)
        if entry is None or not entry[0]:
            return 0
        return entry[0][-1]

    def apply(self, writes: Dict[StateKey, Any], version: int) -> None:
        """Append a committed transaction's writes at ``version``.

        Versions must be applied in strictly increasing order — the commit
        section of Algorithm 1 is serialised, and the store enforces it.
        """
        if version != self.committed_version + 1:
            raise ValueError(
                f"out-of-order commit: version {version}, "
                f"expected {self.committed_version + 1}"
            )
        for key, value in writes.items():
            entry = self._versions.get(key)
            if entry is None:
                entry = ([], [])
                self._versions[key] = entry
            entry[0].append(version)
            entry[1].append(value)
        self.committed_version = version

    def final_values(self) -> Dict[StateKey, Any]:
        """Latest value of every key ever written (for state materialise)."""
        return {key: values[-1] for key, (_, values) in self._versions.items()}

    def key_versions(self) -> Dict[StateKey, List[int]]:
        """Every key's committed write versions, in commit order.

        The serializability oracle (:mod:`repro.check.oracle`) cross-checks
        this index against the read/write sets the run recorded: any drift
        between what the store holds and what the bookkeeping claims means
        a driver applied writes it never recorded (or vice versa).
        """
        return {key: list(versions) for key, (versions, _) in self._versions.items()}


class OCCStateView:
    """StateDB-compatible view for one optimistic transaction.

    Reads come from the multi-version store at ``snapshot_version``;
    writes go to a local buffer with journal marks so reverting call
    frames restores the buffer exactly.  On successful execution the
    proposer applies :attr:`buffered_writes` to the store at the
    transaction's commit version.
    """

    def __init__(self, store: MultiVersionStore, snapshot_version: int) -> None:
        self.store = store
        self.snapshot_version = snapshot_version
        self._buffer: Dict[StateKey, Any] = {}
        self._journal: list[tuple] = []

    # -- helpers --------------------------------------------------------- #

    def _read(self, key: StateKey) -> Any:
        if key in self._buffer:
            return self._buffer[key]
        return self.store.read_at(key, self.snapshot_version)

    def _write(self, key: StateKey, value: Any) -> None:
        had = key in self._buffer
        old = self._buffer.get(key)
        self._journal.append((key, old, had))
        self._buffer[key] = value

    # -- StateDB interface ------------------------------------------------ #

    def account_exists(self, address: Address) -> bool:
        # Existence approximated by non-default nonce/balance/code: in this
        # system accounts are funded at genesis or created by CREATE.
        return (
            self._read(nonce_key(address)) != 0
            or self._read(balance_key(address)) != 0
            or self._read(code_key(address)) != b""
        )

    def get_balance(self, address: Address) -> int:
        return self._read(balance_key(address))

    def get_nonce(self, address: Address) -> int:
        return self._read(nonce_key(address))

    def get_code(self, address: Address) -> bytes:
        return self._read(code_key(address))

    def get_storage(self, address: Address, slot: int) -> int:
        return self._read(storage_key(address, slot))

    def set_balance(self, address: Address, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative balance for {address.hex()}")
        self._write(balance_key(address), value)

    def add_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def sub_balance(self, address: Address, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) - amount)

    def set_nonce(self, address: Address, value: int) -> None:
        self._write(nonce_key(address), value)

    def increment_nonce(self, address: Address) -> None:
        self.set_nonce(address, self.get_nonce(address) + 1)

    def set_code(self, address: Address, code: bytes) -> None:
        self._write(code_key(address), code)

    def set_storage(self, address: Address, slot: int, value: int) -> None:
        self._write(storage_key(address, slot), value)

    def create_account(self, address: Address) -> None:
        # No-op: existence is implied by the first write to the account.
        return None

    def snapshot(self) -> int:
        return len(self._journal)

    def revert_to(self, mark: int) -> None:
        if mark < 0 or mark > len(self._journal):
            raise ValueError(f"invalid journal mark {mark}")
        while len(self._journal) > mark:
            key, old, had = self._journal.pop()
            if had:
                self._buffer[key] = old
            else:
                self._buffer.pop(key, None)

    # -- commit support ---------------------------------------------------- #

    @property
    def buffered_writes(self) -> Dict[StateKey, Any]:
        return dict(self._buffer)
