"""Durable storage engine: block log, state snapshots, crash recovery.

The package gives the in-memory :class:`~repro.chain.blockchain.Blockchain`
a durability seam without changing any existing caller:

* :mod:`repro.store.backend` — the :class:`StorageBackend` protocol plus
  :class:`MemoryStore` (default no-op; today's behaviour) and
  :class:`DiskStore` (append-only log + periodic snapshots + atomic
  manifest commit point);
* :mod:`repro.store.blocklog` — the length-prefixed, CRC-checksummed
  append-only block log with torn-tail detection;
* :mod:`repro.store.codec` — canonical RLP encodings for headers,
  transactions, receipts and whole blocks, plus :func:`chain_digest`
  (the byte-identity witness the kill-and-resume tests compare);
* :mod:`repro.store.manifest` / :mod:`repro.store.snapshots` — the
  atomically-renamed manifest and the checksummed state snapshots;
* :mod:`repro.store.recovery` — :func:`recover`, which rebuilds and
  *re-verifies* a chain from a data dir (every replayed block is
  re-executed and its state root checked);
* :mod:`repro.store.service` — :class:`NodeService`, the long-running
  ``python -m repro serve`` driver with graceful-shutdown sealing.

:func:`open_store` is the one-call entry point: recover (or create) a
data dir and hand back a chain already wired to a live :class:`DiskStore`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.chain.blockchain import Blockchain
from repro.state.statedb import StateSnapshot
from repro.store.backend import DiskStore, MemoryStore, StorageBackend
from repro.store.blocklog import BlockLog
from repro.store.codec import (
    chain_digest,
    decode_block,
    decode_header,
    encode_block,
    encode_header,
)
from repro.store.errors import (
    BlockLogCorruptError,
    ConfigMismatchError,
    ManifestError,
    ReplayDivergenceError,
    SnapshotCorruptError,
    StaleManifestError,
    StoreError,
    TornTailError,
)
from repro.store.manifest import Manifest, SnapshotRef
from repro.store.recovery import RecoveryResult, recover

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.storage import CrashPlan
    from repro.obs.events import EventEmitter
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "StorageBackend",
    "MemoryStore",
    "DiskStore",
    "BlockLog",
    "Manifest",
    "SnapshotRef",
    "RecoveryResult",
    "recover",
    "open_store",
    "chain_digest",
    "encode_block",
    "decode_block",
    "encode_header",
    "decode_header",
    "StoreError",
    "BlockLogCorruptError",
    "TornTailError",
    "SnapshotCorruptError",
    "ManifestError",
    "StaleManifestError",
    "ReplayDivergenceError",
    "ConfigMismatchError",
]


def open_store(
    data_dir: str,
    genesis_state: StateSnapshot,
    *,
    snapshot_interval: int = 64,
    compact: bool = True,
    fsync: bool = True,
    serve: Optional[Dict[str, Any]] = None,
    metrics: Optional["MetricsRegistry"] = None,
    emitter: Optional["EventEmitter"] = None,
    crash: Optional["CrashPlan"] = None,
) -> Tuple[Blockchain, DiskStore, RecoveryResult]:
    """Recover (or create) ``data_dir`` and return a chain wired to disk.

    The returned chain's :meth:`~repro.chain.blockchain.Blockchain.add_block`
    persists every accepted block through the :class:`DiskStore` commit
    path.  ``serve`` (only used when the dir is fresh) pins the session
    parameters future resumes must match.
    """
    from repro.obs.events import NULL_EMITTER

    result = recover(data_dir, genesis_state, fsync=fsync, metrics=metrics)
    store = DiskStore(
        data_dir,
        snapshot_interval=snapshot_interval,
        compact=compact,
        fsync=fsync,
        metrics=metrics,
        emitter=emitter if emitter is not None else NULL_EMITTER,
        crash=crash,
    )
    if result.fresh:
        store.initialize(
            encode_header(result.chain.genesis.header),
            genesis_state,
            serve=serve,
        )
    else:
        assert result.log is not None
        store.adopt(result.manifest, result.log)
    result.chain.attach_store(store)
    return result.chain, store, result
