"""Storage backends: the persistence seam behind :class:`Blockchain`.

:class:`StorageBackend` is the protocol the chain talks to on every
committed block.  Two implementations:

* :class:`MemoryStore` — does nothing.  The default for every existing
  test, benchmark and figure script; the in-memory behaviour (and cost)
  of the chain is exactly what it was before the storage engine existed.
* :class:`DiskStore` — the durable engine.  Every block appends one
  checksummed record to the block log; every ``snapshot_interval``
  canonical blocks a full state snapshot is written; and the manifest is
  atomically advanced *after* the data it describes is fsynced, which
  makes the manifest write the commit point:

  ``append (fsync) → [snapshot (fsync)] → manifest (rename) → [compact]``

  A crash anywhere in that sequence loses at most the not-yet-manifested
  suffix, which recovery re-derives from the log itself.  Compaction
  rewrites the post-snapshot tail into a *new generation* log file and
  repoints the manifest before deleting the old one, so even a crash
  mid-compaction leaves one fully intact log on disk.

The ``crash`` hook threads :class:`repro.faults.CrashPlan` through the
commit path — the storage-fault tests die at exact bytes of this
sequence and assert recovery rebuilds an identical chain.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Dict, Optional, Protocol

from repro.chain.block import Block
from repro.obs.events import NULL_EMITTER, EventEmitter
from repro.state.statedb import StateSnapshot
from repro.store.blocklog import RECORD_HEADER, BlockLog
from repro.store.codec import encode_block, encode_header, verify_roundtrip
from repro.store.errors import StoreError
from repro.store.manifest import Manifest, SnapshotRef
from repro.store.snapshots import write_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.storage import CrashPlan
    from repro.obs.metrics import MetricsRegistry

__all__ = ["StorageBackend", "MemoryStore", "DiskStore", "SNAPSHOT_US_EDGES"]

#: Histogram edges for ``store.snapshot_us`` / ``store.commit_us`` (µs).
SNAPSHOT_US_EDGES = (0.0, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7)

DEFAULT_LOG_NAME = "blocks.log"


class StorageBackend(Protocol):
    """What the chain needs from a store (see module docs)."""

    def on_block(self, block: Block, post_state: StateSnapshot, *, head: bool) -> None:
        """Persist one committed block (``head`` = became canonical head)."""
        ...

    def flush(self) -> None:
        """Make everything buffered durable without sealing."""
        ...

    def seal(self) -> None:
        """Graceful shutdown: flush and mark the manifest clean."""
        ...

    def close(self) -> None:
        """Release file handles (no durability implications)."""
        ...


class MemoryStore:
    """The null store — current in-memory behaviour, zero overhead."""

    def on_block(self, block: Block, post_state: StateSnapshot, *, head: bool) -> None:
        return None

    def flush(self) -> None:
        return None

    def seal(self) -> None:
        return None

    def close(self) -> None:
        return None


class DiskStore:
    """Append-only block log + periodic snapshots + atomic manifest."""

    def __init__(
        self,
        data_dir: str,
        *,
        snapshot_interval: int = 64,
        compact: bool = True,
        fsync: bool = True,
        verify_writes: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
        emitter: EventEmitter = NULL_EMITTER,
        crash: Optional["CrashPlan"] = None,
    ) -> None:
        self.data_dir = data_dir
        self.snapshot_interval = snapshot_interval
        self.compact = compact
        self.fsync = fsync
        self.verify_writes = verify_writes
        self.metrics = metrics
        self.emitter = emitter
        self.crash = crash
        self.manifest = Manifest()
        self.log: Optional[BlockLog] = None
        self._sealed = False
        #: compaction generation counter (labels per-generation metrics)
        self.generation = 0
        #: wall µs the latest on_block spent end-to-end (SLO store-write feed)
        self.last_commit_us = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def initialize(
        self,
        genesis_header_bytes: bytes,
        genesis_state: StateSnapshot,
        *,
        serve: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Create a fresh data dir: genesis snapshot + open manifest."""
        os.makedirs(self.data_dir, exist_ok=True)
        self.log = BlockLog(
            os.path.join(self.data_dir, DEFAULT_LOG_NAME),
            fsync=self.fsync,
            metrics=self.metrics,
        )
        filename, digest = write_snapshot(
            self.data_dir, 0, genesis_state, fsync=self.fsync
        )
        root_hex = bytes(genesis_state.state_root()).hex()
        self.manifest = Manifest(
            height=0,
            head_hash="",
            state_root=root_hex,
            log_start_height=1,
            log_bytes=self.log.size,
            snapshot=SnapshotRef(
                file=filename,
                height=0,
                state_root=root_hex,
                sha256=digest,
                header=genesis_header_bytes.hex(),
            ),
            clean=False,
            serve=dict(serve or {}),
        )
        self.manifest.write(self.data_dir, fsync=self.fsync)

    def adopt(self, manifest: Manifest, log: BlockLog) -> None:
        """Take over a recovered data dir (recovery already verified it)."""
        self.manifest = manifest
        self.log = log
        log.metrics = self.metrics  # recovery opened it uninstrumented
        self.manifest.log_bytes = log.size
        self.manifest.clean = False
        self.manifest.write(self.data_dir, fsync=self.fsync)

    # ------------------------------------------------------------------ #
    # the commit path
    # ------------------------------------------------------------------ #

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def on_block(self, block: Block, post_state: StateSnapshot, *, head: bool) -> None:
        if self.log is None:
            raise RuntimeError("DiskStore used before initialize()/adopt()")
        started = time.perf_counter()
        height = block.number
        crash = self.crash

        # 0. codec self-check: a block that cannot be re-read from its own
        #    encoding must fail here, at append time, not at recovery time
        if self.verify_writes:
            problem = verify_roundtrip(block)
            if problem is not None:
                raise StoreError(
                    f"block {height} fails codec round-trip: {problem}"
                )

        # 1. block record → log (durable before anything references it)
        if crash is not None and crash.is_armed("torn_append", height):
            record_len = len(encode_block(block)) + RECORD_HEADER.size
            self.log.append(block, tear_after=crash.tear_bytes(height, record_len))
            crash.fire("torn_append", height)  # always exits here
        before = self.log.size
        self.log.append(block)
        appended = self.log.size - before
        self._count("store.blocks_appended")
        self._count("store.bytes_appended", appended)
        if self.emitter.enabled:
            # header timestamps are the simulated clock, so the event
            # stream stays byte-identical across same-seed runs
            self.emitter.emit(
                "store_append",
                float(block.header.timestamp),
                height=height,
                bytes=appended,
                log_bytes=self.log.size,
            )
        if crash is not None:
            crash.fire("after_append", height)

        # 2. periodic canonical-state snapshot
        if (
            head
            and self.snapshot_interval > 0
            and height % self.snapshot_interval == 0
        ):
            snap_started = time.perf_counter()
            filename, digest = write_snapshot(
                self.data_dir, height, post_state, fsync=self.fsync
            )
            self.manifest.snapshot = SnapshotRef(
                file=filename,
                height=height,
                state_root=bytes(post_state.state_root()).hex(),
                sha256=digest,
                header=encode_header(block.header).hex(),
            )
            self._count("store.snapshots")
            if self.metrics is not None:
                self.metrics.histogram(
                    "store.snapshot_us", SNAPSHOT_US_EDGES
                ).observe((time.perf_counter() - snap_started) * 1e6)
            if self.emitter.enabled:
                self.emitter.emit(
                    "store_snapshot",
                    float(block.header.timestamp),
                    height=height,
                    state_root=bytes(post_state.state_root()).hex()[:16],
                )
            if crash is not None:
                crash.fire("after_snapshot", height)

        # 3. manifest advance — the commit point for this block
        if head:
            self.manifest.height = height
            self.manifest.head_hash = bytes(block.hash).hex()
            self.manifest.state_root = bytes(block.header.state_root).hex()
        self.manifest.log_bytes = self.log.size
        self.manifest.write(self.data_dir, fsync=self.fsync)
        self._count("store.manifest_writes")
        if crash is not None:
            crash.fire("after_manifest", height)

        # 4. drop the log prefix the latest snapshot has superseded
        if (
            self.compact
            and self.manifest.snapshot is not None
            and self.manifest.snapshot.height >= self.manifest.log_start_height
        ):
            self._compact(
                self.manifest.snapshot.height, ts=float(block.header.timestamp)
            )

        self.last_commit_us = (time.perf_counter() - started) * 1e6
        if self.metrics is not None:
            self.metrics.histogram("store.commit_us", SNAPSHOT_US_EDGES).observe(
                self.last_commit_us
            )

    def _compact(self, horizon: int, *, ts: float = 0.0) -> None:
        """Keep only records above ``horizon`` in a new-generation log file.

        Crash-safe: the new generation is built in a temp file and
        published with an atomic rename — a crashed earlier attempt at
        the same horizon may have left a partial (possibly torn) file at
        exactly this path, and appending to it would corrupt the
        generation.  Only once the new file is fully durable is the
        manifest repointed at it, and only then is the old generation
        deleted.  Any crash in between leaves a manifest that references
        exactly one intact log.
        """
        assert self.log is not None
        old_path = self.log.path
        survivors = [b for _, b in self.log.scan() if b.number > horizon]
        new_name = f"blocks_{horizon:08d}.log"
        new_path = os.path.join(self.data_dir, new_name)
        new_log = BlockLog.write_new(new_path, survivors, fsync=self.fsync)
        if self.crash is not None:
            # new generation durable, manifest still naming the old one —
            # a retry after this crash must clobber, not extend, new_path
            self.crash.fire("in_compaction", self.manifest.height)
        dropped = self.manifest.height - horizon  # informational only
        self.manifest.log_start_height = horizon + 1
        self.manifest.log_bytes = new_log.size
        self.manifest.log_file = new_name
        self.manifest.write(self.data_dir, fsync=self.fsync)
        self.log.close()
        if os.path.abspath(old_path) != os.path.abspath(new_path):
            os.remove(old_path)
        self.log = new_log
        new_log.metrics = self.metrics
        self.generation += 1
        self._count("store.compactions")
        self._count("store.compacted_blocks", max(dropped, 0))
        if self.metrics is not None:
            # per-generation label (flat dotted key via the label helper):
            # store.compacted_blocks.gen.<n>
            self.metrics.counter(
                "store.compacted_blocks", gen=self.generation
            ).inc(max(dropped, 0))
        if self.emitter.enabled:
            self.emitter.emit(
                "store_compaction",
                ts,
                horizon=horizon,
                generation=self.generation,
                dropped=max(dropped, 0),
                log_bytes=new_log.size,
            )
        self._prune_snapshots()

    def _prune_snapshots(self) -> None:
        """Delete snapshot files older than the one the manifest references."""
        keep = self.manifest.snapshot.file if self.manifest.snapshot else None
        for name in os.listdir(self.data_dir):
            if (
                name.startswith("snapshot_")
                and name.endswith(".json")
                and name != keep
            ):
                os.remove(os.path.join(self.data_dir, name))

    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        if self.log is not None:
            self.manifest.log_bytes = self.log.size
            self.manifest.write(self.data_dir, fsync=self.fsync)

    def seal(self) -> None:
        """Graceful shutdown: everything durable, manifest marked clean."""
        if self.crash is not None:
            self.crash.fire("before_seal", self.manifest.height)
        if self.log is not None:
            self.manifest.log_bytes = self.log.size
        self.manifest.clean = True
        self.manifest.write(self.data_dir, fsync=self.fsync)
        self._sealed = True

    def close(self) -> None:
        if self.log is not None:
            self.log.close()
            self.log = None
