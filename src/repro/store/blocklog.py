"""The append-only block log.

File layout::

    +----------+----------------------------- ... -+
    | magic 8B | record | record | record |        |
    +----------+----------------------------- ... -+

    record := u32-le payload length | u32-le crc32(payload) | payload

The payload is one block's canonical encoding
(:func:`repro.store.codec.encode_block`).  Appends are
``write → flush → fsync`` before the caller may advance its manifest, so
the durable prefix of the log is always a valid record sequence — the
only damage a crash can do is a *torn tail* (an incomplete final
record), which :meth:`BlockLog.scan` reports as
:class:`~repro.store.errors.TornTailError` and recovery heals by
truncating.  A checksum failure *before* the final record cannot be
crash damage and raises :class:`~repro.store.errors.BlockLogCorruptError`
instead.
"""

from __future__ import annotations

import io
import os
import struct
import time
import zlib
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.chain.block import Block
from repro.store.codec import decode_block, encode_block
from repro.store.errors import BlockLogCorruptError, TornTailError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["BlockLog", "LOG_MAGIC", "RECORD_HEADER", "IO_US_EDGES"]

LOG_MAGIC = b"RPBLKLG1"
RECORD_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: Histogram edges (µs) for ``store.append_us`` / ``store.fsync_us`` —
#: spans SSD sync latencies up to pathological seconds-long stalls.
IO_US_EDGES = (0.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7)

#: Hard ceiling on one record — a length field above this is corruption,
#: not a block (the biggest benchmark blocks encode to well under 1 MiB).
MAX_RECORD_BYTES = 256 * 1024 * 1024


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename/creation itself is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class BlockLog:
    """Append-only, length-prefixed, checksummed block storage."""

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.metrics = metrics
        fresh = not os.path.exists(path)
        self._fh: Optional[io.BufferedRandom] = open(  # noqa: SIM115 - long-lived
            path, "a+b"
        )
        if fresh:
            self._fh.write(LOG_MAGIC)
            self._fh.flush()
            if fsync:
                os.fsync(self._fh.fileno())
                _fsync_dir(os.path.dirname(path) or ".")
        else:
            self._check_magic()
        self._fh.seek(0, os.SEEK_END)

    @classmethod
    def write_new(
        cls, path: str, blocks: List[Block], *, fsync: bool = True
    ) -> "BlockLog":
        """Create a log at ``path`` holding exactly ``blocks``, atomically.

        The records are fully written (and fsynced) to a temp file which
        is then renamed over ``path`` — any remnant there from a crashed
        earlier attempt (e.g. a torn, half-written compaction generation)
        is discarded rather than appended to.  Returns the opened log.
        """
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(LOG_MAGIC)
            for block in blocks:
                payload = encode_block(block)
                fh.write(
                    RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
                )
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        if fsync:
            _fsync_dir(os.path.dirname(path) or ".")
        return cls(path, fsync=fsync)

    def _check_magic(self) -> None:
        assert self._fh is not None
        self._fh.seek(0)
        magic = self._fh.read(len(LOG_MAGIC))
        if magic != LOG_MAGIC:
            raise BlockLogCorruptError(
                f"bad log magic {magic!r} in {self.path}", offset=0
            )

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Current file length in bytes (the next append offset)."""
        assert self._fh is not None
        return self._fh.seek(0, os.SEEK_END)

    def append(self, block: Block, *, tear_after: Optional[int] = None) -> int:
        """Append one block; returns the offset the record starts at.

        The record is flushed and (by default) fsynced before returning,
        so a successful ``append`` means the block is durable.

        ``tear_after`` is the fault-injection hook: write only the first
        ``tear_after`` bytes of the record, make *that* durable, and
        return — simulating the exact on-disk state of a crash mid-append.
        Only the storage-fault tests use it.
        """
        assert self._fh is not None
        metrics = self.metrics
        started = time.perf_counter() if metrics is not None else 0.0
        payload = encode_block(block)
        record = RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        offset = self._fh.seek(0, os.SEEK_END)
        if tear_after is not None:
            record = record[: max(0, min(tear_after, len(record) - 1))]
        self._fh.write(record)
        self._fh.flush()
        if self.fsync:
            sync_started = time.perf_counter() if metrics is not None else 0.0
            os.fsync(self._fh.fileno())
            if metrics is not None:
                metrics.histogram("store.fsync_us", IO_US_EDGES).observe(
                    (time.perf_counter() - sync_started) * 1e6
                )
                metrics.counter("store.fsyncs").inc()
        if metrics is not None:
            metrics.histogram("store.append_us", IO_US_EDGES).observe(
                (time.perf_counter() - started) * 1e6
            )
        return offset

    def truncate_to(self, offset: int) -> None:
        """Discard everything at and after ``offset`` (torn-tail healing)."""
        assert self._fh is not None
        if offset < len(LOG_MAGIC):
            raise ValueError(f"cannot truncate into the log magic ({offset})")
        self._fh.truncate(offset)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._fh.seek(0, os.SEEK_END)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "BlockLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def scan(self, *, start: int = 0) -> Iterator[Tuple[int, Block]]:
        """Yield ``(offset, block)`` for every intact record.

        Raises :class:`TornTailError` when the final record is incomplete
        or checksum-broken (carries the offset to truncate back to), and
        :class:`BlockLogCorruptError` for damage anywhere earlier.
        """
        assert self._fh is not None
        self._fh.flush()
        with open(self.path, "rb") as fh:
            data = fh.read()
        if data[: len(LOG_MAGIC)] != LOG_MAGIC:
            raise BlockLogCorruptError(
                f"bad log magic in {self.path}", offset=0
            )
        pos = max(start, len(LOG_MAGIC))
        end = len(data)
        while pos < end:
            record_start = pos
            if pos + RECORD_HEADER.size > end:
                raise TornTailError(
                    "record header runs past end of log", offset=record_start
                )
            length, crc = RECORD_HEADER.unpack_from(data, pos)
            pos += RECORD_HEADER.size
            if length > MAX_RECORD_BYTES:
                # an absurd length field: torn if it is the last record's
                # header, corruption otherwise
                raise TornTailError(
                    f"implausible record length {length}", offset=record_start
                )
            if pos + length > end:
                raise TornTailError(
                    "record payload runs past end of log", offset=record_start
                )
            payload = data[pos : pos + length]
            pos += length
            if zlib.crc32(payload) != crc:
                if pos >= end:
                    raise TornTailError(
                        "final record fails checksum", offset=record_start
                    )
                raise BlockLogCorruptError(
                    "record fails checksum", offset=record_start
                )
            try:
                block = decode_block(payload)
            except ValueError as exc:
                raise BlockLogCorruptError(
                    f"record does not decode: {exc}", offset=record_start
                ) from exc
            yield record_start, block

    def read_all(self) -> List[Block]:
        """Every intact block in append order (strict: any tail damage raises)."""
        return [block for _, block in self.scan()]

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #

    def rewrite(self, blocks: List[Block]) -> int:
        """Atomically replace the log's contents with ``blocks``.

        Used by compaction: the surviving tail is written to a temp file,
        fsynced, and renamed over the live log, so a crash leaves either
        the old log or the new one — never a half-compacted hybrid.
        Returns the new file size.
        """
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(LOG_MAGIC)
            for block in blocks:
                payload = encode_block(block)
                fh.write(
                    RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
                )
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        if self._fh is not None:
            self._fh.close()
        os.replace(tmp_path, self.path)
        if self.fsync:
            _fsync_dir(os.path.dirname(self.path) or ".")
        self._fh = open(self.path, "a+b")
        return self._fh.seek(0, os.SEEK_END)
