"""Canonical RLP codec for blocks, headers, transactions and receipts.

This is the block-log record format: one block encodes to one RLP list
``[header, transactions, receipts]`` and decodes back to structures whose
hashes — header hash, transaction hashes, receipt encodings — are
*byte-identical* to the originals.  That identity is what the
kill-and-resume differential in ``tests/test_store_service.py`` asserts,
and it hinges on two conventions:

* integers ride through :mod:`repro.common.rlp` big-endian with no
  leading zeros (zero is the empty string), so ``decode(encode(0))`` is
  ``b""`` and :func:`_as_int` maps it back to ``0``;
* zero-length byte fields (``extra=b""``, an empty ``proposer_id``)
  encode to the canonical empty string ``0x80`` and decode to ``b""`` —
  the property test in ``tests/test_common_rlp.py`` pins this round trip
  over seeded random headers.

Execution profiles are deliberately *not* persisted: a profile only helps
a validator schedule a block it has not executed yet, and every block in
the log has already been committed.  Decoded blocks carry
``profile=None`` (the validator's pre-execution fallback path).
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional, Sequence, Tuple

from repro.chain.block import Block, BlockHeader, Receipt
from repro.common.hashing import Hash32
from repro.common.rlp import rlp_decode, rlp_encode
from repro.common.types import Address
from repro.evm.interpreter import Log
from repro.txpool.transaction import Transaction

__all__ = [
    "encode_header",
    "decode_header",
    "encode_transaction",
    "decode_transaction",
    "encode_receipt",
    "decode_receipt",
    "encode_block",
    "decode_block",
    "chain_digest",
]


def _as_int(data: bytes) -> int:
    """Decode a canonical RLP integer payload (empty string = zero)."""
    return int.from_bytes(data, "big")


def _as_bytes(item: Any) -> bytes:
    if not isinstance(item, (bytes, bytearray)):
        raise ValueError(f"expected bytes, decoded {type(item).__name__}")
    return bytes(item)


def _as_list(item: Any) -> List[Any]:
    if not isinstance(item, list):
        raise ValueError(f"expected list, decoded {type(item).__name__}")
    return item


# --------------------------------------------------------------------------- #
# header
# --------------------------------------------------------------------------- #

_HEADER_FIELDS = 12


def header_to_items(header: BlockHeader) -> List[Any]:
    """The header as an RLP item list (field order is the wire format)."""
    return [
        bytes(header.parent_hash),
        header.number,
        bytes(header.state_root),
        bytes(header.transactions_root),
        bytes(header.receipts_root),
        header.gas_used,
        header.gas_limit,
        bytes(header.coinbase),
        header.timestamp,
        header.proposer_id,
        header.extra,
        header.logs_bloom,
    ]


def encode_header(header: BlockHeader) -> bytes:
    return rlp_encode(header_to_items(header))


def header_from_items(items: Sequence[Any]) -> BlockHeader:
    if len(items) != _HEADER_FIELDS:
        raise ValueError(f"header wants {_HEADER_FIELDS} fields, got {len(items)}")
    return BlockHeader(
        parent_hash=Hash32(_as_bytes(items[0])),
        number=_as_int(_as_bytes(items[1])),
        state_root=Hash32(_as_bytes(items[2])),
        transactions_root=Hash32(_as_bytes(items[3])),
        receipts_root=Hash32(_as_bytes(items[4])),
        gas_used=_as_int(_as_bytes(items[5])),
        gas_limit=_as_int(_as_bytes(items[6])),
        coinbase=Address(_as_bytes(items[7])),
        timestamp=_as_int(_as_bytes(items[8])),
        proposer_id=_as_bytes(items[9]).decode("utf-8"),
        extra=_as_bytes(items[10]),
        logs_bloom=_as_bytes(items[11]),
    )


def decode_header(data: bytes) -> BlockHeader:
    return header_from_items(_as_list(rlp_decode(data)))


# --------------------------------------------------------------------------- #
# transactions
# --------------------------------------------------------------------------- #


def tx_to_items(tx: Transaction) -> List[Any]:
    # ``to=None`` (contract creation) rides as the empty string — an
    # address is always exactly 20 bytes, so the encoding is unambiguous.
    return [
        bytes(tx.sender),
        bytes(tx.to) if tx.to is not None else b"",
        tx.value,
        tx.data,
        tx.gas_limit,
        tx.gas_price,
        tx.nonce,
        tx.tag,
    ]


def encode_transaction(tx: Transaction) -> bytes:
    return rlp_encode(tx_to_items(tx))


def tx_from_items(items: Sequence[Any]) -> Transaction:
    if len(items) != 8:
        raise ValueError(f"transaction wants 8 fields, got {len(items)}")
    to_bytes = _as_bytes(items[1])
    return Transaction(
        sender=Address(_as_bytes(items[0])),
        to=Address(to_bytes) if to_bytes else None,
        value=_as_int(_as_bytes(items[2])),
        data=_as_bytes(items[3]),
        gas_limit=_as_int(_as_bytes(items[4])),
        gas_price=_as_int(_as_bytes(items[5])),
        nonce=_as_int(_as_bytes(items[6])),
        tag=_as_bytes(items[7]).decode("utf-8"),
    )


def decode_transaction(data: bytes) -> Transaction:
    return tx_from_items(_as_list(rlp_decode(data)))


# --------------------------------------------------------------------------- #
# receipts (with logs — the receipt root commits to event data)
# --------------------------------------------------------------------------- #


def receipt_to_items(receipt: Receipt) -> List[Any]:
    return [
        bytes(receipt.tx_hash),
        1 if receipt.success else 0,
        receipt.gas_used,
        receipt.cumulative_gas,
        receipt.log_count,
        [
            [
                bytes(log.address),
                [topic.to_bytes(32, "big") for topic in log.topics],
                log.data,
            ]
            for log in receipt.logs
        ],
    ]


def encode_receipt(receipt: Receipt) -> bytes:
    return rlp_encode(receipt_to_items(receipt))


def receipt_from_items(items: Sequence[Any]) -> Receipt:
    if len(items) != 6:
        raise ValueError(f"receipt wants 6 fields, got {len(items)}")
    logs: List[Log] = []
    for raw in _as_list(items[5]):
        fields = _as_list(raw)
        if len(fields) != 3:
            raise ValueError(f"log wants 3 fields, got {len(fields)}")
        logs.append(
            Log(
                address=Address(_as_bytes(fields[0])),
                topics=tuple(
                    _as_int(_as_bytes(t)) for t in _as_list(fields[1])
                ),
                data=_as_bytes(fields[2]),
            )
        )
    return Receipt(
        tx_hash=Hash32(_as_bytes(items[0])),
        success=bool(_as_int(_as_bytes(items[1]))),
        gas_used=_as_int(_as_bytes(items[2])),
        cumulative_gas=_as_int(_as_bytes(items[3])),
        log_count=_as_int(_as_bytes(items[4])),
        logs=tuple(logs),
    )


def decode_receipt(data: bytes) -> Receipt:
    return receipt_from_items(_as_list(rlp_decode(data)))


# --------------------------------------------------------------------------- #
# blocks
# --------------------------------------------------------------------------- #


def encode_block(block: Block) -> bytes:
    """One log record's payload: ``[header, [tx...], [receipt...]]``."""
    return rlp_encode(
        [
            header_to_items(block.header),
            [tx_to_items(tx) for tx in block.transactions],
            [receipt_to_items(r) for r in block.receipts],
        ]
    )


def decode_block(data: bytes) -> Block:
    items = _as_list(rlp_decode(data))
    if len(items) != 3:
        raise ValueError(f"block wants 3 fields, got {len(items)}")
    header = header_from_items(_as_list(items[0]))
    transactions: Tuple[Transaction, ...] = tuple(
        tx_from_items(_as_list(raw)) for raw in _as_list(items[1])
    )
    receipts: Tuple[Receipt, ...] = tuple(
        receipt_from_items(_as_list(raw)) for raw in _as_list(items[2])
    )
    return Block(
        header=header,
        transactions=transactions,
        receipts=receipts,
        profile=None,
    )


def chain_digest(blocks: Sequence[Block], *, skip: int = 0) -> str:
    """SHA-256 over the canonical encodings of ``blocks[skip:]``.

    The byte-identity witness the kill-and-resume differential compares:
    two chains agree on headers, transactions and receipts iff their
    digests match.  ``skip`` lets a compacted chain be compared against a
    full reference over the suffix both hold.
    """
    digest = hashlib.sha256()
    for block in blocks[skip:]:
        payload = encode_block(block)
        digest.update(len(payload).to_bytes(8, "big"))
        digest.update(payload)
    return digest.hexdigest()


def verify_roundtrip(block: Block) -> Optional[str]:
    """Append-time self-check: does the block survive the codec?

    :meth:`DiskStore.on_block` runs this before every append (disable
    with ``DiskStore(verify_writes=False)``) and refuses to persist a
    block that fails it.  Returns ``None`` when encode→decode reproduces
    the header hash, every transaction hash and the receipt encodings;
    otherwise a human-readable description of the first divergence.
    Cheap insurance that a block with an unserialisable quirk fails
    loudly at *append* time, not at recovery time.
    """
    decoded = decode_block(encode_block(block))
    if decoded.header.hash != block.header.hash:
        return "header hash changed across encode/decode"
    if len(decoded.transactions) != len(block.transactions):
        return "transaction count changed across encode/decode"
    for index, (a, b) in enumerate(zip(block.transactions, decoded.transactions)):
        if a.hash != b.hash:
            return f"transaction {index} hash changed across encode/decode"
    if len(decoded.receipts) != len(block.receipts):
        return "receipt count changed across encode/decode"
    for index, (ra, rb) in enumerate(zip(block.receipts, decoded.receipts)):
        if ra.encode() != rb.encode():
            return f"receipt {index} encoding changed across encode/decode"
    return None
