"""Typed durability errors.

Every way the on-disk state can be wrong gets its own exception class, so
recovery either *heals* a fault (torn tail truncation) or *names* it — a
corrupt data dir must never silently diverge into a plausible-looking
chain.  All of them derive from :class:`StoreError`, which derives from
``RuntimeError`` so callers that only want "storage broke" can catch one
type.

This module is imported by ``repro.chain`` test helpers and the fault
suite — it must stay dependency-free (stdlib only).
"""

from __future__ import annotations

__all__ = [
    "StoreError",
    "BlockLogCorruptError",
    "TornTailError",
    "SnapshotCorruptError",
    "ManifestError",
    "StaleManifestError",
    "ReplayDivergenceError",
    "ConfigMismatchError",
]


class StoreError(RuntimeError):
    """Base class for every durability failure."""


class BlockLogCorruptError(StoreError):
    """A block-log record in the *interior* of the log failed its checksum
    or could not be decoded.  Unlike a torn tail this cannot be explained
    by a crash mid-append (later records are intact), so it is never
    auto-healed."""

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} (offset {offset})")
        self.offset = offset


class TornTailError(StoreError):
    """The *last* record of the block log is incomplete or fails its
    checksum — the signature of a crash mid-append.  Recovery heals it by
    truncating the log back to ``offset`` (the start of the torn record)."""

    def __init__(self, message: str, *, offset: int) -> None:
        super().__init__(f"{message} (torn tail at offset {offset})")
        self.offset = offset


class SnapshotCorruptError(StoreError):
    """A state-snapshot file is unreadable, fails its recorded digest, or
    rebuilds to a different state root than the manifest recorded."""


class ManifestError(StoreError):
    """The manifest file is malformed or fails its self-checksum."""


class StaleManifestError(StoreError):
    """The manifest disagrees with the files actually on disk in a way a
    crash cannot explain: it records more durable log bytes than the log
    holds (a lost-fsync window), or references a snapshot that does not
    exist."""


class ReplayDivergenceError(StoreError):
    """Re-executing a logged block produced a state root different from
    the one its stored header commits to."""

    def __init__(self, message: str, *, height: int) -> None:
        super().__init__(f"{message} (block {height})")
        self.height = height


class ConfigMismatchError(StoreError):
    """A serve session was resumed with workload parameters different from
    the ones the data dir was created with (would silently diverge)."""
