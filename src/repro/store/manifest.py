"""The store manifest: the single source of truth for what is durable.

``manifest.json`` records the last durable ``(block height, state root)``,
how many log bytes that covers, and which snapshot file recovery should
start from.  It is the *commit point* of the storage engine: a block
counts as durable only once a manifest naming it has been atomically
renamed into place (write temp → fsync → ``os.replace`` → fsync dir).

The document carries a SHA-256 self-checksum over its canonical body; a
manifest that fails it raises :class:`~repro.store.errors.ManifestError`
rather than being trusted.  Cross-checks against the actual files (log
shorter than ``log_bytes``, missing snapshot) live in
:mod:`repro.store.recovery` and surface as
:class:`~repro.store.errors.StaleManifestError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.store.errors import ManifestError

__all__ = ["SnapshotRef", "Manifest", "MANIFEST_NAME", "manifest_path"]

MANIFEST_NAME = "manifest.json"
FORMAT = "repro-store-manifest"
VERSION = 1


def manifest_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_NAME)


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class SnapshotRef:
    """Pointer to one durable state-snapshot file."""

    file: str
    height: int
    state_root: str  # hex
    sha256: str  # digest of the snapshot file's bytes
    header: str  # hex of the canonical header at ``height`` (codec encoding)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "height": self.height,
            "stateRoot": self.state_root,
            "sha256": self.sha256,
            "header": self.header,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "SnapshotRef":
        try:
            return cls(
                file=str(doc["file"]),
                height=int(doc["height"]),
                state_root=str(doc["stateRoot"]),
                sha256=str(doc["sha256"]),
                header=str(doc["header"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"bad snapshot reference: {exc}") from exc


@dataclass
class Manifest:
    """In-memory form of ``manifest.json``."""

    height: int = 0
    head_hash: str = ""
    state_root: str = ""
    #: the live log's filename — compaction writes a new generation file
    #: and repoints this *before* deleting the old one, so the manifest
    #: always references exactly one intact log
    log_file: str = "blocks.log"
    #: height of the first block still present in the log (rises as
    #: compaction drops records at and below the snapshot horizon)
    log_start_height: int = 1
    #: durable log length in bytes — everything past it is a crash tail
    log_bytes: int = 0
    snapshot: Optional[SnapshotRef] = None
    #: True only when written by a graceful shutdown (seal); an open store
    #: always rewrites it False first
    clean: bool = True
    #: opaque serve-session parameters (seed, txs per block, …) — resuming
    #: with different values is refused (ConfigMismatchError)
    serve: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    def _body(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "version": VERSION,
            "height": self.height,
            "headHash": self.head_hash,
            "stateRoot": self.state_root,
            "logFile": self.log_file,
            "logStartHeight": self.log_start_height,
            "logBytes": self.log_bytes,
            "snapshot": self.snapshot.to_doc() if self.snapshot else None,
            "clean": self.clean,
            "serve": self.serve,
        }

    @staticmethod
    def _checksum(body: Dict[str, Any]) -> str:
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def write(self, data_dir: str, *, fsync: bool = True) -> str:
        """Atomically publish this manifest (temp file + rename)."""
        body = self._body()
        body["checksum"] = self._checksum(self._body())
        path = manifest_path(data_dir)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(data_dir)
        return path

    @classmethod
    def load(cls, data_dir: str) -> "Manifest":
        """Read and verify ``manifest.json``; raises :class:`ManifestError`."""
        path = manifest_path(data_dir)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable manifest {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != FORMAT:
            raise ManifestError(f"{path} is not a store manifest")
        if doc.get("version") != VERSION:
            raise ManifestError(f"unsupported manifest version {doc.get('version')!r}")
        recorded = doc.pop("checksum", None)
        if recorded != cls._checksum(doc):
            raise ManifestError(f"manifest checksum mismatch in {path}")
        snapshot_doc = doc.get("snapshot")
        try:
            return cls(
                height=int(doc["height"]),
                head_hash=str(doc["headHash"]),
                state_root=str(doc["stateRoot"]),
                log_file=str(doc["logFile"]),
                log_start_height=int(doc["logStartHeight"]),
                log_bytes=int(doc["logBytes"]),
                snapshot=(
                    SnapshotRef.from_doc(snapshot_doc) if snapshot_doc else None
                ),
                clean=bool(doc["clean"]),
                serve=dict(doc.get("serve") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest {path}: {exc}") from exc
