"""Restart-from-disk recovery: rebuild a verified chain from a data dir.

The recovery state machine (see docs/ARCHITECTURE.md §13)::

    no manifest ──────────────────────────────→ FRESH (genesis)
    manifest loads + self-checksum ok?  no ───→ ManifestError
    log exists, len(log) ≥ manifest.logBytes?
                                        no ───→ StaleManifestError
    snapshot digest + rebuilt root ok?  no ───→ SnapshotCorruptError
    for each log record above the snapshot horizon:
        crc ok?        torn at/above manifest.logBytes → heal: truncate,
                           but only after the cross-checks below pass
                       below manifest.logBytes → BlockLogCorruptError
                           (file left untouched — evidence preserved)
        parent known?  no → skip (fork loser below horizon; recorded)
        re-execute; state root == header root?
                                        no ───→ ReplayDivergenceError
        chain.add_block(...)

Every replayed block is *re-executed serially* and its post-state root
checked against the stored header — recovery trusts the log's bytes only
after execution re-derives exactly what the header commits to.  That is
the same differential standard ``repro.check`` enforces across backends,
applied at the durability boundary.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain, ChainError
from repro.core.baselines import SerialExecutor
from repro.state.statedb import StateSnapshot
from repro.store.blocklog import BlockLog
from repro.store.codec import decode_header
from repro.store.errors import (
    BlockLogCorruptError,
    ReplayDivergenceError,
    StaleManifestError,
    StoreError,
    TornTailError,
)
from repro.store.manifest import Manifest, manifest_path
from repro.store.snapshots import load_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["RecoveryResult", "recover"]


@dataclass
class RecoveryResult:
    """What recovery rebuilt and everything it noticed on the way."""

    chain: Blockchain
    manifest: Manifest
    log: Optional[BlockLog]
    #: True when the data dir was empty and the chain started from genesis.
    fresh: bool
    #: height the replay started from (snapshot height, or 0).
    base_height: int
    #: blocks re-executed and re-verified from the log tail.
    replayed: int
    #: wall-clock recovery time in microseconds.
    recovery_us: float = 0.0
    #: healed anomalies (torn-tail truncations) — recovery continued.
    healed: List[str] = field(default_factory=list)
    #: records skipped with a reason (fork losers below the snapshot
    #: horizon, duplicates) — recorded, never silently dropped.
    skipped: List[str] = field(default_factory=list)

    @property
    def was_clean_shutdown(self) -> bool:
        return self.manifest.clean and not self.healed

    def summary(self) -> str:
        head = self.chain.head
        parts = [
            f"height={head.number}",
            f"root={bytes(head.header.state_root).hex()[:12]}…",
            f"replayed={self.replayed}",
            f"base={self.base_height}",
        ]
        if self.fresh:
            parts.append("fresh")
        if self.healed:
            parts.append(f"healed={len(self.healed)}")
        if self.skipped:
            parts.append(f"skipped={len(self.skipped)}")
        return "recovery: " + " ".join(parts)


def _base_from_manifest(
    data_dir: str,
    manifest: Manifest,
    genesis_state: Optional[StateSnapshot],
) -> Tuple[Blockchain, int]:
    """Rebuild the chain's base (snapshot checkpoint or genesis)."""
    ref = manifest.snapshot
    if ref is None:
        if genesis_state is None:
            raise StaleManifestError(
                "manifest has no snapshot and no genesis state was supplied"
            )
        return Blockchain(genesis_state), 0

    from repro.common.hashing import Hash32

    expect_root = Hash32(bytes.fromhex(ref.state_root))
    state = load_snapshot(
        data_dir, ref.file, expect_sha256=ref.sha256, expect_root=expect_root
    )
    header = decode_header(bytes.fromhex(ref.header))
    if header.number != ref.height:
        raise StaleManifestError(
            f"snapshot header is for height {header.number}, "
            f"manifest records {ref.height}"
        )
    if header.state_root != state.state_root():
        raise StaleManifestError(
            f"snapshot {ref.file} root does not match its pinned header"
        )
    if ref.height == 0:
        chain = Blockchain(state)
        if chain.genesis.header.hash != header.hash:
            raise StaleManifestError(
                "genesis snapshot rebuilds to a different genesis header"
            )
        return chain, 0
    return Blockchain.from_checkpoint(header, state), ref.height


def recover(
    data_dir: str,
    genesis_state: Optional[StateSnapshot] = None,
    *,
    fsync: bool = True,
    metrics: Optional["MetricsRegistry"] = None,
) -> RecoveryResult:
    """Rebuild a verified :class:`Blockchain` from ``data_dir``.

    ``genesis_state`` seeds a fresh chain when the dir is empty (and is
    the fallback base when a manifest carries no snapshot).  The returned
    chain has **no store attached** — callers wire one up afterwards
    (see :func:`repro.store.open_store`, which owns that handoff).

    Raises the typed :mod:`repro.store.errors` hierarchy on any damage a
    crash cannot explain; heals (and records) the damage one can.
    """
    started = time.perf_counter()

    if not os.path.exists(manifest_path(data_dir)):
        if genesis_state is None:
            raise StoreError(
                f"{data_dir} has no manifest and no genesis state was supplied"
            )
        result = RecoveryResult(
            chain=Blockchain(genesis_state),
            manifest=Manifest(),
            log=None,
            fresh=True,
            base_height=0,
            replayed=0,
        )
        result.recovery_us = (time.perf_counter() - started) * 1e6
        _record_metrics(metrics, result)
        return result

    manifest = Manifest.load(data_dir)
    log_path = os.path.join(data_dir, manifest.log_file)
    if not os.path.exists(log_path):
        raise StaleManifestError(
            f"manifest references missing log {manifest.log_file}"
        )
    actual = os.path.getsize(log_path)
    if actual < manifest.log_bytes:
        raise StaleManifestError(
            f"log holds {actual} bytes but the manifest recorded "
            f"{manifest.log_bytes} as durable — a lost fsync window; "
            "replaying would silently rewind the chain"
        )

    chain, base_height = _base_from_manifest(data_dir, manifest, genesis_state)

    log = BlockLog(log_path, fsync=fsync)
    serial = SerialExecutor()
    replayed = 0
    healed: List[str] = []
    skipped: List[str] = []
    torn: Optional[TornTailError] = None
    try:
        for offset, block in log.scan():
            replayed += _replay_one(chain, serial, block, base_height, skipped)
    except TornTailError as exc:
        if exc.offset < manifest.log_bytes:
            # damage strictly below the manifest's durable horizon cannot
            # be a crash tail (those bytes were fsynced before the
            # manifest advanced) — surface it with the file untouched so
            # the evidence survives for manual forensics
            raise BlockLogCorruptError(
                "corruption below the manifest's durable horizon "
                f"({manifest.log_bytes} bytes): {exc}",
                offset=exc.offset,
            ) from exc
        torn = exc

    if chain.height() < manifest.height:
        raise StaleManifestError(
            f"replay reached height {chain.height()} but the manifest "
            f"recorded {manifest.height} as durable"
        )
    # the log may run *past* the manifest (a crash tail appended before the
    # next manifest advance) — those blocks are verified by re-execution and
    # kept; but the block the manifest names must be exactly where it says
    if manifest.head_hash:
        at_height = chain.canonical_hash_at(manifest.height)
        if at_height is None or bytes(at_height).hex() != manifest.head_hash:
            raise StaleManifestError(
                f"replayed chain disagrees with the manifest's recorded "
                f"head at height {manifest.height}"
            )

    # heal (truncate) the torn crash tail only now, after every manifest
    # cross-check has passed — a failed check must leave the log
    # byte-for-byte as it was found
    if torn is not None:
        log.truncate_to(torn.offset)
        healed.append(str(torn))

    result = RecoveryResult(
        chain=chain,
        manifest=manifest,
        log=log,
        fresh=False,
        base_height=base_height,
        replayed=replayed,
        healed=healed,
        skipped=skipped,
    )
    result.recovery_us = (time.perf_counter() - started) * 1e6
    _record_metrics(metrics, result)
    return result


def _replay_one(
    chain: Blockchain,
    serial: SerialExecutor,
    block: Block,
    base_height: int,
    skipped: List[str],
) -> int:
    """Re-execute and insert one logged block; returns 1 if replayed."""
    label = f"block {block.number} {bytes(block.hash).hex()[:12]}"
    if block.number <= base_height:
        skipped.append(f"{label}: at or below snapshot horizon {base_height}")
        return 0
    if block.hash in chain:
        skipped.append(f"{label}: duplicate record")
        return 0
    parent_state = chain.state_at(block.header.parent_hash)
    if parent_state is None:
        # a fork loser whose parent fell below the snapshot horizon — it
        # can never become canonical (the snapshot *is* the canonical
        # state at the horizon), so skipping cannot change the head
        skipped.append(f"{label}: parent unknown (below snapshot horizon)")
        return 0
    try:
        block.validate_structure()
    except ValueError as exc:
        raise ReplayDivergenceError(
            f"logged block fails structural checks: {exc}", height=block.number
        ) from exc
    try:
        sres = serial.execute_block(block, parent_state)
    except Exception as exc:
        raise ReplayDivergenceError(
            f"logged block does not re-execute: {exc}", height=block.number
        ) from exc
    if sres.post_state.state_root() != block.header.state_root:
        raise ReplayDivergenceError(
            "re-executed state root "
            f"{bytes(sres.post_state.state_root()).hex()[:16]}… does not match "
            f"stored header root {bytes(block.header.state_root).hex()[:16]}…",
            height=block.number,
        )
    try:
        chain.add_block(block, sres.post_state)
    except ChainError as exc:
        raise ReplayDivergenceError(
            f"replayed block refused by the chain: {exc}", height=block.number
        ) from exc
    return 1


def _record_metrics(
    metrics: Optional["MetricsRegistry"], result: RecoveryResult
) -> None:
    if metrics is None:
        return
    metrics.gauge("store.recovery_us").set(result.recovery_us)
    metrics.gauge("store.replay_len").set(float(result.replayed))
    metrics.counter("store.recoveries").inc()
    if result.healed:
        metrics.counter("store.torn_tail_truncations").inc(len(result.healed))
