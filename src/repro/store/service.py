"""``python -m repro serve`` — the long-running durable node driver.

:class:`NodeService` runs the full proposer→validator round trip on the
simulated block clock (header timestamps advance by ``block_interval``
per height), persisting every accepted block through a
:class:`~repro.store.backend.DiskStore`.  It is deliberately a *single
deterministic trajectory*: the universe, the workload generator and the
proposal path are all seeded, so

* an uninterrupted run to height ``H``, and
* any sequence of kill → restart → resume runs reaching height ``H``

produce byte-identical chains (the kill-and-resume tests assert this via
:func:`repro.store.codec.chain_digest` / the head hash, which transitively
commits to every header, transaction and receipt before it).

Resume correctness hinges on two things this module owns:

1. **Config pinning** — the serve parameters (seed, txs per block, block
   interval, …) are written into the manifest on first start; resuming
   with different values is refused with
   :class:`~repro.store.errors.ConfigMismatchError` rather than allowed
   to fork the trajectory silently.
2. **Generator fast-forward** — the workload generator is stateful (its
   RNG stream and the universe's nonce map advance per block), so on
   resume the service regenerates the transactions of every
   already-durable height and checks them against the recovered blocks
   before producing new ones.

Signals: SIGINT and SIGTERM both stop the loop at the next block
boundary, then seal the manifest (clean shutdown).  The CLI maps SIGINT
to exit code 130 and SIGTERM/target-reached to 0.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.network.node import ProposerNode, ValidatorNode
from repro.obs.live import LiveConfig, LiveTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.store import open_store
from repro.store.backend import DiskStore
from repro.store.errors import ConfigMismatchError, StoreError
from repro.store.recovery import RecoveryResult
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import get_scenario, mainnet_scenario
from repro.workload.universe import build_universe

__all__ = ["ServeConfig", "ServeReport", "NodeService"]

#: Name of the JSONL event log written inside the data dir (``--events``).
EVENTS_LOG_NAME = "events.jsonl"


@dataclass(frozen=True)
class ServeConfig:
    """Everything that pins a serve trajectory (stored in the manifest)."""

    data_dir: str
    seed: int = 42
    txs_per_block: int = 132
    #: named scenario stream for the workload (None = mainnet mix); pinned
    #: in the manifest — a data dir produced under one scenario refuses to
    #: resume under another
    scenario: Optional[str] = None
    #: stop after the chain reaches this height (0 = run until signalled)
    max_height: int = 0
    #: simulated seconds between blocks (header-timestamp step)
    block_interval: int = 12
    snapshot_interval: int = 64
    compact: bool = True
    fsync: bool = True
    #: print a progress line every N blocks (0 = quiet)
    report_every: int = 0
    # -- live telemetry (none of these pin the trajectory) -------------- #
    #: write a structured JSONL event log next to the block log
    events: bool = False
    #: loopback HTTP status endpoint (None = off, 0 = ephemeral port)
    status_port: Optional[int] = None
    #: sample SLO windows on the wall clock instead of the sim clock
    wall_clock_slo: bool = False
    #: SLO window width (clock seconds) and retained window count
    slo_window_s: float = 60.0
    slo_history: int = 30
    #: /healthz flips unhealthy after stall_factor × stall_interval_s of
    #: wall-clock silence (no block sealed)
    stall_interval_s: float = 5.0
    stall_factor: float = 4.0

    def pinned(self) -> Dict[str, Any]:
        """The subset a resume must match exactly."""
        pinned = {
            "seed": self.seed,
            "txsPerBlock": self.txs_per_block,
            "blockInterval": self.block_interval,
            "snapshotInterval": self.snapshot_interval,
        }
        # only pinned when set: manifests written before scenarios existed
        # carry no key, and None == absent keeps them resumable
        if self.scenario is not None:
            pinned["scenario"] = self.scenario
        return pinned


@dataclass
class ServeReport:
    """What one serve session did."""

    height: int
    head_hash: str
    state_root: str
    produced: int
    resumed_from: int
    sealed: bool
    stop_signal: Optional[int] = None
    healed: List[str] = field(default_factory=list)
    # -- telemetry totals (cumulative: survive kill-and-resume) --------- #
    #: total blocks behind the head, counting recovered ones
    blocks_total: int = 0
    aborts: int = 0
    fallbacks: int = 0
    unhealthy_intervals: int = 0
    events_written: int = 0
    status_url: Optional[str] = None

    @property
    def exit_code(self) -> int:
        # the conventional 128+signum for SIGINT; clean otherwise
        return 130 if self.stop_signal == signal.SIGINT else 0

    def summary(self) -> str:
        how = (
            f"signal {signal.Signals(self.stop_signal).name}"
            if self.stop_signal
            else "target height"
        )
        return (
            f"serve: height={self.height} produced={self.produced} "
            f"resumed_from={self.resumed_from} head={self.head_hash[:12]}… "
            f"sealed={self.sealed} stopped_by={how} "
            f"blocks_total={self.blocks_total} aborts={self.aborts} "
            f"fallbacks={self.fallbacks} "
            f"unhealthy_intervals={self.unhealthy_intervals}"
        )


class NodeService:
    """Owns the serve loop: recover → fast-forward → produce → seal."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        backend: Any = None,
        metrics: Any = None,
        crash: Any = None,
    ) -> None:
        self.config = config
        self.backend = backend
        # telemetry derives its events from the metrics seams, so any
        # live-telemetry feature needs a registry even if the caller
        # didn't pass one
        if metrics is None and (config.events or config.status_port is not None):
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.crash = crash
        self._stop_signal: Optional[int] = None
        self.store: Optional[DiskStore] = None
        self.recovery: Optional[RecoveryResult] = None
        #: recovery summary captured before the loop advances the chain
        self.recovery_summary: str = ""
        self.telemetry: Optional[LiveTelemetry] = None

    def _build_telemetry(self) -> Optional[LiveTelemetry]:
        cfg = self.config
        if not cfg.events and cfg.status_port is None:
            return None
        assert self.metrics is not None
        live = LiveConfig(
            events_path=(
                os.path.join(cfg.data_dir, EVENTS_LOG_NAME) if cfg.events else None
            ),
            window_s=cfg.slo_window_s,
            history=cfg.slo_history,
            wall_clock=cfg.wall_clock_slo,
            http_port=cfg.status_port,
            stall_interval_s=cfg.stall_interval_s,
            stall_factor=cfg.stall_factor,
        )
        return LiveTelemetry(self.metrics, config=live)

    # ------------------------------------------------------------------ #
    # signals
    # ------------------------------------------------------------------ #

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._stop_signal = signum

    def install_signal_handlers(self) -> None:
        self._previous_handlers = {
            signal.SIGINT: signal.signal(signal.SIGINT, self._on_signal),
            signal.SIGTERM: signal.signal(signal.SIGTERM, self._on_signal),
        }

    def restore_signal_handlers(self) -> None:
        for signum, handler in getattr(self, "_previous_handlers", {}).items():
            signal.signal(signum, handler)
        self._previous_handlers = {}

    @property
    def stopping(self) -> bool:
        return self._stop_signal is not None

    # ------------------------------------------------------------------ #
    # resume plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_pinned(stored: Dict[str, Any], wanted: Dict[str, Any]) -> None:
        if not stored:
            # pre-existing dir written by a non-serve caller: nothing pinned
            return
        diffs = [
            f"{key}: stored {stored.get(key)!r} != requested {value!r}"
            for key, value in wanted.items()
            if stored.get(key) != value
        ]
        if diffs:
            raise ConfigMismatchError(
                "data dir was produced with different serve parameters — "
                + "; ".join(diffs)
            )

    def _fast_forward(
        self, generator: BlockWorkloadGenerator, chain: Any, height: int
    ) -> None:
        """Advance the generator's RNG/nonce state past durable blocks.

        For every height still resident in memory the regenerated
        transactions are compared against the recovered block — a
        mismatch means the workload trajectory diverged (wrong seed or a
        tampered log that still re-executes) and resuming would fork.
        """
        for number in range(1, height + 1):
            txs = generator.generate_block_txs()
            if number <= chain.base_height:
                # at/below the snapshot horizon: the checkpoint block is a
                # body-less header, there is nothing to compare against
                continue
            block_hash = chain.canonical_hash_at(number)
            block = chain.block(block_hash) if block_hash is not None else None
            if block is None:
                continue
            # the proposer reorders (OCC commit order) and may drop txs,
            # so membership — not sequence equality — is the invariant
            generated = {bytes(tx.hash) for tx in txs}
            strangers = [
                tx for tx in block.transactions if bytes(tx.hash) not in generated
            ]
            if strangers:
                raise ConfigMismatchError(
                    f"recovered block at height {number} carries "
                    f"{len(strangers)} transactions the regenerated workload "
                    "never produced — refusing to fork the trajectory"
                )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def run(self, *, handle_signals: bool = True) -> ServeReport:
        cfg = self.config
        if handle_signals:
            self.install_signal_handlers()

        if cfg.scenario:
            stream = get_scenario(
                cfg.scenario, seed=cfg.seed, txs_per_block=cfg.txs_per_block
            )
            universe, generator = stream.universe, stream
        else:
            universe = build_universe()
            workload = dataclasses.replace(
                mainnet_scenario(seed=cfg.seed), txs_per_block=cfg.txs_per_block
            )
            generator = BlockWorkloadGenerator(universe, workload)

        telemetry = self.telemetry = self._build_telemetry()
        chain, store, recovery = open_store(
            cfg.data_dir,
            universe.genesis,
            snapshot_interval=cfg.snapshot_interval,
            compact=cfg.compact,
            fsync=cfg.fsync,
            serve=cfg.pinned(),
            metrics=self.metrics,
            emitter=telemetry.emitter if telemetry is not None else None,
            crash=self.crash,
        )
        self.store = store
        self.recovery = recovery
        self.recovery_summary = recovery.summary()
        self._check_pinned(recovery.manifest.serve, cfg.pinned())
        resumed_from = chain.height()
        self._fast_forward(generator, chain, resumed_from)

        status_url: Optional[str] = None
        if telemetry is not None:
            head_ts = float(chain.head.header.timestamp)
            telemetry.seed_totals(resumed_from)
            telemetry.serve_started(
                head_ts, height=resumed_from, resumed=not recovery.fresh
            )
            telemetry.recovery_finished(
                head_ts,
                height=resumed_from,
                replayed=recovery.replayed,
                healed=len(recovery.healed),
            )
            bound = telemetry.start_server()
            if bound is not None:
                status_url = f"http://{bound[0]}:{bound[1]}"
                print(
                    f"serve: status endpoint listening on {status_url}",
                    file=sys.stderr,
                    flush=True,
                )
            telemetry.refresh(
                height=resumed_from,
                head=bytes(chain.head.hash).hex(),
                produced=0,
                resumed_from=resumed_from,
            )

        proposer = ProposerNode(
            "serve-proposer", metrics=self.metrics, backend=self.backend
        )
        validator = ValidatorNode(
            "serve-validator",
            universe.genesis,
            chain=chain,
            metrics=self.metrics,
            backend=self.backend,
        )

        produced = 0
        sealed_ok = False
        started = time.perf_counter()
        metrics = self.metrics
        try:
            while not self.stopping:
                if cfg.max_height and chain.height() >= cfg.max_height:
                    break
                head = chain.head
                parent_state = chain.state_at(head.hash)
                assert parent_state is not None
                txs = generator.generate_block_txs()
                block_started = time.perf_counter()
                sealed = proposer.build_block(
                    head.header,
                    parent_state,
                    txs,
                    timestamp=head.header.timestamp + cfg.block_interval,
                )
                outcome = validator.receive_blocks([sealed.block])
                if not outcome.accepted:
                    failure = next((f for f in outcome.failures if f), None)
                    raise StoreError(
                        f"own proposal at height {head.number + 1} rejected: "
                        f"{failure.reason.value if failure else 'unknown'}"
                    )
                produced += 1
                if telemetry is not None:
                    new_head = chain.head
                    # sim seal latency: proposer + pipeline makespans the
                    # metrics seams recorded for exactly this block
                    sim_latency = 0.0
                    if metrics is not None:
                        sim_latency = (
                            metrics.gauge("proposer.makespan_us").value
                            + metrics.gauge("pipeline.makespan_us").value
                        )
                    telemetry.block_sealed(
                        height=new_head.number,
                        sim_ts=float(new_head.header.timestamp),
                        txs=len(sealed.block),
                        gas_used=sealed.proposal.gas_used,
                        seal_latency_us=sim_latency,
                        wall_latency_us=(time.perf_counter() - block_started)
                        * 1e6,
                        store_write_us=store.last_commit_us,
                    )
                    telemetry.refresh(
                        height=new_head.number,
                        head=bytes(new_head.hash).hex(),
                        produced=produced,
                        resumed_from=resumed_from,
                    )
                if cfg.report_every and produced % cfg.report_every == 0:
                    elapsed = time.perf_counter() - started
                    print(
                        f"serve: height={chain.height()} produced={produced} "
                        f"({produced / max(elapsed, 1e-9):.1f} blocks/s)",
                        file=sys.stderr,
                        flush=True,
                    )
            store.seal()
            sealed_ok = True
        finally:
            if telemetry is not None:
                telemetry.serve_stopped(
                    float(chain.head.header.timestamp),
                    height=chain.height(),
                    produced=produced,
                    sealed=sealed_ok,
                )
                telemetry.close()
            validator.pipeline.close()
            store.close()
            if handle_signals:
                self.restore_signal_handlers()

        head = chain.head
        report = ServeReport(
            height=head.number,
            head_hash=bytes(head.hash).hex(),
            state_root=bytes(head.header.state_root).hex(),
            produced=produced,
            resumed_from=resumed_from,
            sealed=sealed_ok,
            stop_signal=self._stop_signal,
            healed=list(recovery.healed),
            status_url=status_url,
        )
        if telemetry is not None:
            report.blocks_total = telemetry.slo.total_blocks
            report.aborts = telemetry.slo.total_aborts
            report.fallbacks = telemetry.slo.total_fallbacks
            report.unhealthy_intervals = telemetry.watchdog.unhealthy_intervals
            report.events_written = getattr(telemetry.emitter, "seq", 0)
        elif metrics is not None:
            # non-instrumented serve: fall back to the raw counters so the
            # exit line still carries totals
            counters = metrics.snapshot()["counters"]
            report.blocks_total = head.number
            report.aborts = int(counters.get("proposer.aborts", 0))
            report.fallbacks = int(counters.get("pipeline.serial_fallbacks", 0))
        else:
            report.blocks_total = head.number
        return report
