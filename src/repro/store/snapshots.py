"""State-snapshot files: periodic full-world checkpoints.

A snapshot file is the JSON document
:func:`repro.state.serialize.snapshot_to_json` produces (every account's
balance/nonce/code/storage plus the recorded state root), written via the
same atomic temp-file + rename + dir-fsync discipline as the manifest.
Integrity is double-checked at load time:

* the file's SHA-256 must match the digest the manifest recorded
  (catches bit rot and tampering — :class:`SnapshotCorruptError`);
* the rebuilt trie's state root must match both the document's own
  recorded root and the header root the manifest pinned for that height
  (catches a *valid-looking but wrong* snapshot).
"""

from __future__ import annotations

import hashlib
import os
from typing import Tuple

from repro.common.hashing import Hash32
from repro.state.serialize import (
    SnapshotFormatError,
    snapshot_from_json,
    snapshot_to_json,
    text_digest,
)
from repro.state.statedb import StateSnapshot
from repro.store.errors import SnapshotCorruptError

__all__ = ["snapshot_filename", "write_snapshot", "load_snapshot"]


def snapshot_filename(height: int) -> str:
    return f"snapshot_{height:08d}.json"


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(
    data_dir: str,
    height: int,
    snapshot: StateSnapshot,
    *,
    fsync: bool = True,
) -> Tuple[str, str]:
    """Atomically write the snapshot file for ``height``.

    Returns ``(filename, sha256)`` for the manifest's snapshot reference.
    """
    name = snapshot_filename(height)
    text = snapshot_to_json(snapshot, note=f"height={height}")
    path = os.path.join(data_dir, name)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(data_dir)
    return name, text_digest(text)


def load_snapshot(
    data_dir: str,
    filename: str,
    *,
    expect_sha256: str,
    expect_root: Hash32,
) -> StateSnapshot:
    """Load and fully verify one snapshot file.

    Raises :class:`SnapshotCorruptError` on any mismatch — digest, JSON
    shape, rebuilt root vs the document, or rebuilt root vs the root the
    manifest expects for that height.
    """
    path = os.path.join(data_dir, filename)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise SnapshotCorruptError(f"unreadable snapshot {path}: {exc}") from exc
    # digest the raw bytes *before* any decoding: a flipped byte must fail
    # here even if it also breaks the UTF-8 stream
    actual = hashlib.sha256(raw).hexdigest()
    if actual != expect_sha256:
        raise SnapshotCorruptError(
            f"snapshot {filename} digest mismatch: "
            f"manifest records {expect_sha256[:16]}…, file hashes {actual[:16]}…"
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SnapshotCorruptError(f"snapshot {filename}: {exc}") from exc
    try:
        snapshot = snapshot_from_json(text, verify_root=True)
    except SnapshotFormatError as exc:
        raise SnapshotCorruptError(f"snapshot {filename}: {exc}") from exc
    if snapshot.state_root() != expect_root:
        raise SnapshotCorruptError(
            f"snapshot {filename} rebuilds to root "
            f"{snapshot.state_root().hex()[:16]}…, manifest expects "
            f"{bytes(expect_root).hex()[:16]}…"
        )
    return snapshot
