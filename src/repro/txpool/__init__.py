"""Transactions and the pending pool proposers draw from.

Proposers "select transactions from the pending pool and execute them in
parallel" (paper §4.1, Figure 3); selection is by gas price, and aborted
optimistic transactions return to the pool (Algorithm 1's ``PushHeap``).
"""

from repro.txpool.transaction import Transaction
from repro.txpool.pool import TxPool

__all__ = ["Transaction", "TxPool"]
