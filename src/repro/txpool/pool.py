"""The pending transaction pool.

Selection follows geth's miner: the highest gas price among *ready*
transactions wins (Algorithm 1 pops from a heap).  A transaction is ready
when it is the lowest queued nonce for its sender — later nonces stay
parked until the earlier one is packed, which preserves the per-sender
ordering the EVM's nonce check enforces.

The pool supports the OCC-WSI abort path: ``push_back`` returns an aborted
transaction to the ready set without disturbing its parked successors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional

from repro.common.types import Address
from repro.txpool.transaction import Transaction

__all__ = ["TxPool"]


#: a replacement must bid at least this many percent over the original
#: (geth's default price-bump threshold)
PRICE_BUMP_PERCENT = 10


class TxPool:
    """Gas-price priority pool with per-sender nonce ordering.

    Replace-by-fee: re-adding a queued nonce with a gas price at least
    ``PRICE_BUMP_PERCENT`` higher replaces the original (both parked and
    already-promoted transactions; in-flight ones — currently executing in
    a proposer — cannot be replaced).
    """

    def __init__(self) -> None:
        # ready transactions: max-heap on gas price (min-heap on negation)
        self._ready: List[tuple] = []
        self._counter = itertools.count()
        # parked: sender -> {nonce: tx} not yet ready
        self._parked: Dict[Address, Dict[int, Transaction]] = {}
        # the nonce each sender's next ready tx must carry
        self._ready_nonce: Dict[Address, int] = {}
        # ready txs currently popped but not yet packed (in flight)
        self._in_flight: Dict[Address, Transaction] = {}
        # senders whose ready-nonce tx is in the heap or in flight
        self._pending_ready: set = set()
        # lazily-invalidated heap entries (replaced by fee)
        self._cancelled: set = set()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------ #

    def add(self, tx: Transaction) -> None:
        """Insert a transaction.

        Duplicates of a queued nonce are rejected unless they outbid the
        original by :data:`PRICE_BUMP_PERCENT` (replace-by-fee).
        """
        sender = tx.sender
        parked = self._parked.setdefault(sender, {})
        if tx.nonce in parked:
            self._replace_parked(parked, tx)
            return
        if sender in self._ready_nonce:
            ready = self._ready_nonce[sender]
            if tx.nonce < ready:
                # the sender's earlier nonce already left the parked map (it
                # is ready, in flight or packed); a lower nonce cannot run
                raise ValueError(
                    f"nonce {tx.nonce} below ready nonce "
                    f"{ready} for {sender.hex()[:8]}"
                )
            if tx.nonce == ready and sender in self._pending_ready:
                self._replace_promoted(tx)
                return
        parked[tx.nonce] = tx
        self._size += 1
        if sender not in self._ready_nonce:
            self._ready_nonce[sender] = min(parked)
        self._promote(sender)

    def _check_bump(self, old: Transaction, new: Transaction) -> None:
        threshold = old.gas_price + old.gas_price * PRICE_BUMP_PERCENT // 100
        if new.gas_price <= threshold or new.gas_price <= old.gas_price:
            raise ValueError(
                f"replacement for nonce {new.nonce} underpriced: "
                f"{new.gas_price} <= bump threshold {threshold}"
            )

    def _replace_parked(self, parked, tx: Transaction) -> None:
        old = parked[tx.nonce]
        self._check_bump(old, tx)
        parked[tx.nonce] = tx

    def _replace_promoted(self, tx: Transaction) -> None:
        sender = tx.sender
        in_flight = self._in_flight.get(sender)
        if in_flight is not None:
            raise ValueError(
                f"nonce {tx.nonce} for {sender.hex()[:8]} is executing and "
                "cannot be replaced"
            )
        # find the live heap entry for this sender (lazy invalidation)
        old = next(
            (t for _, _, t in self._ready
             if t.sender == sender and t.hash not in self._cancelled),
            None,
        )
        if old is None:  # pragma: no cover - defensive
            raise ValueError("promoted transaction not found")
        self._check_bump(old, tx)
        self._cancelled.add(old.hash)
        heapq.heappush(self._ready, (-tx.gas_price, next(self._counter), tx))

    def add_many(self, txs) -> None:
        for tx in txs:
            self.add(tx)

    def _promote(self, sender: Address) -> None:
        """Move the sender's ready-nonce tx into the heap if present."""
        if sender in self._in_flight:
            return
        parked = self._parked.get(sender)
        if not parked:
            return
        nonce = self._ready_nonce.get(sender)
        if nonce is None:
            return
        tx = parked.get(nonce)
        if tx is not None:
            heapq.heappush(
                self._ready, (-tx.gas_price, next(self._counter), tx)
            )
            del parked[nonce]
            self._pending_ready.add(sender)

    # ------------------------------------------------------------------ #

    def pop_best(self) -> Optional[Transaction]:
        """Pop the ready transaction with the highest gas price.

        The transaction becomes *in flight*: its sender's later nonces stay
        parked until ``mark_packed`` or ``drop`` is called; ``push_back``
        restores it to the ready set.
        """
        while self._ready:
            _, _, tx = heapq.heappop(self._ready)
            if tx.hash in self._cancelled:
                self._cancelled.discard(tx.hash)
                continue
            sender = tx.sender
            if self._in_flight.get(sender) is not None:
                # stale duplicate (defensive; should not occur)
                continue
            self._in_flight[sender] = tx
            return tx
        return None

    def push_back(self, tx: Transaction) -> None:
        """Return an in-flight (aborted) transaction to the ready heap."""
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("push_back of a transaction that is not in flight")
        del self._in_flight[sender]
        heapq.heappush(self._ready, (-tx.gas_price, next(self._counter), tx))

    def mark_packed(self, tx: Transaction) -> None:
        """The in-flight transaction was committed; release the next nonce."""
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("mark_packed of a transaction that is not in flight")
        del self._in_flight[sender]
        self._pending_ready.discard(sender)
        self._size -= 1
        self._ready_nonce[sender] = tx.nonce + 1
        self._promote(sender)

    def drop(self, tx: Transaction) -> None:
        """Discard an in-flight transaction (invalid: bad nonce, unaffordable).

        Every parked successor from the same sender is discarded too — with
        a nonce gap they can never become valid.
        """
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("drop of a transaction that is not in flight")
        del self._in_flight[sender]
        self._pending_ready.discard(sender)
        self._size -= 1
        parked = self._parked.pop(sender, {})
        self._size -= len(parked)
        self._ready_nonce.pop(sender, None)

    # ------------------------------------------------------------------ #

    def contains(self, tx_hash) -> bool:
        """Whether a transaction with this hash is queued or in flight."""
        if any(t.hash == tx_hash for t in self._in_flight.values()):
            return True
        for parked in self._parked.values():
            if any(t.hash == tx_hash for t in parked.values()):
                return True
        return any(
            t.hash == tx_hash and t.hash not in self._cancelled
            for _, _, t in self._ready
        )

    def restore(self, tx: Transaction) -> bool:
        """Return a transaction from a rejected/abandoned block to the pool.

        Exactly-once semantics: a transaction already queued or in flight
        (e.g. the same tx carried by two fork siblings), already packed
        (its sender's nonce moved past it), or unable to re-enter (stale
        nonce, underpriced duplicate) is skipped.  Returns whether the
        transaction was actually re-added.
        """
        if self.contains(tx.hash):
            return False
        ready = self._ready_nonce.get(tx.sender)
        if ready is not None and tx.nonce < ready:
            return False  # a block carrying this nonce already committed
        try:
            self.add(tx)
        except ValueError:
            return False
        return True

    def restore_many(self, txs) -> int:
        """Restore a batch; returns how many actually re-entered the pool."""
        return sum(1 for tx in txs if self.restore(tx))

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def has_ready(self) -> bool:
        """True when ``pop_best`` would return a transaction right now."""
        return any(t.hash not in self._cancelled for _, _, t in self._ready)
